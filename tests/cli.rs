//! CLI contract tests: strict flag parsing, `--help` behaviour, the
//! `trace` verbs and `check --replay` — exercised against the real
//! binary so regressions in argument routing can't hide behind unit
//! tests of the library layers.
//!
//! The load-bearing guarantees:
//!
//! * `--help` prints usage on **stdout** and exits 0 without doing any
//!   work — `ppsim check --help` must never start a fuzz sweep;
//! * every subcommand rejects flags it does not understand instead of
//!   silently ignoring them and running anyway;
//! * a trace exported to `.pptrace` and re-imported reports the same
//!   workload, and a CBP branch log import surfaces MPKI and the
//!   ip-labelled H2P table.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ppsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .args(args)
        .env("PPSIM_COMMITS", "") // keep host env out of suite-config paths
        .output()
        .expect("spawn ppsim")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch path under the target-adjacent temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppsim-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

#[test]
fn help_prints_usage_on_stdout_and_exits_zero() {
    // `check --help` is the one that used to silently run 200 programs
    // across 2,800 oracle cells; the whole matrix is cheap insurance.
    let cases: &[&[&str]] = &[
        &["--help"],
        &["-h"],
        &["help"],
        &["run", "--help"],
        &["compile", "--help"],
        &["bench", "--help"],
        &["suite", "--help"],
        &["check", "--help"],
        &["check", "-h"],
        &["trace", "--help"],
        &["trace", "import", "--help"],
        &["serve", "--help"],
        &["submit", "--help"],
        &["cache", "--help"],
        &["list", "--help"],
    ];
    for args in cases {
        let out = ppsim(args);
        assert!(out.status.success(), "ppsim {args:?} should exit 0");
        assert!(
            stdout(&out).contains("usage:"),
            "ppsim {args:?} should print usage on stdout"
        );
        assert!(
            stdout(&out).contains("trace import"),
            "usage for {args:?} should mention the trace verbs"
        );
    }
}

#[test]
fn every_subcommand_rejects_unknown_flags() {
    let cases: &[&[&str]] = &[
        &["run", "--definitely-bogus"],
        &["compile", "--definitely-bogus"],
        &["bench", "--definitely-bogus"],
        &["suite", "--definitely-bogus"],
        &["check", "--definitely-bogus"],
        &["trace", "export", "--definitely-bogus"],
        &["trace", "import", "--definitely-bogus"],
        &["trace", "info", "--definitely-bogus"],
        &["serve", "--definitely-bogus"],
        &["submit", "--definitely-bogus"],
        &["cache", "stats", "--definitely-bogus"],
        &["list", "--definitely-bogus"],
    ];
    for args in cases {
        let out = ppsim(args);
        assert!(
            !out.status.success(),
            "ppsim {args:?} should fail on an unknown flag"
        );
        assert!(
            stderr(&out).contains("unknown flag"),
            "ppsim {args:?} should name the unknown flag on stderr, got: {}",
            stderr(&out)
        );
    }
}

#[test]
fn missing_flag_values_and_unknown_commands_fail() {
    let out = ppsim(&[]);
    assert!(!out.status.success(), "bare ppsim is a usage error");

    let out = ppsim(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));

    let out = ppsim(&["bench", "--only"]);
    assert!(!out.status.success(), "--only with no value is an error");
    assert!(stderr(&out).contains("needs a value"));
}

#[test]
fn trace_export_info_import_round_trips_a_benchmark() {
    let path = scratch("gzip.pptrace");
    let path_s = path.to_str().unwrap();

    let out = ppsim(&["trace", "export", "gzip", path_s, "--commits", "4000"]);
    assert!(out.status.success(), "export failed: {}", stderr(&out));
    assert!(path.exists());

    let out = ppsim(&["trace", "info", path_s]);
    assert!(out.status.success(), "info failed: {}", stderr(&out));
    let info = stdout(&out);
    assert!(info.contains("\"name\":\"gzip\""), "info: {info}");
    assert!(info.contains("\"records\":4000"), "info: {info}");
    assert!(info.contains("\"branches_only\":false"), "info: {info}");

    let out = ppsim(&[
        "trace",
        "import",
        path_s,
        "--commits",
        "4000",
        "--top",
        "3",
        "--no-cache",
    ]);
    assert!(out.status.success(), "import failed: {}", stderr(&out));
    let report = stdout(&out);
    assert!(report.contains("gzip"), "report: {report}");
    assert!(report.contains("MPKI"), "report: {report}");
    assert!(report.contains("H2P"), "report: {report}");
}

#[test]
fn cbp_fixture_import_reports_mpki_and_ip_labelled_h2p() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/cbp-branches.txt");
    let out = ppsim(&[
        "trace",
        "import",
        fixture,
        "--commits",
        "20000",
        "--top",
        "5",
        "--no-cache",
    ]);
    assert!(out.status.success(), "import failed: {}", stderr(&out));
    let report = stdout(&out);
    assert!(report.contains("MPKI"), "report: {report}");
    assert!(report.contains("H2P"), "report: {report}");
    // The alternating site must surface by its original instruction
    // pointer, not a synthetic slot number.
    assert!(report.contains("0x40200c"), "report: {report}");
    assert!(
        stderr(&out).contains("CBP log"),
        "import should summarize the parsed log on stderr"
    );
}

#[test]
fn check_replay_reruns_a_dumped_repro() {
    let repro = "\
// ppsim-check repro: seed 0x0 iter 1 form branchy cell predicate/selective/fused
    movl r1 = 5
.L1:
    add r1 = r1, -1
    cmp.unc.gt p1, p2 = r1, 0
    (p1) br.cond .L1
    halt
";
    let path = scratch("repro.pisa");
    std::fs::write(&path, repro).unwrap();
    let out = ppsim(&["check", "--replay", path.to_str().unwrap()]);
    assert!(out.status.success(), "replay failed: {}", stderr(&out));
    assert!(
        stdout(&out).contains("repro passes"),
        "stdout: {}",
        stdout(&out)
    );

    let out = ppsim(&["check", "--replay", "/nonexistent/file.pisa"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn bench_trace_verifies_fused_identity_on_an_import() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/cbp-branches.txt");
    let json = scratch("bench-trace.json");
    let out = ppsim(&[
        "bench",
        "--trace",
        fixture,
        "--commits",
        "20000",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "bench --trace failed: {}",
        stderr(&out)
    );
    let doc = std::fs::read_to_string(&json).unwrap();
    assert!(doc.contains("\"reports_identical\":true"), "json: {doc}");
}
