//! End-to-end properties of the experiment runner (the acceptance
//! criteria of the parallel-execution subsystem):
//!
//! 1. **Determinism** — the consolidated suite report is byte-identical
//!    for any worker count.
//! 2. **Caching** — a warm-cache rerun executes zero simulations (every
//!    job is a cache hit) and reproduces the exact same report.
//! 3. **Artifacts** — the JSON report round-trips through the hand-rolled
//!    parser and carries the figure data and telemetry.

use std::path::PathBuf;

use ppsim::core::{experiments, ExperimentConfig, Json, Runner, RunnerOptions};

/// A fast configuration: one benchmark, small budgets. Big enough to
/// exercise every scheme, compile mode and the shadow predictor.
fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        commits: 25_000,
        profile_steps: 50_000,
        only: vec!["gzip".into()],
        ..ExperimentConfig::default()
    }
}

/// A per-test cache directory under the target dir (never the user's
/// real cache; removed at the start so reruns of the test start cold).
fn fresh_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppsim-runner-suite-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn runner(jobs: usize, cache_dir: Option<PathBuf>) -> Runner {
    Runner::new(RunnerOptions {
        jobs,
        cache: cache_dir.is_some(),
        cache_dir,
        ..RunnerOptions::default()
    })
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let cfg = tiny_cfg();
    let serial = experiments::full_report(&runner(1, None), &cfg);
    let parallel = experiments::full_report(&runner(8, None), &cfg);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "--jobs must never change report bytes");
}

#[test]
fn warm_cache_rerun_executes_zero_simulations() {
    let cfg = tiny_cfg();
    let dir = fresh_cache_dir("warm");

    // Cold run. Figures share cells (e.g. fig6a's selective-predication
    // job reappears in the IPC ablation), so even a cold run hits the
    // cache for repeats — but most jobs must actually simulate.
    let cold = runner(8, Some(dir.clone()));
    let cold_report = experiments::full_report(&cold, &cfg);
    let t = cold.telemetry();
    assert!(t.jobs_total > 0);
    assert!(t.jobs_run > 0, "cold cache must simulate");
    assert_eq!(t.jobs_run + t.cache_hits, t.jobs_total);

    // Warm run: same grid, fresh runner — 100% cache hits, zero
    // simulations, identical bytes.
    let warm = runner(8, Some(dir.clone()));
    let warm_report = experiments::full_report(&warm, &cfg);
    let t = warm.telemetry();
    assert_eq!(t.jobs_run, 0, "warm cache must execute zero simulations");
    assert_eq!(t.cache_hits, t.jobs_total, "every job served from cache");
    assert_eq!(
        cold_report, warm_report,
        "cache state must never change report bytes"
    );

    // And caching itself must not change the result vs. no cache at all.
    let uncached = experiments::full_report(&runner(1, None), &cfg);
    assert_eq!(uncached, warm_report);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changing_an_input_axis_misses_the_cache() {
    let cfg = tiny_cfg();
    let dir = fresh_cache_dir("axis");

    let first = runner(2, Some(dir.clone()));
    experiments::fig5(&first, &cfg, false);
    let baseline = first.telemetry().jobs_run;
    assert!(baseline > 0);

    // Different commit budget → different job hashes → all misses.
    let bumped = ExperimentConfig {
        commits: cfg.commits + 1,
        ..cfg.clone()
    };
    let second = runner(2, Some(dir.clone()));
    experiments::fig5(&second, &bumped, false);
    let t = second.telemetry();
    assert_eq!(t.cache_hits, 0, "changed commit budget must invalidate");
    assert_eq!(t.jobs_run, t.jobs_total);

    // The original config still hits.
    let third = runner(2, Some(dir.clone()));
    experiments::fig5(&third, &cfg, false);
    let t = third.telemetry();
    assert_eq!(t.jobs_run, 0);
    assert_eq!(t.cache_hits, t.jobs_total);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_report_round_trips_and_carries_metrics() {
    let cfg = tiny_cfg();
    let r = runner(4, None);
    let doc = experiments::full_report_json(&r, &cfg);
    let text = doc.to_string();
    let parsed = Json::parse(&text).expect("emitted JSON parses");
    assert_eq!(parsed, doc, "round trip is lossless");

    for figure in ["fig5", "fig6a", "fig6b", "ipc_ablation"] {
        assert!(parsed.get(figure).is_some(), "missing {figure}");
    }
    let fig5_rows = parsed
        .get("fig5")
        .and_then(|f| f.get("rows"))
        .and_then(Json::as_arr)
        .expect("fig5.rows is an array");
    assert_eq!(fig5_rows.len(), 1, "one selected benchmark");
    assert_eq!(
        fig5_rows[0].get("benchmark").and_then(Json::as_str),
        Some("gzip")
    );
    let rates = fig5_rows[0]
        .get("misprediction_rates")
        .and_then(Json::as_arr)
        .expect("rates array");
    for rate in rates {
        let v = rate.as_f64().expect("numeric rate");
        assert!((0.0..=1.0).contains(&v));
    }

    // Each run carries its full metric block: counters, stall buckets,
    // per-PC histogram.
    let metrics = fig5_rows[0]
        .get("metrics")
        .and_then(Json::as_arr)
        .expect("metrics array");
    assert_eq!(metrics.len(), 2, "one block per scheme column");
    let counters = metrics[0].get("counters").expect("counters object");
    let cycles = counters.get("cycles").and_then(Json::as_i64).unwrap();
    assert!(cycles > 0);
    let stall_sum: i64 = [
        "stall.fetch_miss",
        "stall.rename_stall",
        "stall.issue_wait",
        "stall.commit_bound",
        "stall.flush_recovery",
        "stall.predication_flush",
    ]
    .iter()
    .map(|k| counters.get(k).and_then(Json::as_i64).expect(k))
    .sum();
    assert_eq!(stall_sum, cycles, "stall buckets partition the cycles");
    assert!(metrics[0].get("per_pc").is_some(), "per-PC histograms");

    // Telemetry deliberately lives OUTSIDE the deterministic report; the
    // runner exposes it separately.
    assert!(parsed.get("telemetry").is_none());
    let telemetry = r.telemetry().to_json();
    let total = telemetry.get("jobs_total").and_then(Json::as_i64).unwrap();
    let run = telemetry.get("jobs_run").and_then(Json::as_i64).unwrap();
    let hits = telemetry.get("cache_hits").and_then(Json::as_i64).unwrap();
    assert!(total > 0);
    assert_eq!(run + hits, total);
}

#[test]
fn fused_fig6a_grid_preserves_cross_lane_isolation() {
    // The fused path's acceptance gate, end to end: the FULL Figure-6a
    // grid (every benchmark × every scheme column) run as fused lanes
    // must report per-cell statistics identical to dedicated per-cell
    // jobs. Any cross-lane state leak — a shared predictor table, a
    // polluted history register, a resource ledger carried between
    // lanes — shows up as a SimStats diff on some cell.
    let cfg = ExperimentConfig {
        commits: 8_000,
        profile_steps: 20_000,
        ..ExperimentConfig::default()
    };
    let jobs = experiments::plan(&cfg, experiments::PlanSpec::Fig6a);
    assert!(jobs.len() >= 60, "full grid: {} cells", jobs.len());

    let fused = runner(4, None);
    let solo = Runner::new(RunnerOptions {
        jobs: 4,
        fuse: false,
        ..RunnerOptions::default()
    });
    let a = fused.run_grid(&jobs);
    let b = solo.run_grid(&jobs);
    for ((job, fa), fb) in jobs.iter().zip(&a).zip(&b) {
        assert_eq!(
            fa.stats,
            fb.stats,
            "cell {} diverged when fused",
            job.canon()
        );
        assert_eq!(fa.static_insns, fb.static_insns, "{}", job.canon());
    }

    // And the fused runner genuinely fused: one multi-lane pass per
    // benchmark stream, one lane per scheme column, none on the solo
    // runner.
    let t = fused.telemetry();
    assert_eq!(t.fused_lanes, jobs.len() as u64);
    assert_eq!(
        t.fused_passes,
        t.fused_lanes / experiments::FIG6A_SCHEMES.len() as u64,
        "every scheme column fused into each stream's pass"
    );
    assert_eq!(solo.telemetry().fused_passes, 0);
}

#[test]
fn fused_fig6a_identity_survives_tracing_and_phase_profiling() {
    // Event tracing and phase profiling are monomorphized variants of
    // the same record loop; both must be observation-only. This pins the
    // fig-6a scheme columns, fused, in all four instantiations of the
    // loop against the plain solo replay of each cell.
    use std::sync::Arc;

    use ppsim::compiler::{compile, spec2000_suite, CompileOptions};
    use ppsim::core::experiments::FIG6A_SCHEMES;
    use ppsim::pipeline::{LaneSet, SimOptions, TraceBuffer, TraceCursor};

    const COMMITS: u64 = 8_000;
    let spec = spec2000_suite()
        .into_iter()
        .find(|s| s.name == "gzip")
        .expect("gzip is in the suite");
    let compiled = compile(&spec, &CompileOptions::with_ifconv()).expect("gzip compiles");
    let trace = Arc::new(TraceBuffer::capture(&compiled.program, COMMITS).expect("capture"));

    let solo: Vec<_> = FIG6A_SCHEMES
        .iter()
        .map(|&(scheme, predication, _)| {
            SimOptions::new(scheme, predication)
                .build_source(TraceCursor::new(Arc::clone(&trace)))
                .expect("fig-6a cells carry no overrides")
                .run(COMMITS)
                .stats
        })
        .collect();

    // (event-ring capacity, phase profiling): the four monomorphized
    // instantiations of the record loop.
    for (events, phases) in [(0usize, false), (512, false), (0, true), (512, true)] {
        let opts: Vec<SimOptions> = FIG6A_SCHEMES
            .iter()
            .map(|&(scheme, predication, _)| {
                SimOptions::new(scheme, predication)
                    .trace_events(events)
                    .profile_phases(phases)
            })
            .collect();
        let mut set = LaneSet::new(TraceCursor::new(Arc::clone(&trace)), &opts)
            .expect("fig-6a cells carry no overrides");
        let runs = set.run(COMMITS);
        for ((run, solo), &(scheme, _, _)) in runs.iter().zip(&solo).zip(&FIG6A_SCHEMES) {
            assert_eq!(
                run.stats,
                *solo,
                "events={events} phases={phases}: {} lane diverged from plain solo replay",
                scheme.name()
            );
        }
        // Profiled lanes carry an attribution report; unprofiled lanes
        // carry none — and only profiled lanes pay for one.
        let reports = set.phase_reports();
        for report in &reports {
            assert_eq!(report.is_some(), phases, "events={events} phases={phases}");
        }
        if phases {
            let records: u64 = reports.iter().flatten().map(|r| r.records).sum();
            assert_eq!(
                records,
                trace.len() * FIG6A_SCHEMES.len() as u64,
                "every lane profiles every record exactly once"
            );
            let total: u64 = reports.iter().flatten().map(|r| r.total_nanos()).sum();
            assert!(total > 0, "profiled lanes must attribute time");
        }
    }
}
