//! Cross-crate invariants of the timing simulator, checked over random
//! workloads and every prediction scheme.
//!
//! Seeds are fixed (the workspace builds offline with no external
//! property-testing crates); each seed generates a distinct workload via
//! `test_workload`, so these still sweep different branch populations.

use ppsim::compiler::workloads::test_workload;
use ppsim::compiler::{compile, CompileOptions};
use ppsim::pipeline::{CoreConfig, PredicationModel, SchemeKind, SimStats, Simulator};

const SCHEMES: [SchemeKind; 5] = [
    SchemeKind::Conventional,
    SchemeKind::PepPa,
    SchemeKind::Predicate,
    SchemeKind::IdealConventional,
    SchemeKind::IdealPredicate,
];

/// Workload seeds for the invariant sweeps (arbitrary, spread out).
const SEEDS: [u64; 6] = [3, 77, 1234, 4242, 8191, 9973];

fn run(seed: u64, scheme: SchemeKind, model: PredicationModel, commits: u64) -> (SimStats, bool) {
    let spec = test_workload(seed, i64::MAX / 4);
    let compiled = compile(&spec, &CompileOptions::with_ifconv()).unwrap();
    let mut sim = Simulator::new(&compiled.program, scheme, model, CoreConfig::paper());
    let r = sim.run(commits);
    (r.stats, r.halted)
}

fn check_invariants(s: &SimStats) {
    assert!(s.mispredicts <= s.cond_branches, "mispredicts bounded");
    assert!(
        s.early_resolved <= s.cond_branches,
        "early-resolved bounded"
    );
    assert!(s.early_resolved_saves <= s.shadow_mispredicts.max(s.cond_branches));
    assert!(s.predicate_mispredictions <= s.predicate_predictions);
    assert!(s.committed > 0 && s.cycles > 0);
    assert!(s.ipc() > 0.05 && s.ipc() <= 6.0, "ipc sane: {}", s.ipc());
    assert!(s.nullified <= s.committed);
    let rate = s.misprediction_rate();
    assert!((0.0..=1.0).contains(&rate));
}

#[test]
fn stats_invariants_hold_for_every_scheme() {
    for seed in SEEDS {
        for scheme in SCHEMES {
            let (s, halted) = run(seed, scheme, PredicationModel::Cmov, 25_000);
            assert!(!halted, "seed {seed}");
            check_invariants(&s);
        }
    }
}

#[test]
fn selective_predication_invariants() {
    for seed in SEEDS {
        let (s, _) = run(
            seed,
            SchemeKind::Predicate,
            PredicationModel::Selective,
            25_000,
        );
        check_invariants(&s);
        assert!(
            s.cancelled_at_rename + s.unguarded_at_rename <= s.committed,
            "seed {seed}"
        );
        assert!(
            s.predication_flushes <= s.cancelled_at_rename + s.unguarded_at_rename,
            "seed {seed}"
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    for seed in SEEDS {
        let (a, _) = run(
            seed,
            SchemeKind::Predicate,
            PredicationModel::Selective,
            20_000,
        );
        let (b, _) = run(
            seed,
            SchemeKind::Predicate,
            PredicationModel::Selective,
            20_000,
        );
        assert_eq!(a.cycles, b.cycles, "seed {seed}");
        assert_eq!(a.mispredicts, b.mispredicts, "seed {seed}");
        assert_eq!(a.early_resolved, b.early_resolved, "seed {seed}");
        assert_eq!(a.mem.l1d.accesses, b.mem.l1d.accesses, "seed {seed}");
    }
}

/// Early-resolved branches never mispredict: the defining invariant of the
/// mechanism (the branch reads the computed value).
#[test]
fn early_resolution_is_always_correct() {
    for seed in [1u64, 7, 42] {
        let (s, _) = run(seed, SchemeKind::Predicate, PredicationModel::Cmov, 60_000);
        assert!(
            s.mispredicts + s.early_resolved
                <= s.cond_branches + s.mispredicts.min(s.cond_branches - s.early_resolved),
            "mispredicts can only come from non-early-resolved branches: {s:?}"
        );
        assert!(s.mispredicts <= s.cond_branches - s.early_resolved);
    }
}

/// The ideal schemes (no aliasing, perfect history) are at least as good
/// as their realistic counterparts, modulo sampling noise.
#[test]
fn ideal_variants_do_not_lose() {
    let (real, _) = run(5, SchemeKind::Conventional, PredicationModel::Cmov, 120_000);
    let (ideal, _) = run(
        5,
        SchemeKind::IdealConventional,
        PredicationModel::Cmov,
        120_000,
    );
    assert!(
        ideal.misprediction_rate() <= real.misprediction_rate() + 0.02,
        "ideal {} vs real {}",
        ideal.misprediction_rate(),
        real.misprediction_rate()
    );
    let (real_p, _) = run(5, SchemeKind::Predicate, PredicationModel::Cmov, 120_000);
    let (ideal_p, _) = run(
        5,
        SchemeKind::IdealPredicate,
        PredicationModel::Cmov,
        120_000,
    );
    assert!(
        ideal_p.misprediction_rate() <= real_p.misprediction_rate() + 0.02,
        "ideal {} vs real {}",
        ideal_p.misprediction_rate(),
        real_p.misprediction_rate()
    );
}

/// Narrower machines are slower; the memory system sees traffic.
#[test]
fn machine_width_and_memory_sanity() {
    let spec = test_workload(3, i64::MAX / 4);
    let compiled = compile(&spec, &CompileOptions::no_ifconv()).unwrap();
    let big = Simulator::new(
        &compiled.program,
        SchemeKind::Conventional,
        PredicationModel::Cmov,
        CoreConfig::paper(),
    )
    .run(40_000);
    let small = Simulator::new(
        &compiled.program,
        SchemeKind::Conventional,
        PredicationModel::Cmov,
        CoreConfig::tiny(),
    )
    .run(40_000);
    assert!(small.stats.cycles > big.stats.cycles);
    assert!(big.stats.mem.l1d.accesses > 1000);
    assert!(big.stats.mem.l1i.accesses > 1000);
}
