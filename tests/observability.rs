//! End-to-end properties of the observability layer (the acceptance
//! criteria of the metric/stall/trace subsystem):
//!
//! 1. **Stall invariant** — on compiled benchmarks, every scheme and
//!    if-conversion setting charges each cycle to exactly one bucket:
//!    `stall.total() == cycles`.
//! 2. **Metric export** — the metric block renders to JSON and parses
//!    back losslessly.
//! 3. **Cache replay** — a warm-cache rerun executes zero simulations and
//!    reproduces the full metric block byte-for-byte.

use std::path::PathBuf;

use ppsim::compiler::{compile, CompileOptions};
use ppsim::core::{experiments, ExperimentConfig, Json, Runner, RunnerOptions};
use ppsim::isa::Machine;
use ppsim::prelude::*;

fn compiled(ifconv: bool) -> ppsim::compiler::Compiled {
    let spec = ppsim::compiler::spec2000_suite()
        .into_iter()
        .find(|s| s.name == "gzip")
        .unwrap();
    let mut opts = if ifconv {
        CompileOptions::with_ifconv()
    } else {
        CompileOptions::no_ifconv()
    };
    opts.profile_steps = 50_000;
    compile(&spec, &opts).unwrap()
}

#[test]
fn stall_buckets_partition_cycles_for_every_scheme_and_compile_mode() {
    for ifconv in [false, true] {
        let compiled = compiled(ifconv);
        for scheme in SchemeSpec::ALL {
            for predication in [PredicationModel::Cmov, PredicationModel::Selective] {
                let mut sim = SimOptions::new(scheme, predication)
                    .build_source(Machine::new(&compiled.program))
                    .unwrap();
                let r = sim.run(25_000);
                let s = &r.stats;
                assert_eq!(
                    s.stall.total(),
                    s.cycles,
                    "cycles leaked out of the stall partition \
                     (ifconv={ifconv}, {scheme:?}, {predication:?})"
                );
                // Every bucket reaches the metric registry.
                let m = s.metrics();
                let sum: u64 = StallBucket::ALL
                    .iter()
                    .map(|b| {
                        m.counter_value(&format!("stall.{}", b.name()))
                            .expect("bucket registered")
                    })
                    .sum();
                assert_eq!(sum, s.cycles);
            }
        }
    }
}

#[test]
fn metric_block_round_trips_through_json() {
    let compiled = compiled(true);
    let mut sim = SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective)
        .shadow(true)
        .build_source(Machine::new(&compiled.program))
        .unwrap();
    let r = sim.run(25_000);
    let doc = r.stats.metrics().to_json();
    let text = doc.to_string();
    let parsed = Json::parse(&text).expect("metric JSON parses");
    assert_eq!(parsed, doc, "metric block round trip is lossless");

    let counters = parsed.get("counters").expect("counters object");
    assert!(counters.get("cycles").and_then(Json::as_i64).unwrap() > 0);
    assert!(counters.get("mem.l1i.accesses").is_some());
    let ipc = parsed
        .get("ratios")
        .and_then(|r| r.get("ipc"))
        .expect("ipc ratio");
    assert!(ipc.get("value").and_then(Json::as_f64).unwrap() > 0.0);
    let sites = parsed
        .get("per_pc")
        .and_then(|p| p.get("branch_sites"))
        .and_then(Json::as_arr)
        .expect("branch_sites histogram");
    assert!(!sites.is_empty(), "per-PC rows survive the export");
    // Rows are sorted by PC — the fix for the HashMap-order export.
    let pcs: Vec<i64> = sites
        .iter()
        .map(|row| row.as_arr().unwrap()[0].as_i64().unwrap())
        .collect();
    let mut sorted = pcs.clone();
    sorted.sort();
    assert_eq!(pcs, sorted, "per-PC rows must be PC-sorted");
}

#[test]
fn event_trace_is_bounded_and_exportable() {
    let compiled = compiled(true);
    let mut sim = SimOptions::new(SchemeSpec::Predicate, PredicationModel::Selective)
        .trace_events(64)
        .build_source(Machine::new(&compiled.program))
        .unwrap();
    sim.run(25_000);
    let ring = sim.events().expect("tracing enabled");
    assert!(ring.len() <= 64, "ring respects its capacity");
    assert!(ring.recorded() > ring.len() as u64, "long run overflows 64");
    let doc = ring.to_json();
    let parsed = Json::parse(&doc.to_string()).expect("trace JSON parses");
    assert_eq!(
        parsed.get("recorded").and_then(Json::as_i64).unwrap() as u64,
        ring.recorded()
    );
    assert_eq!(
        parsed.get("events").and_then(Json::as_arr).unwrap().len(),
        ring.len()
    );
}

#[test]
fn warm_cache_rerun_replays_metrics_byte_identically() {
    let cfg = ExperimentConfig {
        commits: 25_000,
        profile_steps: 50_000,
        only: vec!["gzip".into()],
        ..ExperimentConfig::default()
    };
    let dir: PathBuf = std::env::temp_dir().join(format!("ppsim-obs-suite-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let runner = |d: &PathBuf| {
        Runner::new(RunnerOptions {
            jobs: 4,
            cache: true,
            cache_dir: Some(d.clone()),
            ..RunnerOptions::default()
        })
    };

    let cold = runner(&dir);
    let cold_doc = experiments::full_report_json(&cold, &cfg).to_string();
    assert!(cold.telemetry().jobs_run > 0, "cold cache must simulate");

    let warm = runner(&dir);
    let warm_doc = experiments::full_report_json(&warm, &cfg).to_string();
    let t = warm.telemetry();
    assert_eq!(t.jobs_run, 0, "warm cache must execute zero simulations");
    assert_eq!(t.cache_hits, t.jobs_total);
    assert_eq!(
        cold_doc, warm_doc,
        "cached results must replay the full metric block bit-identically"
    );
    // Belt and braces: the replayed document still contains the stall
    // counters and per-PC histograms (i.e. the cache carries them, they
    // aren't just zero-defaults).
    let parsed = Json::parse(&warm_doc).unwrap();
    let metrics = parsed
        .get("fig6a")
        .and_then(|f| f.get("rows"))
        .and_then(Json::as_arr)
        .and_then(|rows| rows[0].get("metrics"))
        .and_then(Json::as_arr)
        .expect("metric blocks in replayed report")
        .to_vec();
    let counters = metrics[0].get("counters").unwrap();
    let cycles = counters.get("cycles").and_then(Json::as_i64).unwrap();
    let stall_sum: i64 = [
        "stall.fetch_miss",
        "stall.rename_stall",
        "stall.issue_wait",
        "stall.commit_bound",
        "stall.flush_recovery",
        "stall.predication_flush",
    ]
    .iter()
    .map(|k| counters.get(k).and_then(Json::as_i64).unwrap())
    .sum();
    assert!(cycles > 0);
    assert_eq!(stall_sum, cycles, "replayed stall buckets still partition");

    let _ = std::fs::remove_dir_all(&dir);
}
