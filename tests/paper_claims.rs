//! Statistical acceptance tests: the *shape* of the paper's headline
//! results must hold on a representative subset of the suite.
//!
//! These use reduced instruction budgets (the full regeneration lives in
//! `ppsim-bench`); thresholds are deliberately loose — they pin the
//! direction and rough magnitude of each effect, not exact numbers.

use ppsim::compiler::{compile, CompileOptions};
use ppsim::core::{experiments, ExperimentConfig, Runner};
use ppsim::pipeline::{CoreConfig, PredicationModel, SchemeKind, Simulator};

fn cfg(names: &[&str], commits: u64) -> ExperimentConfig {
    ExperimentConfig {
        commits,
        profile_steps: 100_000,
        core: CoreConfig::paper(),
        only: names.iter().map(|s| s.to_string()).collect(),
        ..ExperimentConfig::default()
    }
}

/// Figure 5's direction: on non-if-converted code the predicate predictor
/// matches or beats the same-budget conventional predictor on benchmarks
/// with early-resolvable branches.
#[test]
fn fig5_direction_holds() {
    let r = experiments::fig5(
        &Runner::serial_no_cache(),
        &cfg(&["gzip", "crafty", "mcf"], 120_000),
        false,
    );
    let conv = r.average_rate(0);
    let pred = r.average_rate(1);
    assert!(
        pred < conv,
        "predicate predictor wins on early-resolve-rich benchmarks: {pred} vs {conv}"
    );
}

/// Figure 6a's direction: on if-converted code the predicate predictor
/// beats the conventional predictor (correlation recovery), and PEP-PA is
/// the worst of the three.
#[test]
fn fig6a_ordering_holds() {
    let r = experiments::fig6a(
        &Runner::serial_no_cache(),
        &cfg(&["gcc", "crafty", "vpr"], 120_000),
    );
    let pep = r.average_rate(0);
    let conv = r.average_rate(1);
    let pred = r.average_rate(2);
    assert!(pred < conv, "correlation recovery: {pred} vs {conv}");
    assert!(conv < pep, "PEP-PA degrades out of order: {conv} vs {pep}");
}

/// Figure 6b: the breakdown attributes a positive gain to correlation on
/// correlation-rich benchmarks, and early + correlation = total exactly.
#[test]
fn fig6b_breakdown_attributes_correlation() {
    let r = experiments::fig6b(
        &Runner::serial_no_cache(),
        &cfg(&["gcc", "crafty"], 120_000),
    );
    for row in &r.rows {
        assert!((row.early + row.correlation - row.total).abs() < 1e-9);
    }
    assert!(
        r.average_correlation() > 0.5,
        "correlation contribution dominates on gcc/crafty: {}",
        r.average_correlation()
    );
}

/// The early-resolved component exists on benchmarks whose hard branches
/// survive if-conversion (HardRegion kernels).
#[test]
fn fig6b_early_component_exists() {
    let r = experiments::fig6b(
        &Runner::serial_no_cache(),
        &cfg(&["mcf", "crafty", "vortex"], 150_000),
    );
    assert!(
        r.average_early() > 0.05,
        "surviving hard branches early-resolve: {}",
        r.average_early()
    );
}

/// §4.2's negative-effects bound: on a benchmark with no correlation and
/// no early resolution (twolf), the predicate predictor's loss against the
/// conventional predictor stays small (the paper: < 0.40 points average).
#[test]
fn negative_effects_are_bounded() {
    let r = experiments::fig5(&Runner::serial_no_cache(), &cfg(&["twolf"], 150_000), false);
    let conv = r.average_rate(0);
    let pred = r.average_rate(1);
    assert!(
        pred - conv < 0.012,
        "aliasing + corruption window stay bounded: predicate {pred} vs conventional {conv}"
    );
}

/// If-conversion pays on the machine level: removing hard branches
/// improves IPC despite the added predicated work (the premise of the
/// whole paper — Chang et al. [4]).
#[test]
fn ifconversion_improves_ipc_on_hard_code() {
    let spec = ppsim::compiler::spec2000_suite()
        .into_iter()
        .find(|s| s.name == "crafty")
        .unwrap();
    let plain = compile(&spec, &CompileOptions::no_ifconv()).unwrap();
    let conv = compile(&spec, &CompileOptions::with_ifconv()).unwrap();
    let run = |p| {
        Simulator::new(
            p,
            SchemeKind::Predicate,
            PredicationModel::Selective,
            CoreConfig::paper(),
        )
        .run(150_000)
        .stats
    };
    let before = run(&plain.program);
    let after = run(&conv.program);
    assert!(
        after.ipc() > before.ipc(),
        "if-conversion removes misprediction stalls: {} -> {}",
        before.ipc(),
        after.ipc()
    );
    assert!(
        after.misprediction_rate() < before.misprediction_rate(),
        "and the remaining branches mispredict less often"
    );
}
