//! End-to-end bit-identity of the trace-replay engine (the acceptance
//! criterion of the capture-once/replay-many subsystem):
//!
//! 1. **Report identity** — a full suite sweep through trace replay (the
//!    default) emits byte-identical `full_report_json` to the inline
//!    `--no-replay` path.
//! 2. **Cell identity** — every `SchemeKind` × `PredicationModel` cell
//!    (with the shadow predictor attached) produces equal statistics on
//!    both paths, on both compile modes.
//! 3. **Telemetry** — the replay runner reports shared captures: far
//!    fewer captures than jobs, with the memo hit rate accounting for
//!    the rest.

use ppsim::core::{experiments, ExperimentConfig, Job, Runner, RunnerOptions};
use ppsim::pipeline::{CoreConfig, PredicationModel, SchemeKind};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        commits: 20_000,
        profile_steps: 50_000,
        only: vec!["gzip".into(), "twolf".into()],
        ..ExperimentConfig::default()
    }
}

fn runner(replay: bool) -> Runner {
    Runner::new(RunnerOptions {
        jobs: 4,
        cache: false,
        replay,
        ..RunnerOptions::default()
    })
}

#[test]
fn full_report_is_byte_identical_under_replay() {
    let cfg = tiny_cfg();
    let replayed = runner(true);
    let inline = runner(false);
    let a = experiments::full_report_json(&replayed, &cfg).to_string();
    let b = experiments::full_report_json(&inline, &cfg).to_string();
    assert!(!a.is_empty());
    assert_eq!(a, b, "replay must never change report bytes");
    assert!(
        replayed.telemetry().captures > 0,
        "the replay runner actually captured traces"
    );
    assert_eq!(
        inline.telemetry().captures,
        0,
        "the inline runner never captures"
    );
}

#[test]
fn every_cell_matches_inline_statistics() {
    for ifconv in [false, true] {
        let jobs: Vec<Job> = SchemeKind::ALL
            .into_iter()
            .flat_map(|scheme| {
                [PredicationModel::Cmov, PredicationModel::Selective]
                    .into_iter()
                    .map(move |predication| {
                        let mut j = Job::new(
                            "vpr",
                            ifconv,
                            scheme,
                            predication,
                            10_000,
                            50_000,
                            CoreConfig::paper(),
                        );
                        j.shadow = true;
                        j
                    })
            })
            .collect();
        let a = runner(true).run_grid(&jobs);
        let b = runner(false).run_grid(&jobs);
        for ((ra, rb), job) in a.iter().zip(&b).zip(&jobs) {
            assert_eq!(
                ra.stats,
                rb.stats,
                "cell {} (ifconv={ifconv}) diverged under replay",
                job.label()
            );
        }
    }
}

#[test]
fn replay_telemetry_reports_shared_captures() {
    let cfg = tiny_cfg();
    let r = runner(true);
    experiments::full_report_json(&r, &cfg);
    let t = r.telemetry();
    // Two benchmarks, two compile modes, one commit budget → a handful of
    // distinct captures serve the whole sweep.
    assert!(t.captures > 0);
    assert!(
        t.captures < t.jobs_run,
        "captures ({}) must be shared across the {} simulated jobs",
        t.captures,
        t.jobs_run
    );
    assert_eq!(
        t.captures + t.trace_memo_hits,
        t.jobs_run,
        "every simulated job either captured or hit the trace memo"
    );
    assert!(t.trace_memo_hit_rate() > 0.5);
    let json = t.to_json().to_string();
    for key in ["captures", "trace_memo_hits", "trace_memo_hit_rate"] {
        assert!(json.contains(key), "telemetry JSON missing {key}");
    }
}
