//! # ppsim-check — the differential cosimulation oracle
//!
//! The timing simulator and the architectural emulator implement the
//! same ISA twice: once as stage-timestamped resource bookkeeping, once
//! as plain interpretation. This crate fuzzes the gap between them.
//! [`run_check`] generates seeded random predicated torture programs
//! ([`gen`]), runs each one through every prediction scheme ×
//! if-conversion × predication-model cell against the emulator's ground
//! truth ([`oracle`]), and on any divergence greedily minimizes the
//! program to a reparseable `.pisa` repro ([`shrink()`]).
//!
//! Checking is parallel (the runner's work-stealing pool) and cached
//! (passing verdicts are content-addressed on disk, so a re-run with the
//! same seed and generator version is instant).
//!
//! ```
//! use ppsim_check::{run_check, CheckOptions};
//! let report = run_check(&CheckOptions {
//!     seed: 0xC0FFEE,
//!     iters: 2,
//!     jobs: 1,
//!     use_cache: false,
//!     ..CheckOptions::default()
//! });
//! assert!(report.passed());
//! ```

pub mod gen;
pub mod oracle;
pub mod replay;
pub mod shrink;

use std::path::PathBuf;
use std::sync::Mutex;

use ppsim_core::Table;
use ppsim_isa::Program;
use ppsim_pipeline::TestFault;
use ppsim_runner::hash::{fnv1a64, hex64};
use ppsim_runner::{pool, DiskCache};

pub use gen::{generate, Form};
pub use oracle::{check_fused, check_program, check_sampled, Cell, Divergence, DivergenceKind};
pub use replay::{parse_repro_header, replay_repro, ReplayOutcome, ReproHeader};
pub use shrink::shrink;

/// Bump to invalidate every cached verdict (generator change, new grid
/// cell, new invariant — anything that could turn a cached pass stale).
/// v2: grid cells replay the reference capture instead of running
/// lockstep (one designated cell keeps the full architectural diff).
/// v3: optional sampled-simulation invariants (identity + epsilon drift)
/// join the sweep; the epsilon is part of the verdict key.
/// v4: the fused cross-lane isolation check joins the sweep (fused
/// lanes over one decode must match their solo replays bit for bit).
/// v5: the TAGE frontier (tage, tage-h2p, tage-predicate) joins the
/// scheme grid and a TAGE lane joins the fused-isolation lane set.
const VERDICT_VERSION: &str = "ppsim-check v5";

/// Configuration for one [`run_check`] sweep.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Base seed; each iteration derives an independent stream from it.
    pub seed: u64,
    /// Iterations (each checks two programs: branchy and if-converted).
    pub iters: u64,
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Deliberate predictor fault injected into every cell (self-test).
    pub fault: Option<TestFault>,
    /// Consult and populate the on-disk verdict cache.
    pub use_cache: bool,
    /// Verdict cache directory (`None` = `<runner cache>/check`).
    pub cache_dir: Option<PathBuf>,
    /// Where to write minimized `.pisa` repros (`None` = don't write).
    pub dump_dir: Option<PathBuf>,
    /// Shrinker budget: failure-predicate evaluations per divergence.
    pub max_shrink_evals: usize,
    /// Also run the sampled-simulation invariants, allowing the
    /// multi-window aggregate misprediction rate to drift at most this
    /// far from the full run (`None` = sampled checks off).
    pub sample_epsilon: Option<f64>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            seed: 0,
            iters: 100,
            jobs: 0,
            fault: None,
            use_cache: true,
            cache_dir: None,
            dump_dir: None,
            max_shrink_evals: shrink::DEFAULT_MAX_EVALS,
            sample_epsilon: None,
        }
    }
}

/// One confirmed, minimized divergence.
#[derive(Clone, Debug)]
pub struct CheckFinding {
    /// Iteration that produced the failing program.
    pub iter: u64,
    /// Program form (branchy vs if-converted hammocks).
    pub form: Form,
    /// Failing grid cell ([`Cell::label`], or `"reference"`).
    pub cell: String,
    /// Human-readable divergence, re-derived on the minimized program.
    pub message: String,
    /// Minimized program, as reparseable assembly.
    pub repro: String,
    /// Instruction count of the minimized program.
    pub repro_insns: usize,
    /// Where the repro was written, when a dump directory was set.
    pub repro_path: Option<PathBuf>,
}

/// The outcome of a [`run_check`] sweep.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Programs generated and examined (including cached ones).
    pub programs: u64,
    /// Grid cells actually simulated this run.
    pub cells_checked: u64,
    /// Programs whose passing verdict came from the cache.
    pub cache_hits: u64,
    /// Divergences found, in grid order.
    pub findings: Vec<CheckFinding>,
}

impl CheckReport {
    /// Whether the sweep found no divergence.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// The findings as a rendered table (empty table when all clear).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Differential check findings",
            &["iter", "form", "cell", "insns", "divergence"],
        );
        for f in &self.findings {
            t.row(vec![
                f.iter.to_string(),
                f.form.name().to_string(),
                f.cell.clone(),
                f.repro_insns.to_string(),
                f.message.clone(),
            ]);
        }
        t
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} programs ({} cells simulated, {} cached): {}",
            ppsim_core::report::count(self.programs),
            ppsim_core::report::count(self.cells_checked),
            ppsim_core::report::count(self.cache_hits),
            if self.passed() {
                "no divergences".to_string()
            } else {
                format!("{} divergence(s)", self.findings.len())
            }
        )
    }
}

/// Per-task result inside the parallel sweep.
enum TaskOut {
    CacheHit,
    Pass { cells: u64 },
    Fail(Box<CheckFinding>),
}

/// Content-address of one task's passing verdict.
fn verdict_key(opts: &CheckOptions, iter: u64, form: Form) -> String {
    let canon = format!(
        "{VERDICT_VERSION}|seed={:#x}|iter={iter}|form={}|fault={:?}|sample={}",
        opts.seed,
        form.name(),
        opts.fault,
        opts.sample_epsilon
            .map_or("-".to_string(), |e| format!("{:016x}", e.to_bits()))
    );
    hex64(fnv1a64(canon.as_bytes()))
}

/// Serializes panic-hook swapping across concurrent [`run_check`] (and
/// [`replay_repro`]) calls — tests run in-process and in parallel.
pub(crate) static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Minimizes a failing program, preserving the original divergence's
/// cell and kind so the shrinker cannot slide onto a different bug.
fn minimize(program: &Program, d: &Divergence, opts: &CheckOptions) -> (Program, String) {
    // Fused-isolation failures are reproduced through the fused
    // checker, not a grid cell.
    if matches!(d.kind, DivergenceKind::FusedLaneMismatch { .. }) {
        let want_cell = d.cell.clone();
        let want_kind = std::mem::discriminant(&d.kind);
        let minimized = shrink(program, opts.max_shrink_evals, |p| {
            matches!(
                oracle::check_fused(p, opts.fault),
                Err(e) if e.cell == want_cell && std::mem::discriminant(&e.kind) == want_kind
            )
        });
        let message = oracle::check_fused(&minimized, opts.fault)
            .err()
            .map(|e| e.to_string())
            .unwrap_or_else(|| d.to_string());
        return (minimized, message);
    }
    // Sampled-invariant failures are reproduced through the sampled
    // checker, not a grid cell.
    if matches!(
        d.kind,
        DivergenceKind::SampleIdentity { .. } | DivergenceKind::SampleDrift { .. }
    ) {
        let eps = opts.sample_epsilon.unwrap_or(0.0);
        let want_cell = d.cell.clone();
        let want_kind = std::mem::discriminant(&d.kind);
        let minimized = shrink(program, opts.max_shrink_evals, |p| {
            matches!(
                oracle::check_sampled(p, opts.fault, eps),
                Err(e) if e.cell == want_cell && std::mem::discriminant(&e.kind) == want_kind
            )
        });
        let message = oracle::check_sampled(&minimized, opts.fault, eps)
            .err()
            .map(|e| e.to_string())
            .unwrap_or_else(|| d.to_string());
        return (minimized, message);
    }
    let cell = oracle::cell_by_label(&d.cell).unwrap_or_else(|| oracle::Cell::grid()[0]);
    let want_cell = d.cell.clone();
    let want_kind = std::mem::discriminant(&d.kind);
    let minimized = shrink(program, opts.max_shrink_evals, |p| {
        matches!(
            oracle::check_single_cell(p, cell, opts.fault),
            Err(e) if e.cell == want_cell && std::mem::discriminant(&e.kind) == want_kind
        )
    });
    let message = oracle::check_single_cell(&minimized, cell, opts.fault)
        .err()
        .map(|e| e.to_string())
        .unwrap_or_else(|| d.to_string());
    (minimized, message)
}

fn run_task(opts: &CheckOptions, cache_dir: Option<&PathBuf>, k: usize) -> TaskOut {
    let iter = k as u64 / 2;
    let form = Form::ALL[k % 2];

    let verdict_path = cache_dir.map(|d| d.join(format!("{}.ok", verdict_key(opts, iter, form))));
    if let Some(p) = &verdict_path {
        if p.exists() {
            return TaskOut::CacheHit;
        }
    }

    let program = generate(opts.seed, iter, form);
    let outcome = check_program(&program, opts.fault)
        .and_then(|cells| oracle::check_fused(&program, opts.fault).map(|lanes| cells + lanes))
        .and_then(|cells| match opts.sample_epsilon {
            Some(eps) => {
                oracle::check_sampled(&program, opts.fault, eps).map(|extra| cells + extra)
            }
            None => Ok(cells),
        });
    match outcome {
        Ok(cells) => {
            if let Some(p) = &verdict_path {
                // A failed store just means a re-check next run.
                let _ = std::fs::write(p, "ok\n");
            }
            TaskOut::Pass { cells }
        }
        Err(d) => {
            let (minimized, message) = minimize(&program, &d, opts);
            let repro = format!(
                "// ppsim-check repro: seed {:#x} iter {iter} form {} cell {}\n// {}\n{}",
                opts.seed,
                form.name(),
                d.cell,
                message,
                minimized.listing()
            );
            let repro_path = opts.dump_dir.as_ref().map(|dir| {
                let path = dir.join(format!(
                    "seed-{:x}-iter{iter}-{}.pisa",
                    opts.seed,
                    form.name()
                ));
                if std::fs::create_dir_all(dir).is_ok() {
                    let _ = std::fs::write(&path, &repro);
                }
                path
            });
            TaskOut::Fail(Box::new(CheckFinding {
                iter,
                form,
                cell: d.cell,
                message,
                repro,
                repro_insns: minimized.insns.len(),
                repro_path,
            }))
        }
    }
}

/// Runs the full differential sweep: `2 × iters` generated programs
/// (branchy and if-converted forms), each checked across the full
/// scheme × predication grid ([`Cell::grid`]) plus the fused cross-lane
/// isolation lanes, in parallel, with passing verdicts cached.
pub fn run_check(opts: &CheckOptions) -> CheckReport {
    let cache_dir = if opts.use_cache {
        let dir = opts
            .cache_dir
            .clone()
            .unwrap_or_else(|| DiskCache::default_dir().join("check"));
        std::fs::create_dir_all(&dir).ok().map(|_| dir)
    } else {
        None
    };

    let jobs = if opts.jobs > 0 {
        opts.jobs
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };

    // Divergent cells are reported through `catch_unwind`; silence the
    // default hook so expected panics don't spray backtraces, restoring
    // it afterwards. The lock serializes concurrent sweeps in-process.
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let n = (opts.iters * 2) as usize;
    let outs = pool::run_indexed(n, jobs, |k| run_task(opts, cache_dir.as_ref(), k));

    std::panic::set_hook(prev_hook);

    let mut report = CheckReport {
        programs: n as u64,
        ..CheckReport::default()
    };
    for out in outs {
        match out {
            TaskOut::CacheHit => report.cache_hits += 1,
            TaskOut::Pass { cells } => report.cells_checked += cells,
            TaskOut::Fail(f) => report.findings.push(*f),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_cache(seed: u64, iters: u64) -> CheckOptions {
        CheckOptions {
            seed,
            iters,
            jobs: 2,
            use_cache: false,
            ..CheckOptions::default()
        }
    }

    #[test]
    fn clean_sweep_passes() {
        let report = run_check(&no_cache(0xC0FFEE, 5));
        assert!(report.passed(), "{:#?}", report.findings);
        assert_eq!(report.programs, 10);
        // Full grid plus the fused lanes, per program — derived, so the
        // sweep grows with the scheme registry.
        let per_program = (Cell::grid().len() + oracle::FUSED_LANES.len()) as u64;
        assert_eq!(report.cells_checked, 10 * per_program);
        assert_eq!(report.cache_hits, 0);
        assert!(report.summary().contains("no divergences"));
    }

    #[test]
    fn verdict_cache_skips_rechecks() {
        let dir = std::env::temp_dir().join(format!("ppsim-check-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = CheckOptions {
            seed: 0xCACE,
            iters: 3,
            jobs: 1,
            cache_dir: Some(dir.clone()),
            ..CheckOptions::default()
        };
        let first = run_check(&opts);
        assert!(first.passed());
        assert_eq!(first.cache_hits, 0);
        let second = run_check(&opts);
        assert!(second.passed());
        assert_eq!(second.cache_hits, 6, "all verdicts served from cache");
        assert_eq!(second.cells_checked, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_sweep_adds_checks_and_passes() {
        let opts = CheckOptions {
            sample_epsilon: Some(0.25),
            ..no_cache(0xC0FFEE, 3)
        };
        let report = run_check(&opts);
        assert!(report.passed(), "{:#?}", report.findings);
        assert_eq!(report.programs, 6);
        let grid_only = 6 * (Cell::grid().len() + oracle::FUSED_LANES.len()) as u64;
        assert!(
            report.cells_checked > grid_only,
            "sampled checks must add cells beyond the {grid_only}-cell grid sweep: {}",
            report.cells_checked
        );
    }

    #[test]
    fn injected_ghr_share_fault_is_caught_and_reproduced() {
        let opts = CheckOptions {
            fault: Some(TestFault::ShareGhr),
            max_shrink_evals: 30,
            ..no_cache(0xC0FFEE, 5)
        };
        let report = run_check(&opts);
        assert!(!report.passed(), "a shared GHR must break fused isolation");
        let f = &report.findings[0];
        assert!(f.cell.ends_with("/fused"), "{}", f.cell);
        assert!(
            f.message.contains("fused lane diverged"),
            "wrong divergence: {}",
            f.message
        );
        // The minimized repro still fails through the fused checker.
        let reparsed = ppsim_isa::parse_program(&f.repro).expect("repro reparses");
        let d = oracle::check_fused(&reparsed, opts.fault).expect_err("repro still fails");
        assert!(d.cell.ends_with("/fused"), "{}", d.cell);
    }

    #[test]
    fn injected_fault_yields_minimized_repro() {
        let opts = CheckOptions {
            fault: Some(TestFault::InvertOracle),
            ..no_cache(0xC0FFEE, 1)
        };
        let report = run_check(&opts);
        assert!(!report.passed(), "inverted oracle must be caught");
        let f = &report.findings[0];
        assert!(f.cell.ends_with("/oracle"), "{}", f.cell);
        assert!(
            f.repro_insns <= 20,
            "repro should minimize to <= 20 insns, got {}:\n{}",
            f.repro_insns,
            f.repro
        );
        // The dumped repro must reparse to a program that still fails.
        let reparsed = ppsim_isa::parse_program(&f.repro).expect("repro reparses");
        let d = check_program(&reparsed, opts.fault).expect_err("repro still fails");
        assert_eq!(d.cell, f.cell);
        assert!(report.table().to_string().contains("oracle"));
    }
}
