//! The differential oracle.
//!
//! [`check_program`] runs one program through the architectural emulator
//! (`ppsim_isa::Machine`) to establish ground truth — recording the
//! committed stream into a [`TraceBuffer`] along the way — then through
//! the timing pipeline under every scheme × predication-model cell.
//!
//! One designated cell (the paper's headline predicate/selective point,
//! see [`Cell::lockstep`]) still carries an inline `Machine` and diffs
//! committed effects against the reference: dynamic instruction count,
//! every architectural register file, and memory at every stored-to
//! address. That cell guards the `Machine`-in-`Simulator` coupling
//! itself. The remaining cells replay the shared capture — the
//! architectural stream is then the reference stream *by construction*
//! (which is exactly the property that makes capture-once/replay-many
//! sound), so re-diffing it per cell would be redundant; they are
//! checked against the trace's halt and step count instead.
//!
//! On top of the architectural diff every cell pins the cross-scheme
//! invariants that must hold for *any* program:
//!
//! * stall-bucket conservation — every cycle charged to exactly one
//!   bucket (`stall.total() == cycles`),
//! * stage monotonicity — `fetched >= renamed >= committed`,
//! * flush accounting — every flush-replayed instruction traces back to
//!   a mispredict or predication flush
//!   (`fetched - committed <= mispredicts + predication_flushes`),
//! * early resolution is exact — a branch that consumed a computed
//!   predicate at rename never flushes (§3.2),
//! * the oracle-final ideal predictor never mispredicts.
//!
//! A simulator panic is caught and reported as a divergence rather than
//! tearing down the whole fuzz run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ppsim_isa::{ExecInfo, Fr, Gr, Machine, Pr, Program, TraceBuffer};
use ppsim_pipeline::{
    LaneSet, PredicationModel, SchemeSpec, SimOptions, SimStats, TestFault, TraceCursor,
};

/// Step budget for the reference emulator run. Generated programs halt
/// within a few thousand steps; hitting this bound means the *generator*
/// is broken, which is itself reported as a divergence.
pub const MAX_REF_STEPS: u64 = 200_000;

/// One point of the check grid: a scheme, a predication model, and
/// whether the ideal-conventional predictor runs in oracle-final mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Branch-prediction organization.
    pub scheme: SchemeSpec,
    /// How if-converted code is handled.
    pub predication: PredicationModel,
    /// Oracle-exact final direction (ideal-conventional only).
    pub oracle_final: bool,
}

impl Cell {
    /// The full grid: every scheme × {cmov, selective}, plus the
    /// oracle-final ideal-conventional cell — that is,
    /// `2 × SchemeSpec::ALL.len() + 1` cells, derived so a newly
    /// registered scheme joins the grid automatically.
    pub fn grid() -> Vec<Cell> {
        let mut cells = Vec::new();
        for scheme in SchemeSpec::ALL {
            for predication in [PredicationModel::Cmov, PredicationModel::Selective] {
                cells.push(Cell {
                    scheme,
                    predication,
                    oracle_final: false,
                });
            }
        }
        cells.push(Cell {
            scheme: SchemeSpec::IdealConventional,
            predication: PredicationModel::Selective,
            oracle_final: true,
        });
        cells
    }

    /// Whether this cell runs lockstep with an inline `Machine` (full
    /// architectural register/memory diff against the reference) instead
    /// of replaying the shared capture. Exactly one grid cell — the
    /// paper's headline predicate/selective point — keeps lockstep mode,
    /// guarding the functional/timing coupling that replay cells take as
    /// given.
    pub fn lockstep(&self) -> bool {
        self.scheme == SchemeSpec::Predicate
            && self.predication == PredicationModel::Selective
            && !self.oracle_final
    }

    /// Human-readable cell label (`predicate/selective`,
    /// `ideal-conventional/selective/oracle`, ...).
    pub fn label(&self) -> String {
        let model = match self.predication {
            PredicationModel::Cmov => "cmov",
            PredicationModel::Selective => "selective",
        };
        if self.oracle_final {
            format!("{}/{model}/oracle", self.scheme.name())
        } else {
            format!("{}/{model}", self.scheme.name())
        }
    }
}

/// What went wrong in one cell (or in the reference run).
#[derive(Clone, Debug, PartialEq)]
pub enum DivergenceKind {
    /// The reference emulator did not halt within [`MAX_REF_STEPS`].
    RefDidNotHalt {
        /// Steps executed before giving up.
        steps: u64,
    },
    /// The reference emulator reported a malformed program.
    RefError {
        /// The emulator's error message.
        message: String,
    },
    /// The timing simulator panicked.
    SimPanicked {
        /// Panic payload, when it was a string.
        message: String,
    },
    /// The simulator failed to commit the halt within the step budget.
    SimDidNotHalt {
        /// Instructions it did commit.
        committed: u64,
    },
    /// Committed dynamic instruction counts disagree.
    StepMismatch {
        /// Simulator machine steps.
        sim: u64,
        /// Reference machine steps.
        reference: u64,
    },
    /// A register differs between the two machines after the run.
    RegisterMismatch {
        /// `r5 = 3 vs 4`-style description of the first mismatch.
        detail: String,
    },
    /// A stored-to memory word differs between the two machines.
    MemoryMismatch {
        /// Byte address of the mismatching word.
        addr: u64,
        /// Simulator value.
        sim: u64,
        /// Reference value.
        reference: u64,
    },
    /// Stall buckets do not sum to the cycle count.
    StallLeak {
        /// Sum over all buckets.
        total: u64,
        /// The run's cycle count.
        cycles: u64,
    },
    /// `fetched >= renamed >= committed` violated.
    StageOrder {
        /// Fetch-stage events.
        fetched: u64,
        /// Rename-stage events.
        renamed: u64,
        /// Commits.
        committed: u64,
    },
    /// More flush-replayed instructions than flush causes.
    FlushAccounting {
        /// Fetch-stage events.
        fetched: u64,
        /// Commits.
        committed: u64,
        /// Branch mispredict flushes.
        mispredicts: u64,
        /// Predicate-speculation flushes.
        predication_flushes: u64,
    },
    /// An early-resolved branch flushed (§3.2 forbids this).
    EarlyResolveMispredict {
        /// Offending branch count.
        count: u64,
    },
    /// The oracle-final ideal predictor mispredicted.
    OracleMispredict {
        /// Mispredict count (must be zero).
        mispredicts: u64,
    },
    /// A single sampled window covering the whole committed stream (no
    /// skip, no warmup) did not reproduce the full run bit-for-bit.
    SampleIdentity {
        /// First differing headline counter, `name: sampled vs full`.
        detail: String,
    },
    /// The multi-window sampled aggregate misprediction rate drifted
    /// from the full run's beyond the allowed epsilon.
    SampleDrift {
        /// Full-run misprediction rate.
        full: f64,
        /// Window-aggregate misprediction rate.
        sampled: f64,
        /// The configured tolerance.
        epsilon: f64,
    },
    /// A fused lane's statistics diverged from the same cell run solo —
    /// cross-lane isolation broke.
    FusedLaneMismatch {
        /// First differing headline counter, `name: fused vs solo`.
        detail: String,
    },
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceKind::RefDidNotHalt { steps } => {
                write!(f, "reference emulator did not halt within {steps} steps")
            }
            DivergenceKind::RefError { message } => {
                write!(f, "reference emulator error: {message}")
            }
            DivergenceKind::SimPanicked { message } => {
                write!(f, "simulator panicked: {message}")
            }
            DivergenceKind::SimDidNotHalt { committed } => {
                write!(f, "simulator stalled after committing {committed}")
            }
            DivergenceKind::StepMismatch { sim, reference } => {
                write!(f, "executed {sim} dynamic insns, reference executed {reference}")
            }
            DivergenceKind::RegisterMismatch { detail } => {
                write!(f, "final register state diverged: {detail}")
            }
            DivergenceKind::MemoryMismatch {
                addr,
                sim,
                reference,
            } => write!(
                f,
                "memory diverged at {addr:#x}: {sim:#x} vs reference {reference:#x}"
            ),
            DivergenceKind::StallLeak { total, cycles } => {
                write!(f, "stall buckets sum to {total}, cycles = {cycles}")
            }
            DivergenceKind::StageOrder {
                fetched,
                renamed,
                committed,
            } => write!(
                f,
                "stage counters out of order: fetched {fetched}, renamed {renamed}, committed {committed}"
            ),
            DivergenceKind::FlushAccounting {
                fetched,
                committed,
                mispredicts,
                predication_flushes,
            } => write!(
                f,
                "{} flush replays but only {} flush causes ({mispredicts} mispredicts + {predication_flushes} predication flushes)",
                fetched - committed,
                mispredicts + predication_flushes
            ),
            DivergenceKind::EarlyResolveMispredict { count } => {
                write!(f, "{count} early-resolved branches flushed")
            }
            DivergenceKind::OracleMispredict { mispredicts } => {
                write!(f, "oracle-final predictor mispredicted {mispredicts} branches")
            }
            DivergenceKind::SampleIdentity { detail } => {
                write!(f, "whole-stream sampled window diverged from the full run: {detail}")
            }
            DivergenceKind::SampleDrift {
                full,
                sampled,
                epsilon,
            } => write!(
                f,
                "sampled misprediction rate {sampled:.4} vs full {full:.4} exceeds epsilon {epsilon}"
            ),
            DivergenceKind::FusedLaneMismatch { detail } => {
                write!(f, "fused lane diverged from its solo run: {detail}")
            }
        }
    }
}

/// A divergence pinned to the cell that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// [`Cell::label`] of the failing cell (`"reference"` when the
    /// reference run itself failed).
    pub cell: String,
    /// What diverged.
    pub kind: DivergenceKind,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.cell, self.kind)
    }
}

/// Ground truth from the reference emulator: final machine state, the
/// set of addresses any store touched, and the committed stream as a
/// capture every replay cell shares.
struct Reference {
    machine: Machine,
    store_addrs: Vec<u64>,
    trace: Arc<TraceBuffer>,
}

fn reference_run(program: &Program) -> Result<Reference, Divergence> {
    let mut machine = Machine::new(program);
    let mut store_addrs = Vec::new();
    let mut trace = TraceBuffer::new(program);
    let fail = |kind| {
        Err(Divergence {
            cell: "reference".to_string(),
            kind,
        })
    };
    for _ in 0..MAX_REF_STEPS {
        match machine.step() {
            Ok(Some(rec)) => {
                if rec.insn.is_store() {
                    if let ExecInfo::Mem { addr } = rec.info {
                        store_addrs.push(addr);
                    }
                }
                trace.push(&rec);
            }
            Ok(None) => {
                trace.mark_halted();
                break;
            }
            Err(e) => {
                return fail(DivergenceKind::RefError {
                    message: e.to_string(),
                })
            }
        }
    }
    if !machine.is_halted() {
        return fail(DivergenceKind::RefDidNotHalt {
            steps: machine.steps(),
        });
    }
    store_addrs.sort_unstable();
    store_addrs.dedup();
    Ok(Reference {
        machine,
        store_addrs,
        trace: Arc::new(trace),
    })
}

/// Diffs every architectural register file between the two machines,
/// returning a description of the first mismatch.
fn diff_registers(sim: &Machine, reference: &Machine) -> Option<String> {
    for i in 1..u8::MAX {
        let Some(r) = Gr::try_new(i) else { break };
        if sim.gr(r) != reference.gr(r) {
            return Some(format!("{r} = {} vs {}", sim.gr(r), reference.gr(r)));
        }
    }
    for i in 1..u8::MAX {
        let Some(r) = Fr::try_new(i) else { break };
        if sim.fr(r).to_bits() != reference.fr(r).to_bits() {
            return Some(format!("{r} = {} vs {}", sim.fr(r), reference.fr(r)));
        }
    }
    for i in 1..u8::MAX {
        let Some(r) = Pr::try_new(i) else { break };
        if sim.pr(r) != reference.pr(r) {
            return Some(format!("{r} = {} vs {}", sim.pr(r), reference.pr(r)));
        }
    }
    None
}

/// The cross-scheme timing invariants every cell must satisfy,
/// regardless of whether it ran lockstep or from the shared capture.
fn timing_invariants(s: &SimStats, cell: Cell) -> Result<(), DivergenceKind> {
    if s.stall.total() != s.cycles {
        return Err(DivergenceKind::StallLeak {
            total: s.stall.total(),
            cycles: s.cycles,
        });
    }
    if s.fetched < s.renamed || s.renamed < s.committed {
        return Err(DivergenceKind::StageOrder {
            fetched: s.fetched,
            renamed: s.renamed,
            committed: s.committed,
        });
    }
    if s.fetched - s.committed > s.mispredicts + s.predication_flushes {
        return Err(DivergenceKind::FlushAccounting {
            fetched: s.fetched,
            committed: s.committed,
            mispredicts: s.mispredicts,
            predication_flushes: s.predication_flushes,
        });
    }
    if s.early_resolved_mispredicts != 0 {
        return Err(DivergenceKind::EarlyResolveMispredict {
            count: s.early_resolved_mispredicts,
        });
    }
    if cell.oracle_final && s.mispredicts != 0 {
        return Err(DivergenceKind::OracleMispredict {
            mispredicts: s.mispredicts,
        });
    }
    Ok(())
}

/// `name: a vs b` for the first differing headline counter.
fn first_counter_diff(a: &SimStats, b: &SimStats) -> String {
    [
        ("committed", a.committed, b.committed),
        ("cycles", a.cycles, b.cycles),
        ("fetched", a.fetched, b.fetched),
        ("cond_branches", a.cond_branches, b.cond_branches),
        ("mispredicts", a.mispredicts, b.mispredicts),
    ]
    .iter()
    .find(|(_, x, y)| x != y)
    .map(|(name, x, y)| format!("{name}: {x} vs {y}"))
    .unwrap_or_else(|| "non-headline counters differ".to_string())
}

/// Unwraps a caught panic payload into a printable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs one cell against the reference and returns its first divergence.
fn check_cell(
    program: &Program,
    reference: &Reference,
    cell: Cell,
    fault: Option<TestFault>,
) -> Result<(), Divergence> {
    let fail = |kind| {
        Err(Divergence {
            cell: cell.label(),
            kind,
        })
    };
    let mut opts = SimOptions::new(cell.scheme, cell.predication);
    if cell.oracle_final {
        opts = opts.oracle_final(true);
    }
    if let Some(f) = fault {
        opts = opts.test_fault(f);
    }
    let budget = reference.machine.steps() + 8;

    let (run, machine_steps) = if cell.lockstep() {
        let mut sim = match opts.build_source(Machine::new(program)) {
            Ok(s) => s,
            Err(e) => {
                return fail(DivergenceKind::SimPanicked {
                    message: format!("build failed: {e}"),
                })
            }
        };
        let run = match catch_unwind(AssertUnwindSafe(|| sim.run(budget))) {
            Ok(r) => r,
            Err(payload) => {
                return fail(DivergenceKind::SimPanicked {
                    message: panic_message(payload),
                })
            }
        };

        // Architectural diff against the reference machine — only this
        // cell carries an inline machine whose state can drift. Halt and
        // step-count mismatches are reported by the shared checks below,
        // so only diff state when both already line up.
        if run.halted && sim.machine().steps() == reference.machine.steps() {
            let machine = sim.machine();
            if let Some(detail) = diff_registers(machine, &reference.machine) {
                return fail(DivergenceKind::RegisterMismatch { detail });
            }
            for &addr in &reference.store_addrs {
                let (got, want) = (
                    machine.mem().read_u64(addr),
                    reference.machine.mem().read_u64(addr),
                );
                if got != want {
                    return fail(DivergenceKind::MemoryMismatch {
                        addr,
                        sim: got,
                        reference: want,
                    });
                }
            }
        }
        let steps = sim.machine().steps();
        (run, steps)
    } else {
        let mut sim = match opts.build_source(TraceCursor::new(Arc::clone(&reference.trace))) {
            Ok(s) => s,
            Err(e) => {
                return fail(DivergenceKind::SimPanicked {
                    message: format!("build failed: {e}"),
                })
            }
        };
        let run = match catch_unwind(AssertUnwindSafe(|| sim.run(budget))) {
            Ok(r) => r,
            Err(payload) => {
                return fail(DivergenceKind::SimPanicked {
                    message: panic_message(payload),
                })
            }
        };
        // A replay cell consumes the reference stream itself, so its
        // commit count *is* its architectural step count.
        let steps = run.stats.committed;
        (run, steps)
    };

    let s = &run.stats;
    if !run.halted {
        return fail(DivergenceKind::SimDidNotHalt {
            committed: s.committed,
        });
    }
    if machine_steps != reference.machine.steps() {
        return fail(DivergenceKind::StepMismatch {
            sim: machine_steps,
            reference: reference.machine.steps(),
        });
    }
    timing_invariants(s, cell).or_else(fail)
}

/// Checks `program` across the whole cell grid, returning the number of
/// cells verified or the first divergence.
///
/// `fault` injects a deliberate predictor fault into every cell (inert
/// where inapplicable) — the self-test proving the oracle has teeth.
pub fn check_program(program: &Program, fault: Option<TestFault>) -> Result<u64, Divergence> {
    let reference = reference_run(program)?;
    let mut cells = 0;
    for cell in Cell::grid() {
        check_cell(program, &reference, cell, fault)?;
        cells += 1;
    }
    Ok(cells)
}

/// The lanes of the fused-isolation check, in lane order: the paper's
/// headline predicate cell leads (under [`TestFault::ShareGhr`] lane 0
/// donates its history register to the others), followed by the two
/// schemes whose fetch-time predictions hang directly off first-level
/// gshare history — the lanes a real cross-lane leak would corrupt —
/// and a TAGE lane, whose geometric global history makes it the most
/// history-state-heavy resident of a fused grid.
pub const FUSED_LANES: [Cell; 4] = [
    Cell {
        scheme: SchemeSpec::Predicate,
        predication: PredicationModel::Selective,
        oracle_final: false,
    },
    Cell {
        scheme: SchemeSpec::Conventional,
        predication: PredicationModel::Cmov,
        oracle_final: false,
    },
    Cell {
        scheme: SchemeSpec::PepPa,
        predication: PredicationModel::Cmov,
        oracle_final: false,
    },
    Cell {
        scheme: SchemeSpec::Tage,
        predication: PredicationModel::Cmov,
        oracle_final: false,
    },
];

/// The fused cross-lane isolation invariant: running [`FUSED_LANES`] as
/// one [`LaneSet`] over the reference capture must produce, per lane,
/// statistics bit-identical to the same cell replayed solo. This is the
/// property that lets the runner fuse whole grids without touching
/// reported numbers; [`TestFault::ShareGhr`] deliberately violates it
/// (the teeth proving the diff would notice a real leak).
///
/// Returns the number of lanes verified.
pub fn check_fused(program: &Program, fault: Option<TestFault>) -> Result<u64, Divergence> {
    let reference = reference_run(program)?;
    let budget = reference.machine.steps() + 8;
    let opts: Vec<SimOptions> = FUSED_LANES
        .iter()
        .map(|cell| {
            let mut o = SimOptions::new(cell.scheme, cell.predication);
            if let Some(f) = fault {
                o = o.test_fault(f);
            }
            o
        })
        .collect();
    let fail = |cell: &Cell, kind| {
        Err(Divergence {
            cell: format!("{}/fused", cell.label()),
            kind,
        })
    };

    let mut set = match LaneSet::new(TraceCursor::new(Arc::clone(&reference.trace)), &opts) {
        Ok(s) => s,
        Err(e) => {
            return fail(
                &FUSED_LANES[0],
                DivergenceKind::SimPanicked {
                    message: format!("build failed: {e}"),
                },
            )
        }
    };
    let fused = match catch_unwind(AssertUnwindSafe(|| set.run(budget))) {
        Ok(r) => r,
        Err(payload) => {
            return fail(
                &FUSED_LANES[0],
                DivergenceKind::SimPanicked {
                    message: panic_message(payload),
                },
            )
        }
    };

    for ((cell, o), lane) in FUSED_LANES.iter().zip(&opts).zip(&fused) {
        let mut sim = match o.build_source(TraceCursor::new(Arc::clone(&reference.trace))) {
            Ok(s) => s,
            Err(e) => {
                return fail(
                    cell,
                    DivergenceKind::SimPanicked {
                        message: format!("build failed: {e}"),
                    },
                )
            }
        };
        let solo = match catch_unwind(AssertUnwindSafe(|| sim.run(budget))) {
            Ok(r) => r,
            Err(payload) => {
                return fail(
                    cell,
                    DivergenceKind::SimPanicked {
                        message: panic_message(payload),
                    },
                )
            }
        };
        if solo.stats != lane.stats {
            return fail(
                cell,
                DivergenceKind::FusedLaneMismatch {
                    detail: first_counter_diff(&lane.stats, &solo.stats),
                },
            );
        }
    }
    Ok(FUSED_LANES.len() as u64)
}

/// The sampled-simulation invariants (`ppsim check --sample-epsilon`),
/// run on the headline predicate/selective cell against the reference
/// capture:
///
/// 1. **Identity** — one window covering the whole committed stream with
///    no skip and no warmup must reproduce the full replay run's
///    statistics bit-for-bit (the windowing machinery must add nothing
///    and lose nothing).
/// 2. **Drift** — tiling the stream into three warmed-up windows, the
///    counter-summed aggregate misprediction rate must stay within
///    `epsilon` of the full run's rate (skipped for programs too short
///    to tile).
///
/// Returns the number of sampled checks performed (1 or 2).
pub fn check_sampled(
    program: &Program,
    fault: Option<TestFault>,
    epsilon: f64,
) -> Result<u64, Divergence> {
    let reference = reference_run(program)?;
    let cell = Cell {
        scheme: SchemeSpec::Predicate,
        predication: PredicationModel::Selective,
        oracle_final: false,
    };
    let label = format!("{}/sampled", cell.label());
    let diverge = |kind| Divergence {
        cell: label.clone(),
        kind,
    };
    let mut opts = SimOptions::new(cell.scheme, cell.predication);
    if let Some(f) = fault {
        opts = opts.test_fault(f);
    }
    let steps = reference.machine.steps();
    let budget = steps + 8;

    let run_window = |start: u64, len: u64, warmup: u64, measure: u64| {
        let mut sim = opts
            .build_source(TraceCursor::window(
                Arc::clone(&reference.trace),
                start,
                len,
            ))
            .map_err(|e| {
                diverge(DivergenceKind::SimPanicked {
                    message: format!("build failed: {e}"),
                })
            })?;
        match catch_unwind(AssertUnwindSafe(|| sim.run_sample(warmup, measure))) {
            Ok(r) => Ok(r.stats),
            Err(payload) => Err(diverge(DivergenceKind::SimPanicked {
                message: panic_message(payload),
            })),
        }
    };

    // Ground truth: the plain full replay of the capture.
    let full = run_window(0, steps, 0, budget)?;
    let mut sim = opts
        .build_source(TraceCursor::new(Arc::clone(&reference.trace)))
        .map_err(|e| {
            diverge(DivergenceKind::SimPanicked {
                message: format!("build failed: {e}"),
            })
        })?;
    let plain = match catch_unwind(AssertUnwindSafe(|| sim.run(budget))) {
        Ok(r) => r.stats,
        Err(payload) => {
            return Err(diverge(DivergenceKind::SimPanicked {
                message: panic_message(payload),
            }))
        }
    };
    if full != plain {
        return Err(diverge(DivergenceKind::SampleIdentity {
            detail: first_counter_diff(&full, &plain),
        }));
    }
    let mut checks = 1;

    // Multi-window drift: three equal windows tiling the stream, the
    // first quarter of each used as warmup.
    if steps >= 48 {
        let stride = steps / 3;
        let warmup = stride / 4;
        let measure = stride - warmup;
        let mut aggregate = SimStats::default();
        for i in 0..3u64 {
            aggregate.merge(&run_window(i * stride, stride, warmup, measure)?);
        }
        // A windowed rate estimate is only meaningful when the measured
        // phases saw a representative share of the stream's conditional
        // branches. Tiny generated programs routinely park their handful
        // of branches inside a warmup phase (where statistics are
        // deliberately suppressed), making the comparison 0-vs-something
        // by construction — skip those rather than cry divergence.
        let representative =
            plain.cond_branches >= 16 && aggregate.cond_branches * 2 >= plain.cond_branches;
        if representative {
            let (f, s) = (plain.misprediction_rate(), aggregate.misprediction_rate());
            if (s - f).abs() > epsilon {
                return Err(diverge(DivergenceKind::SampleDrift {
                    full: f,
                    sampled: s,
                    epsilon,
                }));
            }
            checks += 1;
        }
    }
    Ok(checks)
}

/// Re-checks only `cell` (the shrinker's cheap predicate: one cell
/// instead of the whole grid per candidate).
pub fn check_single_cell(
    program: &Program,
    cell: Cell,
    fault: Option<TestFault>,
) -> Result<(), Divergence> {
    let reference = reference_run(program)?;
    check_cell(program, &reference, cell, fault)
}

/// Finds the grid cell whose [`Cell::label`] matches `label`.
pub fn cell_by_label(label: &str) -> Option<Cell> {
    Cell::grid().into_iter().find(|c| c.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Form};
    use ppsim_isa::Asm;

    #[test]
    fn grid_covers_all_schemes_and_models() {
        // The teeth against grid rot: a scheme registered in
        // `SchemeSpec::ALL` but missing from the check grid — in either
        // predication model — fails here, so new schemes cannot dodge
        // the differential oracle.
        let grid = Cell::grid();
        assert_eq!(grid.len(), 2 * SchemeSpec::ALL.len() + 1);
        for scheme in SchemeSpec::ALL {
            for predication in [PredicationModel::Cmov, PredicationModel::Selective] {
                assert!(
                    grid.iter()
                        .any(|c| c.scheme == scheme && c.predication == predication),
                    "scheme {} missing from the {predication:?} grid column",
                    scheme.name()
                );
            }
        }
        assert_eq!(grid.iter().filter(|c| c.oracle_final).count(), 1);
        for cell in &grid {
            assert_eq!(cell_by_label(&cell.label()), Some(*cell));
        }
    }

    #[test]
    fn fused_lanes_are_grid_cells_and_include_a_tage_lane() {
        let grid = Cell::grid();
        for lane in FUSED_LANES {
            assert!(grid.contains(&lane), "{} not a grid cell", lane.label());
        }
        assert!(
            FUSED_LANES.iter().any(|c| c.scheme == SchemeSpec::Tage),
            "fused isolation must cover a TAGE lane"
        );
    }

    #[test]
    fn trivial_program_passes_everywhere() {
        let mut a = Asm::new();
        a.movi(ppsim_isa::Gr::new(4), 7);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(check_program(&p, None), Ok(Cell::grid().len() as u64));
    }

    #[test]
    fn generated_programs_pass_without_faults() {
        for iter in 0..5 {
            for form in Form::ALL {
                let p = generate(0xBEEF, iter, form);
                if let Err(d) = check_program(&p, None) {
                    panic!("iter {iter} {form:?}: {d}\n{}", p.listing());
                }
            }
        }
    }

    #[test]
    fn sampled_invariants_hold_on_generated_programs() {
        for iter in 0..5 {
            for form in Form::ALL {
                let p = generate(0xBEEF, iter, form);
                if let Err(d) = check_sampled(&p, None, 0.25) {
                    panic!("iter {iter} {form:?}: {d}\n{}", p.listing());
                }
            }
        }
    }

    #[test]
    fn sampled_drift_detector_has_teeth() {
        // A negative epsilon turns any drift — even zero — into a
        // violation on every program long enough to tile into windows.
        let mut found = false;
        for iter in 0..10 {
            let p = generate(0xBEEF, iter, Form::Branchy);
            match check_sampled(&p, None, -1.0) {
                Err(d) => {
                    assert!(matches!(d.kind, DivergenceKind::SampleDrift { .. }), "{d}");
                    assert!(d.cell.ends_with("/sampled"), "{}", d.cell);
                    found = true;
                    break;
                }
                Ok(checks) => assert_eq!(checks, 1, "a tiled program must trip the detector"),
            }
        }
        assert!(found, "no generated program was long enough to tile");
    }

    #[test]
    fn fused_lanes_match_solo_on_generated_programs() {
        for iter in 0..5 {
            for form in Form::ALL {
                let p = generate(0xBEEF, iter, form);
                match check_fused(&p, None) {
                    Ok(lanes) => assert_eq!(lanes, FUSED_LANES.len() as u64),
                    Err(d) => panic!("iter {iter} {form:?}: {d}\n{}", p.listing()),
                }
            }
        }
    }

    #[test]
    fn shared_ghr_fault_breaks_fused_isolation() {
        // The teeth: a deliberately shared history register must make
        // the fused-vs-solo diff fire on some generated program,
        // otherwise the isolation check proves nothing.
        let mut found = false;
        for iter in 0..10 {
            let p = generate(0xBEEF, iter, Form::Branchy);
            if let Err(d) = check_fused(&p, Some(TestFault::ShareGhr)) {
                assert!(
                    matches!(d.kind, DivergenceKind::FusedLaneMismatch { .. }),
                    "{d}"
                );
                assert!(d.cell.ends_with("/fused"), "{}", d.cell);
                found = true;
                break;
            }
        }
        assert!(
            found,
            "no generated program exposed the shared-history leak"
        );
    }

    #[test]
    fn injected_oracle_fault_is_caught() {
        // A program with at least one dynamic conditional branch.
        let p = generate(0xBEEF, 0, Form::Branchy);
        let d = check_program(&p, Some(TestFault::InvertOracle))
            .expect_err("the inverted oracle must be detected");
        assert!(
            matches!(d.kind, DivergenceKind::OracleMispredict { .. }),
            "{d}"
        );
        assert!(d.cell.ends_with("/oracle"), "{}", d.cell);
    }

    #[test]
    fn injected_early_resolve_fault_is_caught() {
        let mut found = false;
        for iter in 0..10 {
            let p = generate(0xBEEF, iter, Form::Branchy);
            if let Err(d) = check_program(&p, Some(TestFault::InvertEarlyResolve)) {
                assert!(
                    matches!(d.kind, DivergenceKind::EarlyResolveMispredict { .. }),
                    "{d}"
                );
                found = true;
                break;
            }
        }
        assert!(
            found,
            "no generated program exercised an early-resolved branch"
        );
    }
}
