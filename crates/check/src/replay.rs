//! Repro replay — re-running dumped `.pisa` repros through the oracle.
//!
//! Every divergence [`crate::run_check`] dumps starts with a structured
//! header line:
//!
//! ```text
//! // ppsim-check repro: seed 0x0 iter 1 form branchy cell predicate/selective/fused
//! ```
//!
//! [`replay_repro`] parses that header and re-runs the listing through
//! the *same* oracle that recorded it: fused-isolation failures go back
//! through [`crate::oracle::check_fused`], grid-cell failures through
//! [`crate::oracle::check_single_cell`], and anything else (no header,
//! `reference`, sampled labels) through the full sweep. The caller
//! learns whether the recorded divergence still reproduces — the
//! `ppsim check --replay <file.pisa>` workflow for confirming a fix
//! without re-fuzzing.

use ppsim_isa::parse_program;
use ppsim_pipeline::TestFault;

use crate::oracle::{self, Divergence};

/// The structured first line of a dumped repro.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReproHeader {
    /// Fuzz seed that produced the program.
    pub seed: u64,
    /// Iteration within the sweep.
    pub iter: u64,
    /// Generator form name (`branchy` / `ifconv`).
    pub form: String,
    /// Recorded failing cell label (`predicate/selective/fused`, ...).
    pub cell: String,
}

fn parse_u64(v: &str) -> Option<u64> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(h) => u64::from_str_radix(h, 16).ok(),
        None => v.parse().ok(),
    }
}

/// Parses the `// ppsim-check repro:` header out of a repro source.
/// Returns `None` when no line carries the marker or the key/value
/// pairs don't parse — replay then falls back to the full sweep.
pub fn parse_repro_header(source: &str) -> Option<ReproHeader> {
    let marker = "// ppsim-check repro:";
    let line = source
        .lines()
        .find(|l| l.trim_start().starts_with(marker))?;
    let rest = line.trim_start().strip_prefix(marker)?.trim();
    let (mut seed, mut iter, mut form, mut cell) = (None, None, None, None);
    let mut toks = rest.split_whitespace();
    while let Some(k) = toks.next() {
        let v = toks.next()?;
        match k {
            "seed" => seed = parse_u64(v),
            "iter" => iter = v.parse().ok(),
            "form" => form = Some(v.to_string()),
            "cell" => cell = Some(v.to_string()),
            _ => return None,
        }
    }
    Some(ReproHeader {
        seed: seed?,
        iter: iter?,
        form: form?,
        cell: cell?,
    })
}

/// What replaying a repro found.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The parsed header, when the file carried one.
    pub header: Option<ReproHeader>,
    /// Cells/lanes verified when the program passed.
    pub checks: u64,
    /// The divergence, when the recorded failure still reproduces.
    pub divergence: Option<Divergence>,
}

impl ReplayOutcome {
    /// Whether the repro passes everywhere it was checked.
    pub fn passed(&self) -> bool {
        self.divergence.is_none()
    }
}

/// The fallback when no header (or an unrecognized cell label) routes
/// the replay: the full grid plus the fused lanes.
fn full_sweep(program: &ppsim_isa::Program, fault: Option<TestFault>) -> (u64, Option<Divergence>) {
    let outcome = oracle::check_program(program, fault)
        .and_then(|cells| oracle::check_fused(program, fault).map(|lanes| cells + lanes));
    match outcome {
        Ok(n) => (n, None),
        Err(d) => (0, Some(d)),
    }
}

/// Re-runs a dumped `.pisa` repro through the oracle that recorded it.
/// `fault` optionally re-injects the predictor fault the original sweep
/// carried. Errors only on unparsable assembly; a reproducing
/// divergence is a *successful* replay (see [`ReplayOutcome`]).
pub fn replay_repro(source: &str, fault: Option<TestFault>) -> Result<ReplayOutcome, String> {
    let program = parse_program(source).map_err(|e| e.to_string())?;
    let header = parse_repro_header(source);

    // Divergent cells report through `catch_unwind`; keep expected
    // panics from spraying backtraces, as `run_check` does.
    let _guard = crate::HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let (checks, divergence) = match header.as_ref().map(|h| h.cell.as_str()) {
        Some(cell) if cell.ends_with("/fused") => match oracle::check_fused(&program, fault) {
            Ok(n) => (n, None),
            Err(d) => (0, Some(d)),
        },
        Some(cell) => match oracle::cell_by_label(cell) {
            Some(c) => match oracle::check_single_cell(&program, c, fault) {
                Ok(()) => (1, None),
                Err(d) => (0, Some(d)),
            },
            None => full_sweep(&program, fault),
        },
        None => full_sweep(&program, fault),
    };

    std::panic::set_hook(prev_hook);
    Ok(ReplayOutcome {
        header,
        checks,
        divergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seven divergences the fused lane-parallel engine shipped
    /// with, pinned verbatim from the repros `ppsim check` dumped when
    /// the bug was live (`check-failures/` itself is transient). All
    /// were `predicate/selective/fused` cycle divergences; re-checking
    /// them through the fused oracle keeps the fix honest.
    const PINNED_FUSED_REPROS: [(&str, &str); 7] = [
        (
            "seed-0-iter1-branchy",
            "// ppsim-check repro: seed 0x0 iter 1 form branchy cell predicate/selective/fused\n\
             // [predicate/selective/fused] fused lane diverged from its solo run: cycles: 205 vs 212\n\
             \x20   movl r1 = 5\n\
             .L1:\n\
             \x20   (p7) br.cond .L2\n\
             .L2:\n\
             \x20   add r1 = r1, -1\n\
             \x20   cmp.unc.gt p1, p2 = r1, 0\n\
             \x20   (p1) br.cond .L1\n\
             \x20   halt\n",
        ),
        (
            "seed-0-iter2-branchy",
            "// ppsim-check repro: seed 0x0 iter 2 form branchy cell predicate/selective/fused\n\
             // [predicate/selective/fused] fused lane diverged from its solo run: cycles: 163 vs 170\n\
             .L0:\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   cmp.unc.le p13, p6 = r20, r13\n\
             \x20   nop\n\
             \x20   (p13) br.cond .L5\n\
             .L5:\n\
             \x20   (p1) br.cond .L0\n\
             \x20   halt\n",
        ),
        (
            "seed-0-iter2-ifconv",
            "// ppsim-check repro: seed 0x0 iter 2 form ifconv cell predicate/selective/fused\n\
             // [predicate/selective/fused] fused lane diverged from its solo run: cycles: 472 vs 477\n\
             \x20   movl r1 = 3\n\
             .L1:\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   (p4) br.cond .L18\n\
             \x20   nop\n\
             .L18:\n\
             \x20   nop\n\
             \x20   add r1 = r1, -1\n\
             \x20   cmp.unc.gt p1, p2 = r1, 0\n\
             \x20   (p1) br.cond .L1\n\
             \x20   halt\n",
        ),
        (
            "seed-0-iter4-ifconv",
            "// ppsim-check repro: seed 0x0 iter 4 form ifconv cell predicate/selective/fused\n\
             // [predicate/selective/fused] fused lane diverged from its solo run: cycles: 205 vs 212\n\
             \x20   movl r1 = 5\n\
             .L1:\n\
             \x20   (p11) br.cond .L2\n\
             .L2:\n\
             \x20   add r1 = r1, -1\n\
             \x20   cmp.unc.gt p1, p2 = r1, 0\n\
             \x20   (p1) br.cond .L1\n\
             \x20   halt\n",
        ),
        (
            "seed-c0ffee-iter0-branchy",
            "// ppsim-check repro: seed 0xc0ffee iter 0 form branchy cell predicate/selective/fused\n\
             // [predicate/selective/fused] fused lane diverged from its solo run: cycles: 205 vs 212\n\
             \x20   movl r1 = 5\n\
             .L1:\n\
             \x20   (p9) br.cond .L2\n\
             .L2:\n\
             \x20   add r1 = r1, -1\n\
             \x20   cmp.unc.gt p1, p2 = r1, 0\n\
             \x20   (p1) br.cond .L1\n\
             \x20   halt\n",
        ),
        (
            "seed-c0ffee-iter2-branchy",
            "// ppsim-check repro: seed 0xc0ffee iter 2 form branchy cell predicate/selective/fused\n\
             // [predicate/selective/fused] fused lane diverged from its solo run: cycles: 205 vs 212\n\
             \x20   movl r1 = 5\n\
             .L1:\n\
             \x20   (p6) br.cond .L2\n\
             .L2:\n\
             \x20   add r1 = r1, -1\n\
             \x20   cmp.unc.gt p1, p2 = r1, 0\n\
             \x20   (p1) br.cond .L1\n\
             \x20   halt\n",
        ),
        (
            "seed-c0ffee-iter4-branchy",
            "// ppsim-check repro: seed 0xc0ffee iter 4 form branchy cell predicate/selective/fused\n\
             // [predicate/selective/fused] fused lane diverged from its solo run: cycles: 319 vs 326\n\
             \x20   movl r1 = 3\n\
             .L1:\n\
             \x20   nop\n\
             \x20   (p10) br.cond .L4\n\
             \x20   nop\n\
             .L4:\n\
             \x20   nop\n\
             \x20   add r1 = r1, -1\n\
             \x20   cmp.unc.gt p1, p2 = r1, 0\n\
             \x20   (p1) br.cond .L1\n\
             \x20   halt\n",
        ),
    ];

    #[test]
    fn pinned_fused_repros_stay_fixed() {
        for (name, src) in PINNED_FUSED_REPROS {
            let header =
                parse_repro_header(src).unwrap_or_else(|| panic!("{name}: header must parse"));
            assert!(header.cell.ends_with("/fused"), "{name}: {}", header.cell);
            let out = replay_repro(src, None).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                out.passed(),
                "{name}: regressed — {}",
                out.divergence.unwrap()
            );
            assert_eq!(
                out.checks,
                crate::oracle::FUSED_LANES.len() as u64,
                "{name}: all fused lanes verified"
            );
        }
    }

    #[test]
    fn header_parses_and_survives_odd_whitespace() {
        let h = parse_repro_header(
            "// ppsim-check repro: seed 0xc0ffee iter 4 form branchy cell predicate/selective\nnop\nhalt\n",
        )
        .unwrap();
        assert_eq!(h.seed, 0xC0FFEE);
        assert_eq!(h.iter, 4);
        assert_eq!(h.form, "branchy");
        assert_eq!(h.cell, "predicate/selective");
        assert!(parse_repro_header("nop\nhalt\n").is_none());
        assert!(parse_repro_header("// ppsim-check repro: seed\n").is_none());
    }

    #[test]
    fn grid_cell_headers_route_to_the_single_cell_checker() {
        let src = "// ppsim-check repro: seed 0x1 iter 0 form branchy cell predicate/selective\n\
                   \x20   movl r1 = 2\n\
                   .L1:\n\
                   \x20   add r1 = r1, -1\n\
                   \x20   cmp.unc.gt p1, p2 = r1, 0\n\
                   \x20   (p1) br.cond .L1\n\
                   \x20   halt\n";
        let out = replay_repro(src, None).unwrap();
        assert!(out.passed());
        assert_eq!(out.checks, 1, "exactly the recorded cell re-ran");
    }

    #[test]
    fn headerless_sources_get_the_full_sweep_and_faults_reproduce() {
        let src = "    movl r1 = 2\n.L1:\n    add r1 = r1, -1\n    cmp.unc.gt p1, p2 = r1, 0\n    (p1) br.cond .L1\n    halt\n";
        let out = replay_repro(src, None).unwrap();
        assert!(out.passed());
        let full_sweep =
            (crate::oracle::Cell::grid().len() + crate::oracle::FUSED_LANES.len()) as u64;
        assert_eq!(out.checks, full_sweep, "all grid cells + all fused lanes");
        // Re-injecting a fault must make the same source diverge again —
        // replay has the same teeth as the sweep.
        let out = replay_repro(src, Some(TestFault::InvertOracle)).unwrap();
        assert!(!out.passed());
        assert!(
            out.divergence.unwrap().cell.ends_with("/oracle"),
            "inverted oracle is caught by the oracle-final cell"
        );
    }

    #[test]
    fn unparsable_assembly_is_an_error_not_a_divergence() {
        assert!(replay_repro("this is not assembly\n", None).is_err());
    }
}
