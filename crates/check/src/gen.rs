//! Seeded random predicated-program generation.
//!
//! [`generate`] emits small "torture" programs that concentrate on the
//! paper's hard cases: nested hammocks (branchy or if-converted), and/or
//! parallel-compare chains, compare pairs landing in the same fetch
//! bundle, and loads/stores straddling page boundaries. Programs are
//! built so the architectural emulator always halts: every randomly
//! placed branch is forward, and the single back-edge is a counted loop
//! with a bounded, unconditionally decremented trip register.
//!
//! Generation is fully deterministic in `(seed, iter, form)` — the same
//! triple yields the same [`Program`] byte for byte, which is what lets
//! the check harness cache verdicts and replay failures.

use ppsim_compiler::rng::SmallRng;
use ppsim_isa::{AluKind, Asm, CmpRel, CmpType, DataSegment, Fr, Gr, Operand, Pr, Program};

/// Whether hammocks are emitted as branches or as predicated
/// straight-line code — the if-conversion axis of the check grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Form {
    /// Hammocks use a guarded forward branch over the then-block.
    Branchy,
    /// Hammocks are if-converted: both arms emitted, guarded by the
    /// compare's two predicate targets.
    IfConverted,
}

impl Form {
    /// Both program forms, in grid order.
    pub const ALL: [Form; 2] = [Form::Branchy, Form::IfConverted];

    /// Short label for cache keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            Form::Branchy => "branchy",
            Form::IfConverted => "ifconv",
        }
    }
}

/// Base address of the generator's data buffer. Page-aligned so that
/// `STRADDLE_BASE` accesses provably cross a page.
const DATA_BASE: u64 = 0x0010_0000;
/// A pointer 4 bytes below the next page boundary: any 8-byte access at
/// offset 0 splits across two pages (the emulator is byte-sparse, so
/// this exercises its multi-page read/write path).
const STRADDLE_BASE: u64 = DATA_BASE + 0x1000 - 4;

/// Loop counter (decremented once per iteration, never a random dst).
fn r_count() -> Gr {
    Gr::new(1)
}
/// Pointer to the aligned data buffer.
fn r_buf() -> Gr {
    Gr::new(2)
}
/// Pointer just below a page boundary.
fn r_straddle() -> Gr {
    Gr::new(3)
}
/// Loop-continue predicate (its complement lives in `p2`).
fn p_loop() -> (Pr, Pr) {
    (Pr::new(1), Pr::new(2))
}

/// First/last scratch integer register (inclusive).
const GR_LO: u8 = 8;
const GR_HI: u8 = 23;
/// First/last scratch float register (inclusive).
const FR_LO: u8 = 1;
const FR_HI: u8 = 8;
/// First/last scratch predicate register (inclusive).
const PR_LO: u8 = 3;
const PR_HI: u8 = 14;

struct Gen {
    rng: SmallRng,
    form: Form,
}

impl Gen {
    fn gr(&mut self) -> Gr {
        Gr::new(self.rng.range_i64(GR_LO as i64, GR_HI as i64 + 1) as u8)
    }

    fn fr(&mut self) -> Fr {
        Fr::new(self.rng.range_i64(FR_LO as i64, FR_HI as i64 + 1) as u8)
    }

    fn pr(&mut self) -> Pr {
        Pr::new(self.rng.range_i64(PR_LO as i64, PR_HI as i64 + 1) as u8)
    }

    /// Two distinct scratch predicates (a compare may not write the same
    /// non-`p0` register twice).
    fn pr_pair(&mut self) -> (Pr, Pr) {
        let pt = self.pr();
        loop {
            let pf = self.pr();
            if pf != pt {
                return (pt, pf);
            }
        }
    }

    fn operand(&mut self) -> Operand {
        if self.rng.gen_bool(0.5) {
            Operand::Reg(self.gr())
        } else {
            Operand::Imm(self.rng.range_i64(-64, 64))
        }
    }

    fn rel(&mut self) -> CmpRel {
        const RELS: [CmpRel; 6] = [
            CmpRel::Eq,
            CmpRel::Ne,
            CmpRel::Lt,
            CmpRel::Le,
            CmpRel::Gt,
            CmpRel::Ge,
        ];
        RELS[self.rng.range_i64(0, 6) as usize]
    }

    fn alu_kind(&mut self) -> AluKind {
        const KINDS: [AluKind; 8] = [
            AluKind::Add,
            AluKind::Sub,
            AluKind::And,
            AluKind::Or,
            AluKind::Xor,
            AluKind::Shl,
            AluKind::Shr,
            AluKind::Mul,
        ];
        KINDS[self.rng.range_i64(0, 8) as usize]
    }

    /// One random ALU/move/conversion op, optionally guarded.
    fn scalar_op(&mut self, a: &mut Asm, guard: Option<Pr>) {
        if let Some(qp) = guard {
            a.pred(qp);
        }
        match self.rng.range_i64(0, 10) {
            0 => {
                let dst = self.gr();
                let imm = self.rng.range_i64(-1000, 1000);
                a.movi(dst, imm);
            }
            1 => {
                let (dst, src) = (self.fr(), self.gr());
                a.itof(dst, src);
            }
            2 => {
                let (dst, src) = (self.gr(), self.fr());
                a.ftoi(dst, src);
            }
            3 => {
                let (dst, s1, s2) = (self.fr(), self.fr(), self.fr());
                if self.rng.gen_bool(0.5) {
                    a.fadd(dst, s1, s2);
                } else {
                    a.fmul(dst, s1, s2);
                }
            }
            _ => {
                let kind = self.alu_kind();
                let (dst, src1) = (self.gr(), self.gr());
                let src2 = self.operand();
                a.alu(kind, dst, src1, src2);
            }
        }
    }

    /// A short run of straight-line scalar ops.
    fn alu_block(&mut self, a: &mut Asm) {
        for _ in 0..self.rng.range_i64(2, 6) {
            self.scalar_op(a, None);
        }
    }

    /// An and/or parallel-compare chain: an `unc` compare defines both
    /// targets, then `and`/`or`/`none`-type compares conditionally narrow
    /// them — the multi-writer predicate case of §3.3.
    fn cmp_chain(&mut self, a: &mut Asm) {
        let (pt, pf) = self.pr_pair();
        let rel = self.rel();
        let (s1, s2) = (self.gr(), self.operand());
        a.cmp(CmpType::Unc, rel, pt, pf, s1, s2);
        for _ in 0..self.rng.range_i64(1, 4) {
            let ctype = match self.rng.range_i64(0, 3) {
                0 => CmpType::And,
                1 => CmpType::Or,
                _ => CmpType::None,
            };
            let rel = self.rel();
            let (s1, s2) = (self.gr(), self.operand());
            // Re-targeting the same pair keeps the chain a genuine
            // multi-writer; a fresh pair exercises independent slots.
            let (ct, cf) = if self.rng.gen_bool(0.6) {
                (pt, pf)
            } else {
                self.pr_pair()
            };
            if self.rng.gen_bool(0.25) {
                let (f1, f2) = (self.fr(), self.fr());
                a.fcmp(ctype, rel, ct, cf, f1, f2);
            } else {
                a.cmp(ctype, rel, ct, cf, s1, s2);
            }
        }
        // A consumer right behind the chain: guarded op or short branch.
        if self.rng.gen_bool(0.5) {
            let qp = if self.rng.gen_bool(0.5) { pt } else { pf };
            self.scalar_op(a, Some(qp));
        } else {
            let skip = a.new_label();
            a.pred(pt).br(skip);
            self.scalar_op(a, None);
            a.bind(skip);
        }
    }

    /// Two compares back to back — with `BUNDLE_SLOTS = 3` they usually
    /// share a fetch bundle — followed immediately by consumers of both.
    fn same_bundle_pair(&mut self, a: &mut Asm) {
        let (pt1, pf1) = self.pr_pair();
        let (pt2, pf2) = self.pr_pair();
        let (s1, o1) = (self.gr(), self.operand());
        let (s2, o2) = (self.gr(), self.operand());
        a.cmp(CmpType::Unc, self.rel(), pt1, pf1, s1, o1);
        a.cmp(CmpType::Unc, self.rel(), pt2, pf2, s2, o2);
        self.scalar_op(a, Some(pt1));
        let skip = a.new_label();
        a.pred(pt2).br(skip);
        self.scalar_op(a, Some(pf1));
        a.bind(skip);
    }

    /// Loads and stores against the aligned buffer and the page-straddle
    /// pointer, some guarded by possibly-false predicates.
    fn mem_block(&mut self, a: &mut Asm) {
        for _ in 0..self.rng.range_i64(1, 4) {
            let base = if self.rng.gen_bool(0.4) {
                r_straddle()
            } else {
                r_buf()
            };
            let offset = self.rng.range_i64(-64, 64);
            let guard = if self.rng.gen_bool(0.3) {
                Some(self.pr())
            } else {
                None
            };
            if let Some(qp) = guard {
                a.pred(qp);
            }
            match self.rng.range_i64(0, 4) {
                0 => {
                    let dst = self.gr();
                    a.ld(dst, base, offset);
                }
                1 => {
                    let src = self.gr();
                    a.st(src, base, offset);
                }
                2 => {
                    let dst = self.fr();
                    a.ldf(dst, base, offset);
                }
                _ => {
                    let src = self.fr();
                    a.stf(src, base, offset);
                }
            }
        }
    }

    /// A two-armed hammock, optionally nested one level. In
    /// [`Form::Branchy`] the then-block is jumped over on a false
    /// condition; in [`Form::IfConverted`] both arms are emitted guarded
    /// by the compare's two targets (nested compares become guarded `unc`
    /// compares, which clear their targets when disqualified).
    fn hammock(&mut self, a: &mut Asm, depth: u32) {
        let (pt, pf) = self.pr_pair();
        let rel = self.rel();
        let (s1, s2) = (self.gr(), self.operand());
        a.cmp(CmpType::Unc, rel, pt, pf, s1, s2);
        match self.form {
            Form::Branchy => {
                let l_else = a.new_label();
                let l_end = a.new_label();
                a.pred(pf).br(l_else);
                self.arm(a, None, depth);
                a.br(l_end);
                a.bind(l_else);
                self.arm(a, None, depth);
                a.bind(l_end);
            }
            Form::IfConverted => {
                self.arm(a, Some(pt), depth);
                self.arm(a, Some(pf), depth);
            }
        }
    }

    /// One hammock arm: a few scalar/memory ops, possibly a nested
    /// hammock when `depth` allows.
    fn arm(&mut self, a: &mut Asm, guard: Option<Pr>, depth: u32) {
        for _ in 0..self.rng.range_i64(1, 4) {
            self.scalar_op(a, guard);
        }
        if depth > 0 && self.rng.gen_bool(0.4) {
            match guard {
                // Branchy nesting: a fresh inner hammock.
                None => self.hammock(a, depth - 1),
                // If-converted nesting: a guarded unc compare computes
                // the inner condition only on the live path, then both
                // inner arms are guarded by its targets.
                Some(qp) => {
                    let (ipt, ipf) = self.pr_pair();
                    let rel = self.rel();
                    let (s1, s2) = (self.gr(), self.operand());
                    a.pred(qp);
                    a.cmp(CmpType::Unc, rel, ipt, ipf, s1, s2);
                    for _ in 0..self.rng.range_i64(1, 3) {
                        self.scalar_op(a, Some(ipt));
                    }
                    for _ in 0..self.rng.range_i64(1, 3) {
                        self.scalar_op(a, Some(ipf));
                    }
                }
            }
        }
    }

    fn block(&mut self, a: &mut Asm) {
        match self.rng.range_i64(0, 5) {
            0 => self.alu_block(a),
            1 => self.cmp_chain(a),
            2 => self.same_bundle_pair(a),
            3 => self.mem_block(a),
            _ => self.hammock(a, 1),
        }
    }
}

/// Folds `(seed, iter, form)` into one RNG seed (splitmix-style mixing
/// so nearby iters land on unrelated streams).
fn mix(seed: u64, iter: u64, form: Form) -> u64 {
    let mut x = seed
        ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ if form == Form::IfConverted {
            0x5851_F42D_4C95_7F2D
        } else {
            0
        };
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 31)
}

/// Generates the torture program for one `(seed, iter, form)` cell.
///
/// The result always passes [`Program::validate`] and always halts under
/// the reference emulator within [`crate::oracle::MAX_REF_STEPS`] steps.
pub fn generate(seed: u64, iter: u64, form: Form) -> Program {
    let mut g = Gen {
        rng: SmallRng::seed_from_u64(mix(seed, iter, form)),
        form,
    };
    let mut a = Asm::new();

    // Initial state: pointers, random scratch values, and a data buffer
    // that spans the page boundary the straddle pointer sits under.
    a.init_gr(r_buf(), DATA_BASE as i64);
    a.init_gr(r_straddle(), STRADDLE_BASE as i64);
    for r in GR_LO..=GR_HI {
        a.init_gr(Gr::new(r), g.rng.range_i64(-1_000_000, 1_000_000));
    }
    for r in FR_LO..=FR_HI {
        a.init_fr(Fr::new(r), g.rng.range_f64(-1000.0, 1000.0));
    }
    let bytes: Vec<u8> = (0..192).map(|_| g.rng.next_u64() as u8).collect();
    a.data(DataSegment {
        addr: DATA_BASE,
        bytes: bytes[..128].to_vec(),
    });
    a.data(DataSegment {
        addr: STRADDLE_BASE - 32,
        bytes: bytes[128..].to_vec(),
    });

    // Counted loop around the random body: the counter and its compare
    // are unguarded, so the back-edge trip count is bounded by
    // construction no matter what the body does.
    let trips = g.rng.range_i64(2, 6);
    let (p_loop, p_loop_not) = p_loop();
    a.movi(r_count(), trips);
    let top = a.new_label();
    a.bind(top);
    for _ in 0..g.rng.range_i64(2, 6) {
        g.block(&mut a);
    }
    a.addi(r_count(), r_count(), -1);
    a.cmp(
        CmpType::Unc,
        CmpRel::Gt,
        p_loop,
        p_loop_not,
        r_count(),
        0i64,
    );
    a.pred(p_loop).br(top);
    a.halt();

    a.assemble()
        .expect("generated programs are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim_isa::Machine;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0xC0FFEE, 7, Form::Branchy);
        let b = generate(0xC0FFEE, 7, Form::Branchy);
        assert_eq!(a.listing(), b.listing());
        let c = generate(0xC0FFEE, 8, Form::Branchy);
        assert_ne!(a.listing(), c.listing());
        let d = generate(0xC0FFEE, 7, Form::IfConverted);
        assert_ne!(a.listing(), d.listing());
    }

    #[test]
    fn programs_validate_and_halt() {
        for iter in 0..50 {
            for form in Form::ALL {
                let p = generate(1, iter, form);
                p.validate().unwrap();
                let mut m = Machine::new(&p);
                let out = m
                    .run(crate::oracle::MAX_REF_STEPS)
                    .unwrap_or_else(|e| panic!("iter {iter} {form:?}: emulator error {e}"));
                assert_eq!(
                    out.reason,
                    ppsim_isa::StopReason::Halted,
                    "iter {iter} {form:?} did not halt in {} steps",
                    out.steps
                );
            }
        }
    }

    #[test]
    fn programs_exercise_the_hard_cases() {
        let mut preds = 0u32;
        let mut cmps = 0u32;
        let mut branches = 0u32;
        let mut mems = 0u32;
        for iter in 0..20 {
            for form in Form::ALL {
                let p = generate(2, iter, form);
                preds += p.count_insns(|i| i.is_predicated()) as u32;
                cmps += p.count_insns(|i| i.is_cmp()) as u32;
                branches += p.count_insns(|i| i.is_cond_branch()) as u32;
                mems += p.count_insns(|i| i.is_mem()) as u32;
            }
        }
        assert!(preds > 100, "predicated insns: {preds}");
        assert!(cmps > 100, "compares: {cmps}");
        assert!(branches > 20, "conditional branches: {branches}");
        assert!(mems > 20, "memory ops: {mems}");
    }

    #[test]
    fn listings_reparse_to_the_same_program() {
        for iter in 0..10 {
            for form in Form::ALL {
                let p = generate(3, iter, form);
                let reparsed = ppsim_isa::parse_program(&p.listing()).unwrap();
                assert_eq!(p.listing(), reparsed.listing(), "iter {iter} {form:?}");
            }
        }
    }
}
