//! Greedy test-case minimization.
//!
//! [`shrink`] takes a failing program and a failure predicate and
//! repeatedly tries to make the program smaller while preserving the
//! failure: chunked instruction removal (delta-debugging style, chunk
//! sizes halving from n/2 down to 1), nop substitution for instructions
//! that survive removal, and finally dropping data segments and register
//! initializers. Branch targets are remapped across every removal and
//! each candidate must still pass [`Program::validate`], so the result
//! is always a well-formed, reparseable program.

use ppsim_isa::{Insn, Op, Program};

/// Caps predicate evaluations so a pathological failure cannot stall the
/// fuzz loop; the minimized program is still failing, just maybe not
/// globally minimal.
pub const DEFAULT_MAX_EVALS: usize = 2_000;

/// Removes `insns[lo..hi]`, remapping branch targets: targets past the
/// hole shift down, targets into the hole land on its lower edge.
/// Returns `None` when the result is empty or fails validation.
fn remove_range(program: &Program, lo: usize, hi: usize) -> Option<Program> {
    let removed = (hi - lo) as u32;
    let mut insns: Vec<Insn> = Vec::with_capacity(program.insns.len() - (hi - lo));
    for (i, insn) in program.insns.iter().enumerate() {
        if (lo..hi).contains(&i) {
            continue;
        }
        let mut insn = *insn;
        if let Op::Br { target } = &mut insn.op {
            if *target >= hi as u32 {
                *target -= removed;
            } else if *target >= lo as u32 {
                *target = lo as u32;
            }
        }
        insns.push(insn);
    }
    if insns.is_empty() {
        return None;
    }
    let candidate = Program {
        insns,
        data: program.data.clone(),
        gr_init: program.gr_init.clone(),
        fr_init: program.fr_init.clone(),
    };
    candidate.validate().ok().map(|_| candidate)
}

/// Budgeted wrapper around the caller's failure predicate.
struct Budget<'a> {
    fails: &'a mut dyn FnMut(&Program) -> bool,
    evals_left: usize,
}

impl Budget<'_> {
    fn still_fails(&mut self, candidate: &Program) -> bool {
        if self.evals_left == 0 {
            return false;
        }
        self.evals_left -= 1;
        (self.fails)(candidate)
    }
}

/// Minimizes `program` while `fails` keeps returning `true`.
///
/// `fails(program)` must be `true` on entry (the caller found the
/// failure); the returned program also satisfies it unless the
/// `max_evals` budget ran out mid-pass, in which case the best program
/// seen so far is returned. The predicate should check for the *same*
/// divergence that was originally observed, or the shrinker may slide
/// onto a different bug.
pub fn shrink(
    program: &Program,
    max_evals: usize,
    mut fails: impl FnMut(&Program) -> bool,
) -> Program {
    let mut budget = Budget {
        fails: &mut fails,
        evals_left: max_evals,
    };
    let mut current = program.clone();

    // Pass 1: chunked removal, halving the chunk until single
    // instructions, restarting a size whenever a removal lands.
    let mut chunk = (current.insns.len() / 2).max(1);
    loop {
        let mut lo = 0;
        while lo < current.insns.len() {
            let hi = (lo + chunk).min(current.insns.len());
            match remove_range(&current, lo, hi) {
                Some(cand) if budget.still_fails(&cand) => {
                    current = cand; // retry the same offset at the new length
                }
                _ => lo += chunk,
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Pass 2: neutralize surviving instructions in place (keeps branch
    // targets stable, strips operand complexity).
    for i in 0..current.insns.len() {
        if matches!(current.insns[i].op, Op::Nop | Op::Halt) {
            continue;
        }
        let mut cand = current.clone();
        cand.insns[i] = Insn::new(Op::Nop);
        if cand.validate().is_ok() && budget.still_fails(&cand) {
            current = cand;
        }
    }

    // Pass 3: drop initial state that the failure does not depend on.
    if !current.data.is_empty() {
        let mut cand = current.clone();
        cand.data.clear();
        if budget.still_fails(&cand) {
            current = cand;
        }
    }
    if !current.gr_init.is_empty() {
        let mut cand = current.clone();
        cand.gr_init.clear();
        if budget.still_fails(&cand) {
            current = cand;
        }
    }
    if !current.fr_init.is_empty() {
        let mut cand = current.clone();
        cand.fr_init.clear();
        if budget.still_fails(&cand) {
            current = cand;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim_isa::{AluKind, Asm, CmpRel, CmpType, Gr, Pr};

    /// Builds a 30-instruction program with one `mul` buried inside.
    fn haystack() -> Program {
        let mut a = Asm::new();
        a.init_gr(Gr::new(9), 3);
        for i in 0..12 {
            a.addi(Gr::new(8), Gr::new(8), i);
        }
        a.cmp(
            CmpType::Unc,
            CmpRel::Lt,
            Pr::new(1),
            Pr::new(2),
            Gr::new(8),
            100i64,
        );
        let end = a.new_label();
        a.pred(Pr::new(2)).br(end);
        a.alu(AluKind::Mul, Gr::new(10), Gr::new(9), Gr::new(9));
        a.bind(end);
        for _ in 0..12 {
            a.nop();
        }
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn shrinks_to_the_interesting_instruction() {
        let p = haystack();
        let has_mul = |p: &Program| {
            p.count_insns(|i| {
                matches!(
                    i.op,
                    Op::Alu {
                        kind: AluKind::Mul,
                        ..
                    }
                )
            }) > 0
        };
        assert!(has_mul(&p));
        let small = shrink(&p, DEFAULT_MAX_EVALS, has_mul);
        assert!(has_mul(&small));
        small.validate().unwrap();
        assert!(
            small.insns.len() <= 2,
            "expected mul(+halt) only, got:\n{}",
            small.listing()
        );
        assert!(small.gr_init.is_empty() && small.data.is_empty());
    }

    #[test]
    fn branch_targets_survive_removal() {
        let p = haystack();
        // Keep the branch: every candidate must still validate, so the
        // target is remapped rather than dangling.
        let has_branch = |p: &Program| p.count_insns(|i| i.is_branch()) > 0;
        let small = shrink(&p, DEFAULT_MAX_EVALS, has_branch);
        assert!(has_branch(&small));
        small.validate().unwrap();
        assert!(small.insns.len() <= 2, "{}", small.listing());
    }

    #[test]
    fn exhausted_budget_returns_last_good() {
        let p = haystack();
        let small = shrink(&p, 3, |p: &Program| p.count_insns(|i| i.is_branch()) > 0);
        // Only three candidate evaluations: still failing, maybe large.
        assert!(small.count_insns(|i| i.is_branch()) > 0);
        small.validate().unwrap();
    }
}
