//! Workspace-level checks that span crate boundaries.
//!
//! The unit tests inside `ppsim-predictors` pin `LocalHistoryTable::index_of`
//! against a hand-rolled copy of the slot layout to stay dependency-free;
//! this suite closes the loop with the real `ppsim_isa::Program::pc_of`, and
//! exercises the whole check pipeline end to end (clean sweep, fault
//! injection, repro reparsing).

use ppsim_check::{run_check, CheckOptions};
use ppsim_isa::{parse_program, Program};
use ppsim_pipeline::TestFault;
use ppsim_predictors::{BranchPredictor, Gshare, GshareConfig, LocalHistoryTable};

/// Cross-crate regression promised by the `index_of` doc comment: with the
/// genuine 16-byte slot spacing of `Program::pc_of`, adjacent instruction
/// slots must map to *distinct, consecutive* local-history entries for any
/// table size.
#[test]
fn adjacent_program_slots_never_alias_in_the_local_history_table() {
    for entries in [64usize, 256, 1024] {
        let t = LocalHistoryTable::new(entries, 10);
        for i in 0..2 * entries as u32 {
            let a = t.index_of(Program::pc_of(i));
            let b = t.index_of(Program::pc_of(i + 1));
            assert_ne!(
                a,
                b,
                "slots {i} and {} alias in a {entries}-entry table",
                i + 1
            );
            assert_eq!(
                b,
                (a + 1) & (t.len() - 1),
                "slots {i} and {} are not consecutive entries",
                i + 1
            );
        }
    }
}

/// Same audit for gshare's `(pc >> 4) ^ ghr` index: the 4-bit shift equals
/// the real 16-byte bundle-slot spacing of `Program::pc_of`, so under a
/// fixed global history, consecutive instruction slots must read
/// *distinct, consecutive* 2-bit counters. The counter index a prediction
/// used is exposed through `Prediction::tag.row`; `undo` restores the GHR
/// between probes so every slot is sampled under the same history.
#[test]
fn adjacent_program_slots_never_alias_in_gshare() {
    for ghr_bits in [6u32, 10, 14] {
        let mut g = Gshare::new(GshareConfig { ghr_bits });
        let entries = 1u32 << ghr_bits;
        let mut prev = None;
        for i in 0..2 * entries {
            let p = g.predict(Program::pc_of(i), 0);
            g.undo(&p);
            if let Some(prev) = prev {
                assert_ne!(p.tag.row, prev, "slots {} and {i} alias", i - 1);
                assert_eq!(
                    p.tag.row,
                    (prev + 1) & (entries - 1),
                    "slots {} and {i} are not consecutive counters",
                    i - 1
                );
            }
            prev = Some(p.tag.row);
        }
    }
}

/// A seeded sweep over generated programs finds no divergences between the
/// timing model and the architectural emulator.
#[test]
fn seeded_sweep_is_clean() {
    let opts = CheckOptions {
        seed: 0xC0FFEE,
        iters: 10,
        use_cache: false,
        ..CheckOptions::default()
    };
    let report = run_check(&opts);
    assert!(
        report.passed(),
        "unexpected divergences:\n{}",
        report.table()
    );
    assert_eq!(report.programs, 20);
}

/// A deliberately broken predictor is caught, and the minimized repro is a
/// short, reparseable `.pisa` listing that still triggers the divergence.
#[test]
fn broken_predictor_is_caught_with_a_small_repro() {
    let opts = CheckOptions {
        seed: 0xC0FFEE,
        iters: 3,
        fault: Some(TestFault::InvertOracle),
        use_cache: false,
        ..CheckOptions::default()
    };
    let report = run_check(&opts);
    assert!(!report.passed(), "the injected fault went unnoticed");
    for f in &report.findings {
        assert!(
            f.repro_insns <= 20,
            "repro for iter {} has {} instructions",
            f.iter,
            f.repro_insns
        );
        let reparsed = parse_program(&f.repro).expect("repro must reparse");
        assert_eq!(reparsed.len(), f.repro_insns);
    }
}
