//! End-to-end tests for the serve daemon: byte determinism against the
//! batch CLI, concurrent dedup, and protocol robustness. Every test
//! runs its own server on an ephemeral loopback port with a private
//! cache directory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use ppsim_core::{experiments, ExperimentConfig, Json, Runner, RunnerOptions};
use ppsim_pipeline::{PredicationModel, SchemeSpec};
use ppsim_serve::{submit, ServeOptions, Server, ServerState, SubmitOptions};

/// The fig-6a cell every determinism test asks for (PEP-PA column).
const CELL: &str =
    r#"{"op":"cell","bench":"gzip","scheme":"pep-pa","ifconv":true,"commits":30000}"#;
const COMMITS: u64 = 30_000;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppsim-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct TestServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: JoinHandle<Arc<ServerState>>,
    dir: PathBuf,
}

impl TestServer {
    fn start(tag: &str, max_clients: usize) -> TestServer {
        let dir = temp_dir(tag);
        let opts = ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            max_clients,
            runner: RunnerOptions {
                jobs: 2,
                cache_dir: Some(dir.clone()),
                ..RunnerOptions::default()
            },
        };
        let server = Server::bind(&opts).expect("bind ephemeral loopback");
        let addr = server.local_addr().unwrap();
        let state = Arc::clone(server.state());
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            state,
            thread,
            dir,
        }
    }

    /// Requests shutdown through the protocol and joins the run loop.
    fn stop(self) {
        self.state.request_stop();
        self.thread.join().expect("server run loop exits cleanly");
        let _ = std::fs::remove_dir_all(&self.dir);
    }

    fn submit_lines(&self, requests: &str) -> Result<Vec<String>, String> {
        let opts = SubmitOptions {
            addr: self.addr.to_string(),
            raw: None,
            quiet: true,
        };
        let mut out = Vec::new();
        submit(&opts, requests, &mut out)?;
        Ok(String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect())
    }
}

/// Raw-socket session: sends `lines`, returns every event line read
/// until the expected number of terminal events arrived.
fn raw_session(addr: SocketAddr, lines: &[&str], terminals: usize) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut hello = String::new();
    reader.read_line(&mut hello).unwrap();
    for line in lines {
        writeln!(stream, "{line}").unwrap();
    }
    let mut events = Vec::new();
    let mut done = 0;
    while done < terminals {
        let mut event = String::new();
        if reader.read_line(&mut event).unwrap() == 0 {
            break;
        }
        let event = Json::parse(event.trim()).expect("server emits valid JSON");
        let kind = event.get_path("event").and_then(Json::as_str).unwrap_or("");
        if kind == "result" || kind == "error" {
            done += 1;
        }
        events.push(event);
    }
    events
}

fn results_of(events: &[Json]) -> Vec<&Json> {
    events
        .iter()
        .filter(|e| e.get_path("event").and_then(Json::as_str) == Some("result"))
        .collect()
}

/// The acceptance criterion end to end: a fig-6a cell served cold, then
/// warm, is byte-identical both between the two requests and against
/// the same cell executed by the batch runner; warmness is proven by
/// telemetry, not timing.
#[test]
fn cell_is_byte_identical_cold_warm_and_vs_batch() {
    let server = TestServer::start("parity", 8);
    let cold = server.submit_lines(CELL).unwrap();
    let warm = server.submit_lines(CELL).unwrap();
    assert_eq!(cold, warm, "cold and warm data bytes differ");
    assert_eq!(cold.len(), 1);

    let telemetry = server.state.runner.telemetry();
    assert_eq!(telemetry.jobs_run, 1, "second request must not simulate");
    let counters = server.state.counters();
    assert_eq!(
        counters.warm_hits, 1,
        "second request served by the warm lane"
    );
    assert_eq!(counters.cold_runs, 1);

    // Batch reference: the same canonical cell through a fresh runner
    // with its own cache, exactly as `ppsim suite` builds it.
    let batch_dir = temp_dir("parity-batch");
    let batch = Runner::new(RunnerOptions {
        jobs: 1,
        cache_dir: Some(batch_dir.clone()),
        ..RunnerOptions::default()
    });
    let cfg = ExperimentConfig {
        commits: COMMITS,
        ..ExperimentConfig::default()
    };
    let job = experiments::plan(
        &cfg,
        experiments::PlanSpec::Cell {
            bench: "gzip",
            ifconv: true,
            scheme: SchemeSpec::PepPa,
            predication: PredicationModel::Cmov,
        },
    )
    .remove(0);
    let reference = batch.run_job(&job);
    let served = Json::parse(&cold[0]).unwrap();
    assert_eq!(
        served.get_path("stats").unwrap().to_string(),
        reference.stats.metrics().to_json().to_string(),
        "served stats bytes != batch stats bytes"
    );
    assert_eq!(
        served.get_path("key").and_then(Json::as_str),
        Some(job.hash_hex().as_str()),
        "served cell key != batch job key"
    );
    let _ = std::fs::remove_dir_all(&batch_dir);
    server.stop();
}

/// Satellite: N concurrent identical requests → exactly one simulation
/// (telemetry-proven) and N byte-identical results.
#[test]
fn concurrent_duplicate_cells_coalesce_to_one_simulation() {
    const N: usize = 6;
    let server = TestServer::start("dedup", N + 2);
    let gate = Arc::new(std::sync::Barrier::new(N));
    let outputs: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let server = &server;
                scope.spawn(move || {
                    gate.wait();
                    server.submit_lines(CELL).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for out in &outputs[1..] {
        assert_eq!(out, &outputs[0], "clients saw different bytes");
    }
    let telemetry = server.state.runner.telemetry();
    assert_eq!(
        telemetry.jobs_run, 1,
        "exactly one simulation for {N} identical requests"
    );
    let counters = server.state.counters();
    assert_eq!(
        counters.cold_runs + counters.coalesced + counters.warm_hits,
        N as u64,
        "every request accounted to exactly one lane"
    );
    assert_eq!(counters.cold_runs, 1, "one leader");
    server.stop();
}

/// The served `report` op returns the exact bytes `ppsim suite` prints
/// for the same configuration.
#[test]
fn served_report_matches_batch_suite_bytes() {
    let cfg = ExperimentConfig {
        commits: COMMITS,
        only: vec!["gzip".to_string()],
        ..ExperimentConfig::default()
    };
    let batch_dir = temp_dir("report-batch");
    let batch = Runner::new(RunnerOptions {
        jobs: 2,
        cache_dir: Some(batch_dir.clone()),
        ..RunnerOptions::default()
    });
    let expected = experiments::full_report(&batch, &cfg);
    let _ = std::fs::remove_dir_all(&batch_dir);

    let server = TestServer::start("report", 4);
    let request = format!(r#"{{"op":"report","commits":{COMMITS},"only":"gzip"}}"#);
    let events = raw_session(server.addr, &[&request], 1);
    let results = results_of(&events);
    assert_eq!(results.len(), 1);
    let text = results[0]
        .get_path("data.text")
        .and_then(Json::as_str)
        .expect("report result carries data.text");
    assert_eq!(text, expected, "served report != batch suite stdout");
    assert!(
        events.iter().any(|e| {
            e.get_path("event").and_then(Json::as_str) == Some("progress")
                && e.get_path("stage").and_then(Json::as_str) == Some("report")
        }),
        "grid ops stream progress events"
    );
    server.stop();
}

/// Satellite: malformed JSON, unknown ops and unknown fields error that
/// request only — the connection and the server stay usable — and an
/// oversized line drops the client without poisoning shared state.
#[test]
fn protocol_violations_do_not_poison_the_server() {
    let server = TestServer::start("robust", 4);

    // Malformed, unknown, invalid — then a valid stats on the SAME
    // connection must still answer.
    let events = raw_session(
        server.addr,
        &[
            "{not json",
            r#"{"op":"warp"}"#,
            r#"{"op":"cell","bench":"gzip"}"#,
            r#"{"op":"stats"}"#,
        ],
        4,
    );
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get_path("event").and_then(Json::as_str))
        .collect();
    assert_eq!(kinds, ["error", "error", "error", "result"]);

    // Oversized line: error event, then the connection closes. One byte
    // over the cap, so the server consumes every byte we sent (a larger
    // blast would leave unread bytes and turn the close into a RST).
    let mut stream = TcpStream::connect(server.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut hello = String::new();
    reader.read_line(&mut hello).unwrap();
    let big = vec![b'x'; ppsim_serve::protocol::MAX_LINE + 1];
    stream.write_all(&big).unwrap();
    stream.flush().unwrap();
    let mut event = String::new();
    reader.read_line(&mut event).unwrap();
    let event = Json::parse(event.trim()).unwrap();
    assert_eq!(
        event.get_path("event").and_then(Json::as_str),
        Some("error")
    );
    assert!(event
        .get_path("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("exceeds"));
    let mut rest = String::new();
    match reader.read_to_string(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "connection closed after oversized line"),
        // A reset is also a close; the assertions below prove the
        // server itself stayed healthy.
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("unexpected read error: {e}"),
    }

    // A fresh client is served normally afterwards.
    let events = raw_session(server.addr, &[r#"{"op":"stats"}"#], 1);
    assert_eq!(results_of(&events).len(), 1);
    let counters = server.state.counters();
    assert_eq!(counters.oversized_lines, 1);
    assert!(counters.errors >= 4);
    server.stop();
}

/// Satellite: a client that vanishes mid-request must not wedge the
/// daemon; the next client asking for the same cell gets a full answer.
#[test]
fn mid_request_disconnect_does_not_poison_state() {
    let server = TestServer::start("disconnect", 4);
    {
        let mut stream = TcpStream::connect(server.addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut hello = String::new();
        reader.read_line(&mut hello).unwrap();
        writeln!(stream, "{CELL}").unwrap();
        stream.flush().unwrap();
        // Drop both halves immediately: the request may be mid-parse,
        // mid-simulation, or unread — all must be survivable.
    }
    let out = server.submit_lines(CELL).unwrap();
    assert_eq!(out.len(), 1, "server still answers after a disconnect");
    server.stop();
}

/// Satellite: seeded-RNG fuzz of raw request bytes (the `check` crate's
/// style). No input may kill the daemon or corrupt its event framing.
#[test]
fn fuzzed_request_bytes_never_kill_the_server() {
    let server = TestServer::start("fuzz", 4);
    let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    // Mutation corpus: valid requests with bytes spliced in, plus pure
    // garbage of varying lengths.
    let corpus = [
        CELL,
        r#"{"op":"stats"}"#,
        r#"{"op":"fig6a","only":"gzip","commits":20000}"#,
        r#"{"op":"check","iters":1}"#,
    ];
    for round in 0..8 {
        let mut stream = TcpStream::connect(server.addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut hello = String::new();
        reader.read_line(&mut hello).unwrap();
        for _ in 0..12 {
            let mut line = corpus[(rng() % corpus.len() as u64) as usize]
                .as_bytes()
                .to_vec();
            let mutations = rng() % 6;
            for _ in 0..mutations {
                let i = (rng() as usize) % line.len();
                // Printable garbage only: a raw newline would just split
                // the line, which is legal framing.
                line[i] = 0x20 + (rng() % 0x5F) as u8;
            }
            if round % 2 == 0 {
                let extra = (rng() % 64) as usize;
                line.extend((0..extra).map(|_| 0x20 + (rng() % 0x5F) as u8));
            }
            stream.write_all(&line).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        // The server may legitimately answer slowly here (a mutation can
        // still be a valid simulation request); just drop the socket.
    }
    // The daemon must still serve a clean client and report sane
    // counters.
    let events = raw_session(server.addr, &[r#"{"op":"stats"}"#], 1);
    let results = results_of(&events);
    assert_eq!(results.len(), 1);
    assert!(
        results[0]
            .get_path("data.server.counters.requests")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            >= 1.0
    );
    server.stop();
}

/// `stats` exposes the tentpole's counters: telemetry, server counters
/// and cache usage, all as one JSON object.
#[test]
fn stats_reports_telemetry_counters_and_cache() {
    let server = TestServer::start("stats", 4);
    server.submit_lines(CELL).unwrap();
    let events = raw_session(server.addr, &[r#"{"op":"stats"}"#], 1);
    let stats = results_of(&events)[0].get_path("data").unwrap();
    assert_eq!(
        stats.get_path("telemetry.jobs_run").and_then(Json::as_i64),
        Some(1)
    );
    assert!(
        stats
            .get_path("server.counters.requests")
            .and_then(Json::as_f64)
            .unwrap()
            >= 1.0
    );
    assert!(
        stats
            .get_path("cache.entries")
            .and_then(Json::as_i64)
            .unwrap()
            >= 1,
        "cell result persisted to the disk cache"
    );
    server.stop();
}

/// A `shutdown` request drains the daemon: `run` returns, and new
/// connections are no longer served.
#[test]
fn shutdown_request_drains_and_stops() {
    let server = TestServer::start("shutdown", 4);
    let events = raw_session(server.addr, &[r#"{"op":"shutdown"}"#], 1);
    let results = results_of(&events);
    assert_eq!(results.len(), 1);
    assert_eq!(
        results[0].get_path("data.stopping"),
        Some(&Json::Bool(true))
    );
    let addr = server.addr;
    let dir = server.dir.clone();
    server
        .thread
        .join()
        .expect("run loop exits after shutdown op");
    // The listener is gone: connecting now fails outright (nothing is
    // bound to the port anymore).
    assert!(TcpStream::connect(addr).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--max-clients` refuses the connection over the cap with an error
/// event instead of hanging it.
#[test]
fn max_clients_cap_refuses_excess_connections() {
    let server = TestServer::start("cap", 1);
    // Hold one connection open past its hello.
    let held = TcpStream::connect(server.addr).unwrap();
    let mut reader = BufReader::new(held.try_clone().unwrap());
    let mut hello = String::new();
    reader.read_line(&mut hello).unwrap();
    // The second connection must be refused with an error event.
    let refused = TcpStream::connect(server.addr).unwrap();
    let mut reader2 = BufReader::new(refused);
    let mut line = String::new();
    reader2.read_line(&mut line).unwrap();
    let event = Json::parse(line.trim()).unwrap();
    assert_eq!(
        event.get_path("event").and_then(Json::as_str),
        Some("error")
    );
    assert!(event
        .get_path("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("capacity"));
    drop(held);
    server.stop();
}
