//! The `ppsim serve` wire protocol: newline-delimited JSON.
//!
//! Each line a client sends is one request object; each line the server
//! sends is one event object. Per request the server streams zero or
//! more `progress` events and exactly one terminal `result` or `error`
//! event, all carrying the request's `id` (its 1-based sequence number
//! on the connection). A `hello` event precedes everything on connect.
//!
//! ```text
//! request  := {"op": OP, ...op fields}
//! OP       := "cell" | "fig6a" | "report" | "sweep" | "check"
//!           | "stats" | "shutdown"
//! event    := {"event":"hello","proto":1,"service":"ppsim-serve"}
//!           | {"event":"progress","id":N,"stage":S,"done":D,"total":T}
//!           | {"event":"result","id":N,"op":OP,"warm":B,"coalesced":B,
//!              "data":{...}}
//!           | {"event":"error","id":N,"message":M}
//! ```
//!
//! Unknown fields are rejected, not ignored: a typoed field name would
//! otherwise silently fall back to its default and return the *wrong
//! cell* with a valid-looking result.
//!
//! Determinism contract: the `data` object of a `result` is a pure
//! function of the request — byte-identical whether the answer was
//! simulated, replayed from the disk cache, or coalesced onto another
//! client's in-flight run. Everything execution-dependent (`warm`,
//! `coalesced`, progress events, `stats` output) stays outside `data`.

use ppsim_core::{experiments, ExperimentConfig, Job, Json, SampleSpec};
use ppsim_pipeline::{PredicationModel, SchemeSpec};

/// Protocol revision, announced in the `hello` event.
pub const PROTO_VERSION: u64 = 1;

/// Longest accepted request line in bytes (terminator excluded). A line
/// that grows past this errors the connection: an unbounded line is
/// indistinguishable from a client streaming garbage into server memory.
pub const MAX_LINE: usize = 64 * 1024;

/// One experiment-grid cell (a single simulation).
#[derive(Clone, Debug)]
pub struct CellRequest {
    /// Benchmark name (validated against the suite).
    pub bench: String,
    /// Prediction scheme.
    pub scheme: SchemeSpec,
    /// Predication model (default cmov).
    pub predication: PredicationModel,
    /// Simulate the if-converted binary (default false).
    pub ifconv: bool,
    /// Run the conventional shadow predictor alongside (default false).
    pub shadow: bool,
    /// Committed-instruction budget (default 500 000).
    pub commits: u64,
    /// Profiling budget for the compiler (default 200 000).
    pub profile_steps: u64,
    /// Sampled-simulation schedule (`None` = full run).
    pub sample: Option<SampleSpec>,
}

impl CellRequest {
    /// The canonical [`Job`] for this cell — built through the same
    /// constructor the batch figures use, so the daemon shares cache
    /// keys (and therefore bytes) with `ppsim suite`.
    pub fn job(&self) -> Job {
        let cfg = ExperimentConfig {
            commits: self.commits,
            profile_steps: self.profile_steps,
            ..ExperimentConfig::default()
        };
        let mut jobs = experiments::plan(
            &cfg,
            experiments::PlanSpec::Cell {
                bench: &self.bench,
                ifconv: self.ifconv,
                scheme: self.scheme,
                predication: self.predication,
            },
        );
        Job {
            shadow: self.shadow,
            ..jobs.remove(0)
        }
    }
}

/// Config-shaped fields shared by the grid ops (`fig6a`, `report`,
/// `sweep`): the same knobs `ppsim suite` takes on the command line.
#[derive(Clone, Debug)]
pub struct GridRequest {
    /// Committed-instruction budget per cell.
    pub commits: u64,
    /// Profiling budget for the compiler.
    pub profile_steps: u64,
    /// Restrict to these benchmarks (empty = the whole suite).
    pub only: Vec<String>,
    /// Sampled-simulation schedule (`None` = full runs).
    pub sample: Option<SampleSpec>,
}

impl GridRequest {
    /// The experiment configuration these fields describe.
    pub fn config(&self) -> ExperimentConfig {
        ExperimentConfig {
            commits: self.commits,
            profile_steps: self.profile_steps,
            only: self.only.clone(),
            sample: self.sample,
            ..ExperimentConfig::default()
        }
    }

    /// Canonical text identity of the grid fields, used to key op-level
    /// request coalescing.
    pub fn canon(&self) -> String {
        format!(
            "commits={}|profile={}|only={}|sample={}",
            self.commits,
            self.profile_steps,
            self.only.join(","),
            self.sample.map(|s| s.canon()).unwrap_or_default()
        )
    }
}

/// Which sensitivity sweep to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepKind {
    /// Predictor storage-budget sweep.
    Size,
    /// History-length sweep.
    History,
    /// If-conversion threshold sweep.
    Threshold,
}

impl SweepKind {
    /// CLI/protocol spelling.
    pub fn name(self) -> &'static str {
        match self {
            SweepKind::Size => "size",
            SweepKind::History => "history",
            SweepKind::Threshold => "threshold",
        }
    }

    fn parse(s: &str) -> Option<SweepKind> {
        match s {
            "size" => Some(SweepKind::Size),
            "history" => Some(SweepKind::History),
            "threshold" => Some(SweepKind::Threshold),
            _ => None,
        }
    }
}

/// A sensitivity-sweep request.
#[derive(Clone, Debug)]
pub struct SweepRequest {
    /// Which sweep.
    pub kind: SweepKind,
    /// Sweep the if-converted binaries (ignored by `threshold`).
    pub ifconv: bool,
    /// Grid configuration.
    pub grid: GridRequest,
}

/// A differential-cosimulation (`check`) sweep.
#[derive(Clone, Debug)]
pub struct CheckRequest {
    /// Base RNG seed.
    pub seed: u64,
    /// Iterations (default 25).
    pub iters: u64,
    /// Also run the sampled-simulation invariants with this epsilon.
    pub sample_epsilon: Option<f64>,
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// One grid cell.
    Cell(CellRequest),
    /// The Figure 6a comparison (prewarms the whole grid).
    Fig6a(GridRequest),
    /// The consolidated suite report, byte-identical to `ppsim suite`.
    Report(GridRequest),
    /// A sensitivity sweep.
    Sweep(SweepRequest),
    /// A cosimulation check sweep.
    Check(CheckRequest),
    /// Server counters + runner telemetry + cache usage.
    Stats,
    /// Graceful shutdown: drain in-flight work, then exit.
    Shutdown,
}

impl Request {
    /// The request's `op` spelling (echoed in its terminal event).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Cell(_) => "cell",
            Request::Fig6a(_) => "fig6a",
            Request::Report(_) => "report",
            Request::Sweep(_) => "sweep",
            Request::Check(_) => "check",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Typed view of one request object, with strict field checking.
struct Fields<'a> {
    op: &'a str,
    fields: &'a [(String, Json)],
}

impl<'a> Fields<'a> {
    fn get(&self, key: &str) -> Option<&'a Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Rejects any field outside `allowed` (plus `op` itself).
    fn check_keys(&self, allowed: &[&str]) -> Result<(), String> {
        for (k, _) in self.fields {
            if k != "op" && !allowed.contains(&k.as_str()) {
                return Err(format!("unknown field `{}` for op `{}`", k, self.op));
            }
        }
        Ok(())
    }

    fn str(&self, key: &str) -> Result<Option<&'a str>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("field `{key}` must be a string")),
        }
    }

    fn required_str(&self, key: &str) -> Result<&'a str, String> {
        self.str(key)?
            .ok_or_else(|| format!("op `{}` requires field `{key}`", self.op))
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_i64()
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
        }
    }

    fn bool(&self, key: &str, default: bool) -> Result<bool, String> {
        match self.get(key) {
            None => Ok(default),
            Some(Json::Bool(b)) => Ok(*b),
            Some(_) => Err(format!("field `{key}` must be a boolean")),
        }
    }

    fn f64(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("field `{key}` must be a number")),
        }
    }

    /// `--sample`-style field: a `skip:warmup:measure:stride:count` spec
    /// or the literal `"default"`.
    fn sample(&self) -> Result<Option<SampleSpec>, String> {
        match self.str("sample")? {
            None => Ok(None),
            Some("default") => Ok(Some(SampleSpec::default_spec())),
            Some(spec) => SampleSpec::parse(spec).map(Some).map_err(|e| e.to_string()),
        }
    }

    /// `only`: a comma-separated string or an array of strings.
    fn only(&self) -> Result<Vec<String>, String> {
        match self.get("only") {
            None => Ok(Vec::new()),
            Some(Json::Str(s)) => Ok(s.split(',').map(|b| b.trim().to_string()).collect()),
            Some(Json::Arr(items)) => items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "field `only` must contain strings".to_string())
                })
                .collect(),
            Some(_) => Err("field `only` must be a string or an array of strings".to_string()),
        }
    }
}

fn known_benchmark(name: &str) -> Result<(), String> {
    if ppsim_compiler::spec2000_suite()
        .iter()
        .any(|s| s.name == name)
    {
        Ok(())
    } else {
        Err(format!("unknown benchmark `{name}` (see `ppsim list`)"))
    }
}

fn commits_field(f: &Fields) -> Result<u64, String> {
    let commits = f.u64("commits", 500_000)?;
    if commits == 0 {
        return Err("field `commits` must be at least 1".to_string());
    }
    Ok(commits)
}

fn profile_field(f: &Fields) -> Result<u64, String> {
    let steps = f.u64("profile_steps", 200_000)?;
    if steps == 0 {
        return Err("field `profile_steps` must be at least 1".to_string());
    }
    Ok(steps)
}

fn grid_fields(f: &Fields) -> Result<GridRequest, String> {
    let only = f.only()?;
    for bench in &only {
        known_benchmark(bench)?;
    }
    Ok(GridRequest {
        commits: commits_field(f)?,
        profile_steps: profile_field(f)?,
        only,
        sample: f.sample()?,
    })
}

/// Parses one request line. Every error names the offending field or
/// value; nothing about a bad line changes server state.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let Json::Obj(ref fields) = doc else {
        return Err("request must be a JSON object".to_string());
    };
    let op = doc
        .get("op")
        .ok_or("request object needs an `op` field")?
        .as_str()
        .ok_or("field `op` must be a string")?;
    let f = Fields { op, fields };
    match op {
        "cell" => {
            f.check_keys(&[
                "bench",
                "scheme",
                "predication",
                "ifconv",
                "shadow",
                "commits",
                "profile_steps",
                "sample",
            ])?;
            let bench = f.required_str("bench")?;
            known_benchmark(bench)?;
            let scheme = f.required_str("scheme")?;
            let scheme =
                SchemeSpec::parse(scheme).ok_or_else(|| format!("unknown scheme `{scheme}`"))?;
            let predication = match f.str("predication")? {
                None | Some("cmov") => PredicationModel::Cmov,
                Some("selective") => PredicationModel::Selective,
                Some(other) => {
                    return Err(format!(
                        "unknown predication `{other}` (expected cmov|selective)"
                    ))
                }
            };
            Ok(Request::Cell(CellRequest {
                bench: bench.to_string(),
                scheme,
                predication,
                ifconv: f.bool("ifconv", false)?,
                shadow: f.bool("shadow", false)?,
                commits: commits_field(&f)?,
                profile_steps: profile_field(&f)?,
                sample: f.sample()?,
            }))
        }
        "fig6a" => {
            f.check_keys(&["commits", "profile_steps", "only", "sample"])?;
            Ok(Request::Fig6a(grid_fields(&f)?))
        }
        "report" => {
            f.check_keys(&["commits", "profile_steps", "only", "sample"])?;
            Ok(Request::Report(grid_fields(&f)?))
        }
        "sweep" => {
            f.check_keys(&[
                "kind",
                "ifconv",
                "commits",
                "profile_steps",
                "only",
                "sample",
            ])?;
            let kind = f.required_str("kind")?;
            let kind = SweepKind::parse(kind)
                .ok_or_else(|| format!("unknown sweep kind `{kind}` (size|history|threshold)"))?;
            Ok(Request::Sweep(SweepRequest {
                kind,
                ifconv: f.bool("ifconv", true)?,
                grid: grid_fields(&f)?,
            }))
        }
        "check" => {
            f.check_keys(&["seed", "iters", "sample_epsilon"])?;
            let epsilon = f.f64("sample_epsilon")?;
            if let Some(e) = epsilon {
                if !e.is_finite() || e < 0.0 {
                    return Err("field `sample_epsilon` must be finite and >= 0".to_string());
                }
            }
            Ok(Request::Check(CheckRequest {
                seed: f.u64("seed", 0)?,
                iters: f.u64("iters", 25)?,
                sample_epsilon: epsilon,
            }))
        }
        "stats" => {
            f.check_keys(&[])?;
            Ok(Request::Stats)
        }
        "shutdown" => {
            f.check_keys(&[])?;
            Ok(Request::Shutdown)
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// The connection-opening `hello` event.
pub fn hello() -> Json {
    Json::obj()
        .field("event", "hello")
        .field("proto", PROTO_VERSION)
        .field("service", "ppsim-serve")
}

/// A `progress` event for request `id`.
pub fn progress(id: u64, stage: &str, done: u64, total: u64) -> Json {
    Json::obj()
        .field("event", "progress")
        .field("id", id)
        .field("stage", stage)
        .field("done", done)
        .field("total", total)
}

/// The terminal `result` event for request `id`. `warm` and `coalesced`
/// describe *how* this answer was produced (cache replay / joined
/// another client's run); `data` is the deterministic payload.
pub fn result(id: u64, op: &str, warm: bool, coalesced: bool, data: Json) -> Json {
    Json::obj()
        .field("event", "result")
        .field("id", id)
        .field("op", op)
        .field("warm", warm)
        .field("coalesced", coalesced)
        .field("data", data)
}

/// The terminal `error` event for request `id` (0 when the line never
/// parsed far enough to get a sequence number).
pub fn error(id: u64, message: &str) -> Json {
    Json::obj()
        .field("event", "error")
        .field("id", id)
        .field("message", message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_cell() {
        let r = parse_request(r#"{"op":"cell","bench":"gzip","scheme":"predicate"}"#).unwrap();
        let Request::Cell(c) = r else {
            panic!("not a cell")
        };
        assert_eq!(c.bench, "gzip");
        assert_eq!(c.scheme, SchemeSpec::Predicate);
        assert_eq!(c.predication, PredicationModel::Cmov);
        assert!(!c.ifconv);
        assert_eq!(c.commits, 500_000);
        assert!(c.sample.is_none());
    }

    #[test]
    fn cell_job_matches_batch_construction() {
        let r = parse_request(
            r#"{"op":"cell","bench":"gcc","scheme":"pep-pa","ifconv":true,"commits":40000}"#,
        )
        .unwrap();
        let Request::Cell(c) = r else {
            panic!("not a cell")
        };
        let cfg = ExperimentConfig {
            commits: 40_000,
            ..ExperimentConfig::default()
        };
        let batch = experiments::plan(
            &cfg,
            experiments::PlanSpec::Cell {
                bench: "gcc",
                ifconv: true,
                scheme: SchemeSpec::PepPa,
                predication: PredicationModel::Cmov,
            },
        )
        .remove(0);
        assert_eq!(c.job().canon(), batch.canon(), "identical cache identity");
    }

    #[test]
    fn rejects_unknown_fields_ops_and_values() {
        for (line, needle) in [
            (
                r#"{"op":"cell","bench":"gzip","scheme":"predicate","bogus":1}"#,
                "unknown field",
            ),
            (r#"{"op":"warp"}"#, "unknown op"),
            (
                r#"{"op":"cell","scheme":"predicate"}"#,
                "requires field `bench`",
            ),
            (
                r#"{"op":"cell","bench":"nope","scheme":"predicate"}"#,
                "unknown benchmark",
            ),
            (
                r#"{"op":"cell","bench":"gzip","scheme":"zap"}"#,
                "unknown scheme",
            ),
            (
                r#"{"op":"cell","bench":"gzip","scheme":"predicate","commits":0}"#,
                "at least 1",
            ),
            (
                r#"{"op":"cell","bench":"gzip","scheme":"predicate","commits":-3}"#,
                "non-negative",
            ),
            (r#"{"op":"fig6a","only":"gzip,nope"}"#, "unknown benchmark"),
            (r#"{"op":"sweep","kind":"banana"}"#, "unknown sweep kind"),
            (r#"{"op":"check","sample_epsilon":-1.0}"#, "sample_epsilon"),
            (r#"{"op":"stats","extra":true}"#, "unknown field"),
            (r#"[1,2]"#, "must be a JSON object"),
            (r#"{"bench":"gzip"}"#, "needs an `op`"),
            (r#"{{{"#, "malformed JSON"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn sample_field_accepts_default_and_spec() {
        let r = parse_request(
            r#"{"op":"cell","bench":"gzip","scheme":"predicate","sample":"default"}"#,
        )
        .unwrap();
        let Request::Cell(c) = r else { panic!() };
        assert_eq!(c.sample, Some(SampleSpec::default_spec()));
        let r = parse_request(r#"{"op":"fig6a","sample":"0:1000:1000:2000:2"}"#).unwrap();
        let Request::Fig6a(g) = r else { panic!() };
        assert_eq!(g.sample.unwrap().count, 2);
        assert!(parse_request(r#"{"op":"fig6a","sample":"1:2"}"#).is_err());
    }

    #[test]
    fn only_accepts_string_and_array_forms() {
        let r = parse_request(r#"{"op":"report","only":"gzip, gcc"}"#).unwrap();
        let Request::Report(g) = r else { panic!() };
        assert_eq!(g.only, ["gzip", "gcc"]);
        let r = parse_request(r#"{"op":"report","only":["twolf"]}"#).unwrap();
        let Request::Report(g) = r else { panic!() };
        assert_eq!(g.only, ["twolf"]);
        assert!(parse_request(r#"{"op":"report","only":7}"#).is_err());
    }
}
