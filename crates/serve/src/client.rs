//! `ppsim submit` — the scriptable client.
//!
//! Reads request lines (from a file or stdin), sends them over one
//! connection, and prints each request's deterministic `data` object as
//! one line on stdout; progress and provenance go to stderr. `--raw
//! PATH` prints a dotted-path extraction from the *whole result event*
//! instead (so scripts can read `warm`, `coalesced`, or
//! `data.stats.ipc` without a JSON parser). Exit is `Err` if any
//! request errored.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use ppsim_core::Json;

/// Connection attempts before giving up (the daemon may still be
/// binding when a scripted session starts).
const CONNECT_RETRIES: u32 = 20;
/// Delay between connection attempts.
const CONNECT_BACKOFF: Duration = Duration::from_millis(300);

/// Options for one `submit` session.
#[derive(Clone, Debug)]
pub struct SubmitOptions {
    /// Server address.
    pub addr: String,
    /// Dotted path to extract from each result event (`None` = print
    /// the `data` object).
    pub raw: Option<String>,
    /// Suppress progress chatter on stderr.
    pub quiet: bool,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            addr: crate::DEFAULT_ADDR.to_string(),
            raw: None,
            quiet: false,
        }
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for attempt in 0..CONNECT_RETRIES {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < CONNECT_RETRIES {
            std::thread::sleep(CONNECT_BACKOFF);
        }
    }
    Err(format!("cannot connect to {addr}: {last}"))
}

/// Sends each non-empty line of `requests` and writes one output line
/// per request into `out`. Returns the number of requests served, or
/// the first hard failure (connection loss, server error event).
pub fn submit(opts: &SubmitOptions, requests: &str, out: &mut impl Write) -> Result<u64, String> {
    let stream = connect(&opts.addr)?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);

    let mut hello = String::new();
    reader
        .read_line(&mut hello)
        .map_err(|e| format!("reading hello: {e}"))?;
    let hello = Json::parse(hello.trim()).map_err(|e| format!("bad hello: {e}"))?;
    if hello.get_path("proto").and_then(Json::as_i64) != Some(crate::protocol::PROTO_VERSION as i64)
    {
        return Err(format!("unexpected server hello: {hello}"));
    }

    let mut served = 0u64;
    for line in requests.lines().map(str::trim).filter(|l| !l.is_empty()) {
        writeln!(writer, "{line}").map_err(|e| format!("send failed: {e}"))?;
        loop {
            let mut event = String::new();
            let n = reader
                .read_line(&mut event)
                .map_err(|e| format!("read failed: {e}"))?;
            if n == 0 {
                return Err("server closed the connection mid-request".to_string());
            }
            let event = Json::parse(event.trim()).map_err(|e| format!("bad event: {e}"))?;
            match event.get_path("event").and_then(Json::as_str) {
                Some("progress") => {
                    if !opts.quiet {
                        eprintln!(
                            "submit: {} {}/{}",
                            event
                                .get_path("stage")
                                .and_then(Json::as_str)
                                .unwrap_or("?"),
                            event.get_path("done").and_then(Json::as_i64).unwrap_or(0),
                            event.get_path("total").and_then(Json::as_i64).unwrap_or(0),
                        );
                    }
                }
                Some("result") => {
                    served += 1;
                    if !opts.quiet {
                        eprintln!(
                            "submit: result op={} warm={} coalesced={}",
                            event.get_path("op").and_then(Json::as_str).unwrap_or("?"),
                            event
                                .get_path("warm")
                                .map(|w| w.to_string())
                                .unwrap_or_default(),
                            event
                                .get_path("coalesced")
                                .map(|w| w.to_string())
                                .unwrap_or_default(),
                        );
                    }
                    let rendered = match &opts.raw {
                        Some(path) => match event.get_path(path) {
                            Some(Json::Str(s)) => s.clone(),
                            Some(v) => v.to_string(),
                            None => return Err(format!("no `{path}` in result event: {event}")),
                        },
                        None => event
                            .get_path("data")
                            .map(|d| d.to_string())
                            .unwrap_or_else(|| "null".to_string()),
                    };
                    // Keep raw string extractions byte-faithful: only
                    // terminate the line if the value didn't already.
                    if rendered.ends_with('\n') {
                        write!(out, "{rendered}").map_err(|e| e.to_string())?;
                    } else {
                        writeln!(out, "{rendered}").map_err(|e| e.to_string())?;
                    }
                    break;
                }
                Some("error") => {
                    return Err(format!(
                        "server error: {}",
                        event
                            .get_path("message")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                    ))
                }
                _ => return Err(format!("unexpected event: {event}")),
            }
        }
    }
    Ok(served)
}
