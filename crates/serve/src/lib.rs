//! # ppsim-serve — the persistent experiment service
//!
//! Batch `ppsim` rebuilds its warm state — the on-disk result cache,
//! the compile/trace/checkpoint memos — on every invocation and throws
//! it away at exit. This crate lifts that state into a long-running
//! daemon: `ppsim serve` owns one [`Runner`](ppsim_core::Runner) for
//! its lifetime and answers experiment requests over a newline-
//! delimited JSON protocol (see [`protocol`]); `ppsim submit` is the
//! matching scriptable client (see [`client`]).
//!
//! Three properties define the service (DESIGN.md §8):
//!
//! * **Determinism** — a `result` event's `data` object is a pure
//!   function of the request: byte-identical whether it was simulated
//!   cold, replayed from the disk cache, or coalesced onto another
//!   client's run, and byte-identical to the same experiment run via
//!   the batch CLI (`report` returns `ppsim suite`'s exact stdout).
//! * **Dedup** — concurrent identical requests coalesce onto one
//!   computation (cells by canonical job key, grid ops by op key).
//! * **Bounded state** — the disk cache is size-capped (LRU), the
//!   in-process memos flush at fixed caps, handler threads are bounded
//!   by `--max-clients`, and cold simulations by `--jobs`.

pub mod client;
pub mod protocol;
pub mod server;
pub mod state;

pub use client::{submit, SubmitOptions};
pub use server::{install_sigint_handler, Server};
pub use state::{Counters, ServerState};

use ppsim_core::RunnerOptions;

/// Default listen address (loopback; the protocol has no auth).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7877";

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address.
    pub addr: String,
    /// Maximum concurrent client connections.
    pub max_clients: usize,
    /// Runner configuration (jobs, cache dir, cache size cap). The
    /// cache must be enabled: persistent warm state is the service.
    pub runner: RunnerOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: DEFAULT_ADDR.to_string(),
            max_clients: 64,
            runner: RunnerOptions::default(),
        }
    }
}

impl ServeOptions {
    /// Rejects configurations that cannot serve: no cache, a bad
    /// runner config, or zero clients.
    pub fn validate(&self) -> Result<(), String> {
        self.runner.validate()?;
        if !self.runner.cache {
            return Err("serve requires the result cache (drop --no-cache)".to_string());
        }
        if self.max_clients == 0 {
            return Err("--max-clients must be at least 1".to_string());
        }
        if self.addr.is_empty() {
            return Err("--addr must not be empty".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_validate() {
        assert!(ServeOptions::default().validate().is_ok());
    }

    #[test]
    fn nonsensical_options_are_rejected() {
        let no_cache = ServeOptions {
            runner: RunnerOptions {
                cache: false,
                ..RunnerOptions::default()
            },
            ..ServeOptions::default()
        };
        assert!(no_cache.validate().unwrap_err().contains("cache"));
        let no_clients = ServeOptions {
            max_clients: 0,
            ..ServeOptions::default()
        };
        assert!(no_clients.validate().unwrap_err().contains("max-clients"));
        let no_addr = ServeOptions {
            addr: String::new(),
            ..ServeOptions::default()
        };
        assert!(no_addr.validate().is_err());
    }
}
