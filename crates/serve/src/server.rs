//! The daemon: TCP accept loop, per-connection handlers, graceful
//! shutdown.
//!
//! One OS thread per connection, bounded by `--max-clients` (requests
//! themselves are additionally bounded by the simulation permits and the
//! grid lane in [`ServerState`], so the thread count caps memory while
//! the lanes cap CPU). The accept loop and the read loops are
//! nonblocking-with-timeout so every thread notices the stop flag within
//! a few hundred milliseconds; shutdown then *drains*: the listener
//! closes, in-flight requests finish and stream their terminal events,
//! and `run` joins every handler before returning. Results are flushed
//! to the disk cache the moment they are produced (the cache writes
//! through), so there is no separate flush step to lose.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ppsim_core::Json;

use crate::protocol::{self, Request, MAX_LINE};
use crate::state::{Provenance, ServerState};
use crate::ServeOptions;

/// How often blocked loops re-check the stop flag.
const POLL: Duration = Duration::from_millis(25);
/// Read timeout on client sockets (idle clients re-check the flag at
/// this cadence).
const READ_POLL: Duration = Duration::from_millis(250);

/// Process-wide SIGINT latch: the C handler can only touch a static.
static SIGINT: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigint(_sig: i32) {
    SIGINT.store(true, Ordering::SeqCst);
}

/// Routes SIGINT to the stop flag so ctrl-C drains instead of killing
/// mid-write. Best-effort and idempotent; a no-op off unix.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT_NO: i32 = 2;
        // SAFETY: `signal` with a plain `extern "C" fn(i32)` handler that
        // only stores to an atomic is async-signal-safe; no Rust state is
        // touched from the handler.
        unsafe {
            signal(SIGINT_NO, on_sigint as *const () as usize);
        }
    }
}

/// A bound, not-yet-running daemon. Binding is separate from serving so
/// callers (tests, the CLI) can learn the ephemeral port first.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    max_clients: usize,
}

impl Server {
    /// Binds the listener and builds the warm state.
    pub fn bind(opts: &ServeOptions) -> std::io::Result<Server> {
        opts.validate()
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState::new(opts)),
            max_clients: opts.max_clients,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (tests reach telemetry and counters here).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Serves until SIGINT or a `shutdown` request, then drains: joins
    /// every handler thread before returning the final state.
    pub fn run(self) -> Arc<ServerState> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.state.stopping() {
            if SIGINT.load(Ordering::SeqCst) {
                self.state.request_stop();
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    handlers.retain(|h| !h.is_finished());
                    if handlers.len() >= self.max_clients {
                        self.state.count(|c| c.connections_refused += 1);
                        refuse(stream);
                        continue;
                    }
                    self.state.count(|c| c.connections += 1);
                    let state = Arc::clone(&self.state);
                    handlers.push(std::thread::spawn(move || handle_client(stream, &state)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(_) => std::thread::sleep(POLL),
            }
        }
        drop(self.listener);
        for h in handlers {
            let _ = h.join();
        }
        self.state
    }
}

/// Tells an over-capacity client why it is being dropped.
fn refuse(mut stream: TcpStream) {
    let _ = writeln!(
        stream,
        "{}",
        protocol::error(0, "server at --max-clients capacity")
    );
}

/// Writes one event line; `false` means the client is gone.
fn send(stream: &mut TcpStream, event: &Json) -> bool {
    writeln!(stream, "{event}").is_ok()
}

/// Reads lines and serves requests until the client disconnects, a
/// protocol violation forces a drop, or the server stops. Handler
/// errors never escape to poison shared state: every failure path is an
/// `error` event and/or a clean return.
fn handle_client(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    if !send(&mut stream, &protocol::hello()) {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut next_id: u64 = 0;
    loop {
        // Serve every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            next_id += 1;
            if !serve_line(&mut stream, state, next_id, line) {
                return;
            }
        }
        if buf.len() > MAX_LINE {
            state.count(|c| {
                c.oversized_lines += 1;
                c.errors += 1;
            });
            let msg = format!("request line exceeds {MAX_LINE} bytes; closing connection");
            send(&mut stream, &protocol::error(next_id + 1, &msg));
            return;
        }
        if state.stopping() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Parses and executes one request line, streaming its events. Returns
/// `false` when the connection should close (client gone or shutdown).
fn serve_line(stream: &mut TcpStream, state: &ServerState, id: u64, line: &str) -> bool {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            state.count(|c| c.errors += 1);
            // A malformed line errors *that request only*; the
            // connection and the server state stay usable.
            return send(stream, &protocol::error(id, &e));
        }
    };
    state.count(|c| c.requests += 1);
    let op = request.op();
    let outcome: Result<(String, Provenance), String> = match &request {
        Request::Cell(cell) => {
            let job = cell.job();
            if !send(
                stream,
                &protocol::progress(
                    id,
                    if cell.sample.is_some() {
                        "sampled"
                    } else {
                        "cell"
                    },
                    0,
                    1,
                ),
            ) {
                return false;
            }
            match cell.sample {
                Some(spec) => state.run_cell_sampled(&job, spec),
                None => state.run_cell(&job),
            }
        }
        Request::Fig6a(grid) => state.run_fig6a(grid, progress_cb(stream, id, "fig6a")),
        Request::Report(grid) => state.run_report(grid, progress_cb(stream, id, "report")),
        Request::Sweep(sweep) => state.run_sweep(sweep),
        Request::Check(check) => state.run_check_op(check),
        Request::Stats => Ok((state.stats_json().to_string(), Provenance::Warm)),
        Request::Shutdown => {
            state.request_stop();
            Ok((
                Json::obj().field("stopping", true).to_string(),
                Provenance::Warm,
            ))
        }
    };
    match outcome {
        Ok((data, provenance)) => {
            state.count(|c| c.results += 1);
            // The data text re-parses by construction (it was emitted by
            // our own Json); embed it as a raw object, not a string.
            let data = Json::parse(&data).unwrap_or(Json::Null);
            let event = protocol::result(id, op, provenance.warm(), provenance.coalesced(), data);
            let alive = send(stream, &event);
            alive && !matches!(request, Request::Shutdown)
        }
        Err(e) => {
            state.count(|c| c.errors += 1);
            send(stream, &protocol::error(id, &e))
        }
    }
}

/// A progress callback that streams `progress` events for a grid op.
/// Write failures are swallowed: a vanished client must not abort the
/// shared computation other clients may be coalesced onto.
fn progress_cb<'a>(
    stream: &'a mut TcpStream,
    id: u64,
    stage: &'a str,
) -> impl FnMut(u64, u64) + 'a {
    move |done, total| {
        let _ = writeln!(stream, "{}", protocol::progress(id, stage, done, total));
    }
}
