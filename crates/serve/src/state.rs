//! Persistent server state: the warm runner, the in-flight table, the
//! admission lanes and the service counters.
//!
//! State ownership (DESIGN.md §8): exactly one [`Runner`] lives for the
//! daemon's lifetime and owns every piece of warm state — the on-disk
//! result cache, the compile memo, the per-(binary, budget) trace memo
//! and the per-(binary, window) checkpoint memo. Handler threads never
//! hold state of their own; they borrow `ServerState` and stream events.
//!
//! Scheduling is two-lane so cheap requests never queue behind cold
//! simulations:
//!
//! * **warm lane** — a disk-cache probe ([`Runner::probe`]). Hits are
//!   answered immediately without touching any permit or lock.
//! * **cold lane** — misses enter the [`Inflight`] table (duplicate
//!   concurrent cells coalesce onto one leader) and the leader takes one
//!   simulation permit before running; permits bound concurrent cold
//!   simulations to `--jobs`.
//!
//! Grid ops (`fig6a`, `report`, `sweep`, `check`) parallelize internally
//! through the runner's own pool, so they serialize against each other
//! on a single grid lane and coalesce at op granularity: an identical
//! concurrent grid request joins the running one instead of re-entering
//! the lane.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

use ppsim_check::{run_check, CheckOptions};
use ppsim_core::{experiments, sweep, ExperimentConfig, Job, Json, Runner, SampleSpec};
use ppsim_obs::MetricSet;
use ppsim_runner::Inflight;

use crate::protocol::{CheckRequest, GridRequest, SweepKind, SweepRequest};
use crate::ServeOptions;

/// A counting semaphore (std has none): `acquire` blocks while no
/// permits remain; the returned guard releases on drop.
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    /// A semaphore holding `n` permits (`n >= 1`).
    pub fn new(n: usize) -> Semaphore {
        assert!(n >= 1, "a semaphore needs at least one permit");
        Semaphore {
            permits: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a permit is free, then takes it.
    pub fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut permits = self.permits.lock().unwrap();
        while *permits == 0 {
            permits = self.cv.wait(permits).unwrap();
        }
        *permits -= 1;
        SemaphoreGuard { sem: self }
    }
}

/// Releases its permit on drop.
pub struct SemaphoreGuard<'a> {
    sem: &'a Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        *self.sem.permits.lock().unwrap() += 1;
        self.sem.cv.notify_one();
    }
}

/// Service counters, reported by the `stats` op. Purely observational —
/// nothing here feeds back into result bytes.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused at the `--max-clients` cap.
    pub connections_refused: u64,
    /// Request lines that parsed and dispatched.
    pub requests: u64,
    /// Terminal `result` events sent.
    pub results: u64,
    /// Terminal `error` events sent (parse failures included).
    pub errors: u64,
    /// Lines dropped for exceeding [`crate::protocol::MAX_LINE`].
    pub oversized_lines: u64,
    /// Cell requests answered straight from the disk cache (warm lane).
    pub warm_hits: u64,
    /// Requests that joined another client's in-flight run.
    pub coalesced: u64,
    /// Cell requests that went to the cold lane as leader.
    pub cold_runs: u64,
    /// Grid-shaped ops executed (fig6a/report/sweep/check leaders).
    pub grid_ops: u64,
}

impl Counters {
    /// The counters as a metric registry (uniform JSON rendering).
    pub fn metrics(&self) -> MetricSet {
        let mut m = MetricSet::new();
        m.counter("connections", self.connections);
        m.counter("connections_refused", self.connections_refused);
        m.counter("requests", self.requests);
        m.counter("results", self.results);
        m.counter("errors", self.errors);
        m.counter("oversized_lines", self.oversized_lines);
        m.counter("warm_hits", self.warm_hits);
        m.counter("coalesced", self.coalesced);
        m.counter("cold_runs", self.cold_runs);
        m.counter("grid_ops", self.grid_ops);
        m
    }
}

/// How a request's answer was produced (reported in the `result` event,
/// never inside its `data`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Simulated now, by this request.
    Cold,
    /// Replayed from the disk cache.
    Warm,
    /// Joined another client's in-flight run.
    Coalesced,
}

impl Provenance {
    /// The `warm` flag of the result event.
    pub fn warm(self) -> bool {
        matches!(self, Provenance::Warm)
    }

    /// The `coalesced` flag of the result event.
    pub fn coalesced(self) -> bool {
        matches!(self, Provenance::Coalesced)
    }
}

/// The daemon's shared state (see module docs for the ownership story).
pub struct ServerState {
    /// The warm runner. Public to the crate so tests can reach
    /// telemetry; handlers use the op methods below.
    pub runner: Runner,
    /// Cold-lane coalescing: one flight per canonical cell, holding the
    /// rendered result `data` text.
    cells: Inflight<String, String>,
    /// Op-level coalescing for grid-shaped requests.
    grids: Inflight<String, String>,
    /// Cold-simulation permits (`--jobs` of them).
    sim_permits: Semaphore,
    /// Grid lane: serializes grid ops against each other.
    grid_lane: Mutex<()>,
    /// Set by SIGINT or a `shutdown` request; the accept loop and the
    /// handlers poll it.
    pub stop: AtomicBool,
    counters: Mutex<Counters>,
    jobs: usize,
}

impl ServerState {
    /// Builds the state from validated options (the runner opens the
    /// cache; serve requires one, since warm state is the point).
    pub fn new(opts: &ServeOptions) -> ServerState {
        let effective_jobs = if opts.runner.jobs > 0 {
            opts.runner.jobs
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        ServerState {
            runner: Runner::new(opts.runner.clone()),
            cells: Inflight::new(),
            grids: Inflight::new(),
            sim_permits: Semaphore::new(effective_jobs),
            grid_lane: Mutex::new(()),
            stop: AtomicBool::new(false),
            counters: Mutex::new(Counters::default()),
            jobs: effective_jobs,
        }
    }

    /// Whether shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests shutdown (idempotent).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Runs `f` over the counters under the lock.
    pub fn count(&self, f: impl FnOnce(&mut Counters)) {
        f(&mut self.counters.lock().unwrap());
    }

    /// A snapshot of the counters.
    pub fn counters(&self) -> Counters {
        self.counters.lock().unwrap().clone()
    }

    /// Renders one full cell result — the deterministic `data` payload.
    fn render_cell(&self, job: &Job, r: &ppsim_runner::JobResult) -> String {
        Json::obj()
            .field("key", job.hash_hex().as_str())
            .field("label", job.label().as_str())
            .field("static_insns", r.static_insns)
            .field("static_cond_branches", r.static_cond_branches)
            .field("stats", r.stats.metrics().to_json())
            .to_string()
    }

    /// Answers a cell request: warm lane (cache probe, no permit), then
    /// cold lane (coalesced, permit-bounded). Returns the rendered
    /// `data` text plus how it was produced. `Err` only if a coalesced
    /// leader panicked.
    pub fn run_cell(&self, job: &Job) -> Result<(String, Provenance), String> {
        if let Some(hit) = self.runner.probe(job) {
            self.count(|c| c.warm_hits += 1);
            return Ok((self.render_cell(job, &hit), Provenance::Warm));
        }
        let (outcome, led) = self.cells.run(job.canon(), || {
            let _permit = self.sim_permits.acquire();
            // run_job re-probes the cache first, so a leader that waited
            // out a just-finished flight replays instead of simulating.
            let r = self.runner.run_job(job);
            self.render_cell(job, &r)
        });
        self.count(|c| {
            if led {
                c.cold_runs += 1;
            } else {
                c.coalesced += 1;
            }
        });
        let provenance = if led {
            Provenance::Cold
        } else {
            Provenance::Coalesced
        };
        Ok((outcome?, provenance))
    }

    /// A sampled cell: always the cold lane (per-window results are
    /// cached inside the runner; the aggregate is cheap to rebuild).
    pub fn run_cell_sampled(
        &self,
        job: &Job,
        spec: SampleSpec,
    ) -> Result<(String, Provenance), String> {
        let key = format!("sampled|{}|{}", spec.canon(), job.canon());
        let (outcome, led) = self.cells.run(key, || {
            let _permit = self.sim_permits.acquire();
            let s = self.runner.run_job_sampled(job, spec);
            let mut data = Json::obj()
                .field("key", job.hash_hex().as_str())
                .field("label", job.label().as_str())
                .field("sample", spec.canon().as_str())
                .field("static_insns", s.aggregate.static_insns)
                .field("static_cond_branches", s.aggregate.static_cond_branches)
                .field("stats", s.aggregate.stats.metrics().to_json());
            data = data.field(
                "windows",
                Json::Arr(
                    s.samples
                        .iter()
                        .map(|w| w.stats.metrics().to_json())
                        .collect(),
                ),
            );
            data.to_string()
        });
        self.count(|c| {
            if led {
                c.cold_runs += 1;
            } else {
                c.coalesced += 1;
            }
        });
        let provenance = if led {
            Provenance::Cold
        } else {
            Provenance::Coalesced
        };
        Ok((outcome?, provenance))
    }

    /// Runs a grid-shaped op under the grid lane with op-level
    /// coalescing. `render` executes with the lane held; progress
    /// streaming happens inside it (the leader owns the connection that
    /// asked first).
    fn run_grid_op<F: FnOnce() -> String>(
        &self,
        key: String,
        render: F,
    ) -> Result<(String, Provenance), String> {
        let (outcome, led) = self.grids.run(key, || {
            let _lane = self.grid_lane.lock().unwrap();
            render()
        });
        self.count(|c| {
            if led {
                c.grid_ops += 1;
            } else {
                c.coalesced += 1;
            }
        });
        let provenance = if led {
            Provenance::Cold
        } else {
            Provenance::Coalesced
        };
        Ok((outcome?, provenance))
    }

    /// Prewarms `jobs` through the runner in chunks, reporting
    /// completion counts to `progress` — so a grid op streams progress
    /// while still rendering its final answer from uniform warm state.
    fn prewarm(&self, cfg: &ExperimentConfig, jobs: &[Job], mut progress: impl FnMut(u64, u64)) {
        let total = jobs.len() as u64;
        let chunk = self.jobs.max(1);
        let mut done = 0u64;
        progress(0, total);
        for batch in jobs.chunks(chunk) {
            match cfg.sample {
                Some(spec) => {
                    self.runner.run_grid_sampled(batch, spec);
                }
                None => {
                    self.runner.run_grid(batch);
                }
            }
            done += batch.len() as u64;
            progress(done, total);
        }
    }

    /// The `fig6a` op: prewarm the grid, then render the comparison
    /// JSON (identical bytes to the batch `fig6a` artifact).
    pub fn run_fig6a(
        &self,
        req: &GridRequest,
        progress: impl FnMut(u64, u64),
    ) -> Result<(String, Provenance), String> {
        let cfg = req.config();
        self.run_grid_op(format!("fig6a|{}", req.canon()), move || {
            let jobs = experiments::plan(&cfg, experiments::PlanSpec::Fig6a);
            self.prewarm(&cfg, &jobs, progress);
            let results = experiments::PlanResults::collect(&self.runner, &cfg, &jobs);
            results.fig6a(&cfg).to_json().to_string()
        })
    }

    /// The `report` op: prewarm every suite job, then render the
    /// consolidated report. `data.text` is byte-identical to `ppsim
    /// suite` stdout for the same configuration; `data.json` is the
    /// `--json` artifact's deterministic `data` object.
    pub fn run_report(
        &self,
        req: &GridRequest,
        progress: impl FnMut(u64, u64),
    ) -> Result<(String, Provenance), String> {
        let cfg = req.config();
        self.run_grid_op(format!("report|{}", req.canon()), move || {
            let jobs = experiments::plan(&cfg, experiments::PlanSpec::FullReport);
            self.prewarm(&cfg, &jobs, progress);
            // One collection serves both renderings — the text body and
            // the JSON artifact assemble from the same simulations.
            let results = experiments::PlanResults::collect(&self.runner, &cfg, &jobs);
            Json::obj()
                .field("text", results.report_text(&cfg).as_str())
                .field("json", results.report_json(&cfg))
                .to_string()
        })
    }

    /// The `sweep` op.
    pub fn run_sweep(&self, req: &SweepRequest) -> Result<(String, Provenance), String> {
        let cfg = req.grid.config();
        let kind = req.kind;
        let ifconv = req.ifconv;
        let key = format!(
            "sweep|{}|ifconv={}|{}",
            kind.name(),
            ifconv,
            req.grid.canon()
        );
        self.run_grid_op(key, move || match kind {
            SweepKind::Size => sweep::size_sweep(&self.runner, &cfg, ifconv)
                .to_json()
                .to_string(),
            SweepKind::History => sweep::history_sweep(&self.runner, &cfg, ifconv)
                .to_json()
                .to_string(),
            SweepKind::Threshold => {
                sweep::threshold_json(&sweep::threshold_sweep(&self.runner, &cfg)).to_string()
            }
        })
    }

    /// The `check` op: a differential-cosimulation sweep sharing the
    /// server's cache directory and job budget.
    pub fn run_check_op(&self, req: &CheckRequest) -> Result<(String, Provenance), String> {
        let opts = CheckOptions {
            seed: req.seed,
            iters: req.iters,
            jobs: self.jobs,
            cache_dir: self.runner.cache().map(|c| c.dir().join("check")),
            dump_dir: None,
            sample_epsilon: req.sample_epsilon,
            ..CheckOptions::default()
        };
        let key = format!(
            "check|seed={}|iters={}|eps={:?}",
            req.seed, req.iters, req.sample_epsilon
        );
        self.run_grid_op(key, move || {
            let report = run_check(&opts);
            Json::obj()
                .field("passed", report.passed())
                .field("findings", report.findings.len())
                .field("summary", report.summary().as_str())
                .to_string()
        })
    }

    /// The `stats` op: server counters + runner telemetry + cache
    /// usage. Deliberately *not* deterministic — it describes execution,
    /// not experiments.
    pub fn stats_json(&self) -> Json {
        let cache = match self.runner.cache() {
            Some(c) => {
                let usage = c.usage();
                Json::obj()
                    .field("entries", usage.entries)
                    .field("bytes", usage.bytes)
                    .field("evictions", c.evictions())
            }
            None => Json::Null,
        };
        Json::obj()
            .field("server", self.counters().metrics().to_json())
            .field("telemetry", self.runner.telemetry().to_json())
            .field("cache", cache)
    }
}
