//! Synthetic SPEC2000-like workloads.
//!
//! The paper evaluates 22 SPEC2000 benchmarks (11 integer, 11 floating
//! point) compiled for IA-64 with MinneSpec inputs. We cannot run those
//! binaries, so this module generates, per benchmark name, a deterministic
//! synthetic program whose *branch population* spans the behavioural
//! regimes the paper's mechanisms interact with:
//!
//! * **biased** branches (data-driven, 60–98% one direction),
//! * **data-dependent random** branches (hard to predict, the prime
//!   if-conversion targets),
//! * **correlated families** (the paper's Figure 1: a region branch whose
//!   outcome is a boolean function of nearby conditions — when
//!   if-conversion removes the feeder branches, only a predictor that sees
//!   *compare* outcomes keeps the correlation),
//! * **periodic** branches (local-history fodder),
//! * **inner loops** (highly predictable latch branches),
//! * **floating-point streams** (few, biased branches, long latency ops —
//!   the low-misprediction FP profile of Figure 5).
//!
//! Every workload is a single outer loop whose body chains kernel
//! instances; data arrays are filled from a per-benchmark seeded
//! [`SmallRng`] stream, so everything is reproducible.

use crate::rng::SmallRng;

use ppsim_isa::{AluKind, CmpRel, DataSegment, FpuKind, Fr, Gr, Operand};

use crate::ir::{BlockId, Cfg, Cond, GuardedOp, MirOp, Module, Terminator};

/// Integer or floating-point benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadClass {
    /// SPECint-like.
    Int,
    /// SPECfp-like.
    Fp,
}

/// One kernel instance in a workload body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelKind {
    /// A diamond guarded by `data[i] % 100 < pct` (bias `pct`%).
    Biased {
        /// Percent taken.
        pct: u8,
    },
    /// A diamond guarded by a uniformly random data bit (hard to predict).
    ///
    /// With `carried` set, the condition operand is loaded during the
    /// *previous* iteration, so the compare executes immediately after
    /// rename — the raw material for the paper's early-resolved branches
    /// (combine with a large `filler`). Without it, the operand comes from
    /// a same-iteration load and the branch must be predicted.
    Random {
        /// Loop-carried condition operand.
        carried: bool,
    },
    /// The Figure-1 family: two random feeder diamonds plus a region
    /// triangle whose condition is the AND of the feeders' conditions.
    /// Feeder operands are loop-carried so the feeder compares resolve
    /// (and repair their history bits) before the region compare fetches:
    /// removing the feeder *branches* leaves the correlation recoverable
    /// only through compare-outcome history.
    Correlated,
    /// A triangle taken every `period`-th iteration.
    Periodic {
        /// Period in iterations (≥ 2).
        period: u8,
    },
    /// A counted inner loop with a predictable latch.
    InnerLoop {
        /// Inner trip count.
        trips: u8,
    },
    /// A hard-to-predict triangle whose then-side is too large for
    /// if-conversion (rejected by the size gate) and whose loop-carried
    /// condition operand lets the compare execute long before the branch
    /// renames: the branch *survives* in if-converted binaries and is
    /// early-resolved under the predicate scheme — the paper's Figure 6b
    /// early-resolved population.
    HardRegion,
    /// A floating-point stream: loads, multiply/add chain, store, and a
    /// strongly biased `fcmp` guard.
    FpStream {
        /// Percent taken for the guard (use ≥ 90 for FP-like codes).
        pct: u8,
    },
}

/// A kernel with its scheduling context.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelSpec {
    /// What to generate.
    pub kind: KernelKind,
    /// Independent ALU filler emitted between the condition sources and the
    /// branch — raw material for compare hoisting (early resolution).
    pub filler: u8,
}

/// A complete benchmark description.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Benchmark name (SPEC2000-style).
    pub name: &'static str,
    /// Integer or floating point.
    pub class: WorkloadClass,
    /// Seed for data generation.
    pub seed: u64,
    /// Outer-loop trip count (set high; runs are bounded by instruction
    /// budget).
    pub trips: i64,
    /// Words per data array (rounded up to a power of two).
    pub array_words: usize,
    /// The body.
    pub kernels: Vec<KernelSpec>,
}

const DATA_BASE: u64 = 0x1000_0000;

/// Loop counter register (`r1`).
#[allow(non_snake_case)]
fn R_ITER() -> Gr {
    Gr::new(1)
}
/// Integer accumulator (`r100`).
#[allow(non_snake_case)]
fn R_ACC() -> Gr {
    Gr::new(100)
}
/// Result-store base register (`r101`).
#[allow(non_snake_case)]
fn R_OUT() -> Gr {
    Gr::new(101)
}
/// Float accumulator (`f100`).
#[allow(non_snake_case)]
fn F_ACC() -> Fr {
    Fr::new(100)
}

/// CFG-building context for one workload.
struct Gen {
    cfg: Cfg,
    data: Vec<DataSegment>,
    rng: SmallRng,
    cur: BlockId,
    next_addr: u64,
    tmp_base: u8,
    tmp_next: u8,
    next_persistent: u8,
    array_words: usize,
}

impl Gen {
    fn new(spec: &WorkloadSpec) -> Self {
        let mut cfg = Cfg::new();
        let entry = cfg.new_block();
        Gen {
            cfg,
            data: Vec::new(),
            rng: SmallRng::seed_from_u64(spec.seed),
            cur: entry,
            next_addr: DATA_BASE,
            tmp_base: 8,
            tmp_next: 8,
            next_persistent: 102,
            array_words: spec.array_words.next_power_of_two(),
        }
    }

    /// Rotates to a fresh window of temporaries (per kernel instance).
    fn fresh_window(&mut self) {
        self.tmp_base = if self.tmp_base + 16 > 96 {
            8
        } else {
            self.tmp_base + 8
        };
        self.tmp_next = self.tmp_base;
    }

    /// Allocates a loop-persistent register (carried across iterations).
    fn persistent(&mut self) -> Gr {
        let r = Gr::new(self.next_persistent);
        self.next_persistent += 1;
        assert!(self.next_persistent <= 127, "too many loop-carried kernels");
        r
    }

    /// Allocates a temporary register within the current window.
    fn t(&mut self) -> Gr {
        let r = Gr::new(self.tmp_next);
        self.tmp_next += 1;
        assert!(
            self.tmp_next <= self.tmp_base + 8,
            "kernel needs too many temps"
        );
        r
    }

    fn op(&mut self, op: MirOp) {
        self.cfg.block_mut(self.cur).ops.push(GuardedOp::new(op));
    }

    fn alu(&mut self, kind: AluKind, dst: Gr, src1: Gr, src2: impl Into<Operand>) {
        self.op(MirOp::Alu {
            kind,
            dst,
            src1,
            src2: src2.into(),
        });
    }

    /// Reserves an integer array initialized by `f(index, rng)`.
    fn array_i64(&mut self, mut f: impl FnMut(usize, &mut SmallRng) -> i64) -> u64 {
        let addr = self.next_addr;
        let words: Vec<i64> = (0..self.array_words).map(|i| f(i, &mut self.rng)).collect();
        self.data.push(DataSegment::from_words(addr, &words));
        self.next_addr += (self.array_words * 8) as u64 + 64;
        addr
    }

    /// Reserves a float array.
    fn array_f64(&mut self, mut f: impl FnMut(usize, &mut SmallRng) -> f64) -> u64 {
        let addr = self.next_addr;
        let words: Vec<f64> = (0..self.array_words).map(|i| f(i, &mut self.rng)).collect();
        self.data.push(DataSegment::from_f64s(addr, &words));
        self.next_addr += (self.array_words * 8) as u64 + 64;
        addr
    }

    /// Emits `dst = mem[array + ((R_ITER() + phase) & mask) * 8]`.
    fn load_indexed(&mut self, array: u64, phase: i64, dst: Gr) {
        let idx = self.t();
        let base = self.t();
        self.alu(AluKind::Add, idx, R_ITER(), phase);
        self.alu(AluKind::And, idx, idx, (self.array_words - 1) as i64);
        self.alu(AluKind::Shl, idx, idx, 3i64);
        self.op(MirOp::Movi {
            dst: base,
            imm: array as i64,
        });
        self.alu(AluKind::Add, base, base, Operand::Reg(idx));
        self.op(MirOp::Load {
            dst,
            base,
            offset: 0,
        });
    }

    /// Emits `filler` single-cycle ops spread over four scratch
    /// accumulators (r96..r99), so the filler has instruction-level
    /// parallelism like real code instead of one serial chain.
    fn filler(&mut self, n: u8) {
        for k in 0..n {
            let dst = Gr::new(96 + k % 4);
            self.alu(AluKind::Add, dst, dst, i64::from(k) + 1);
        }
    }

    /// Appends a diamond `if cond { then_ops } else { else_ops }` and moves
    /// the cursor to the join block.
    fn diamond(&mut self, cond: Cond, then_ops: Vec<MirOp>, else_ops: Vec<MirOp>) {
        let t = self.cfg.new_block();
        let f = self.cfg.new_block();
        let j = self.cfg.new_block();
        self.cfg.block_mut(self.cur).term = Terminator::CondBranch {
            cond,
            then_bb: t,
            else_bb: f,
        };
        let tb = self.cfg.block_mut(t);
        tb.ops.extend(then_ops.into_iter().map(GuardedOp::new));
        tb.term = Terminator::Jump(j);
        let fb = self.cfg.block_mut(f);
        fb.ops.extend(else_ops.into_iter().map(GuardedOp::new));
        fb.term = Terminator::Jump(j);
        self.cur = j;
    }

    /// Appends a triangle `if cond { then_ops }` and moves to the join.
    fn triangle(&mut self, cond: Cond, then_ops: Vec<MirOp>) {
        let t = self.cfg.new_block();
        let j = self.cfg.new_block();
        self.cfg.block_mut(self.cur).term = Terminator::CondBranch {
            cond,
            then_bb: t,
            else_bb: j,
        };
        let tb = self.cfg.block_mut(t);
        tb.ops.extend(then_ops.into_iter().map(GuardedOp::new));
        tb.term = Terminator::Jump(j);
        self.cur = j;
    }

    fn emit_kernel(&mut self, k: &KernelSpec) {
        self.fresh_window();
        match k.kind {
            KernelKind::Biased { pct } => {
                let arr = self.array_i64(|_, rng| rng.range_i64(0, 100));
                let d = self.t();
                let r = self.t();
                let x = self.t();
                let y = self.t();
                self.load_indexed(arr, 0, d);
                self.filler(k.filler);
                // Meaty sides: with if-conversion these become predicated
                // work that selective predicate prediction can cancel.
                let then_ops = vec![
                    MirOp::Movi { dst: r, imm: 1 },
                    MirOp::Alu {
                        kind: AluKind::Add,
                        dst: x,
                        src1: d,
                        src2: Operand::Imm(3),
                    },
                    MirOp::Alu {
                        kind: AluKind::Shl,
                        dst: x,
                        src1: x,
                        src2: Operand::Imm(2),
                    },
                    MirOp::Alu {
                        kind: AluKind::Add,
                        dst: y,
                        src1: d,
                        src2: Operand::Imm(7),
                    },
                    MirOp::Alu {
                        kind: AluKind::Xor,
                        dst: y,
                        src1: y,
                        src2: Operand::Reg(x),
                    },
                    MirOp::Alu {
                        kind: AluKind::Add,
                        dst: R_ACC(),
                        src1: R_ACC(),
                        src2: Operand::Reg(y),
                    },
                ];
                let else_ops = vec![
                    MirOp::Movi { dst: r, imm: 3 },
                    MirOp::Alu {
                        kind: AluKind::Sub,
                        dst: x,
                        src1: d,
                        src2: Operand::Imm(11),
                    },
                    MirOp::Alu {
                        kind: AluKind::Shr,
                        dst: x,
                        src1: x,
                        src2: Operand::Imm(1),
                    },
                    MirOp::Alu {
                        kind: AluKind::Xor,
                        dst: R_ACC(),
                        src1: R_ACC(),
                        src2: Operand::Reg(x),
                    },
                ];
                self.diamond(
                    Cond::Int {
                        rel: CmpRel::Lt,
                        src1: d,
                        src2: Operand::Imm(i64::from(pct)),
                    },
                    then_ops,
                    else_ops,
                );
                self.alu(AluKind::Add, R_ACC(), R_ACC(), Operand::Reg(r));
            }
            KernelKind::Random { carried } => {
                let arr = self.array_i64(|_, rng| rng.gen_i64() & 0x7fff_ffff);
                let b = self.t();
                let r = self.t();
                let d = if carried {
                    // Condition operand loaded last iteration: the compare
                    // can execute as soon as it renames.
                    self.persistent()
                } else {
                    let d = self.t();
                    self.load_indexed(arr, 0, d);
                    d
                };
                self.alu(AluKind::And, b, d, 1i64);
                self.filler(k.filler);
                self.diamond(
                    Cond::Int {
                        rel: CmpRel::Ne,
                        src1: b,
                        src2: Operand::Imm(0),
                    },
                    vec![
                        MirOp::Movi { dst: r, imm: 0 },
                        MirOp::Alu {
                            kind: AluKind::Add,
                            dst: R_ACC(),
                            src1: R_ACC(),
                            src2: Operand::Imm(5),
                        },
                    ],
                    vec![
                        MirOp::Movi { dst: r, imm: 1 },
                        MirOp::Alu {
                            kind: AluKind::Sub,
                            dst: R_ACC(),
                            src1: R_ACC(),
                            src2: Operand::Imm(3),
                        },
                    ],
                );
                // Keep `r` live so the multiple-definition case matters.
                self.alu(AluKind::Add, R_ACC(), R_ACC(), Operand::Reg(r));
                if carried {
                    // Prefetch next iteration's condition operand.
                    self.load_indexed(arr, 1, d);
                }
            }
            KernelKind::Correlated => {
                // Figure-1 family. The feeder operand is loop-carried so
                // both feeder compares execute right after rename; their
                // (frequently wrong) history bits are repaired at
                // writeback, before the region compare fetches.
                let arr = self.array_i64(|_, rng| rng.gen_i64() & 0x7fff_ffff);
                let d = self.persistent();
                let b0 = self.t();
                let b1 = self.t();
                let r = self.t();
                let s = self.t();
                let u = self.t();
                self.alu(AluKind::And, b0, d, 1i64);
                self.alu(AluKind::And, b1, d, 2i64);
                self.diamond(
                    Cond::Int {
                        rel: CmpRel::Ne,
                        src1: b0,
                        src2: Operand::Imm(0),
                    },
                    vec![MirOp::Movi { dst: r, imm: 1 }],
                    vec![MirOp::Movi { dst: r, imm: 0 }],
                );
                self.diamond(
                    Cond::Int {
                        rel: CmpRel::Ne,
                        src1: b1,
                        src2: Operand::Imm(0),
                    },
                    vec![MirOp::Movi { dst: s, imm: 1 }],
                    vec![MirOp::Movi { dst: s, imm: 0 }],
                );
                // Spacing: give the feeder compares time to execute and
                // repair their history bits before the region compare is
                // fetched. Fetch covers ~6 slots/cycle and a feeder takes
                // ~6-8 cycles from fetch to writeback (plus rename
                // backpressure), so leave ≥ 72 slots.
                self.filler(k.filler.saturating_mul(6).max(72));
                self.alu(AluKind::Add, u, r, Operand::Reg(s));
                // The region branch: outcome = AND of the two feeder
                // conditions — linearly separable on their history bits.
                self.triangle(
                    Cond::Int {
                        rel: CmpRel::Ge,
                        src1: u,
                        src2: Operand::Imm(2),
                    },
                    vec![MirOp::Alu {
                        kind: AluKind::Add,
                        dst: R_ACC(),
                        src1: R_ACC(),
                        src2: Operand::Imm(17),
                    }],
                );
                self.load_indexed(arr, 1, d);
            }
            KernelKind::Periodic { period } => {
                let p = i64::from(period.max(2));
                let m = self.t();
                let q = self.t();
                // m = i - (i / p) * p  via repeated masking is awkward
                // without div; use i & (p-1) when p is a power of two,
                // otherwise a multiplicative trick on a precomputed
                // counter array.
                if p.count_ones() == 1 {
                    self.alu(AluKind::And, m, R_ITER(), p - 1);
                } else {
                    // Precompute (i % p) in a data array.
                    let pp = p;
                    let arr = self.array_i64(move |i, _| (i as i64) % pp);
                    self.load_indexed(arr, 0, m);
                }
                self.filler(k.filler);
                let _ = q;
                self.triangle(
                    Cond::Int {
                        rel: CmpRel::Eq,
                        src1: m,
                        src2: Operand::Imm(0),
                    },
                    vec![MirOp::Alu {
                        kind: AluKind::Add,
                        dst: R_ACC(),
                        src1: R_ACC(),
                        src2: Operand::Imm(2),
                    }],
                );
            }
            KernelKind::InnerLoop { trips } => {
                let j = self.t();
                self.op(MirOp::Movi { dst: j, imm: 0 });
                let header = self.cfg.new_block();
                let exit = self.cfg.new_block();
                self.cfg.block_mut(self.cur).term = Terminator::Jump(header);
                let hb = self.cfg.block_mut(header);
                hb.ops.push(GuardedOp::new(MirOp::Alu {
                    kind: AluKind::Add,
                    dst: R_ACC(),
                    src1: R_ACC(),
                    src2: Operand::Reg(j),
                }));
                hb.ops.push(GuardedOp::new(MirOp::Alu {
                    kind: AluKind::Add,
                    dst: j,
                    src1: j,
                    src2: Operand::Imm(1),
                }));
                hb.term = Terminator::CondBranch {
                    cond: Cond::Int {
                        rel: CmpRel::Lt,
                        src1: j,
                        src2: Operand::Imm(i64::from(trips.max(1))),
                    },
                    then_bb: header,
                    else_bb: exit,
                };
                self.cur = exit;
            }
            KernelKind::HardRegion => {
                let arr = self.array_i64(|_, rng| rng.gen_i64() & 0x7fff_ffff);
                let d = self.persistent();
                let b = self.t();
                self.alu(AluKind::And, b, d, 1i64);
                // Early-resolution spacing between the compare and the
                // branch.
                self.filler(k.filler.max(48));
                // A then-side too fat for the if-converter's size gate.
                let mut then_ops = Vec::new();
                let w = self.t();
                then_ops.push(MirOp::Movi { dst: w, imm: 5 });
                for j in 0..27 {
                    let dst = Gr::new(96 + (j % 4) as u8);
                    then_ops.push(MirOp::Alu {
                        kind: AluKind::Add,
                        dst,
                        src1: dst,
                        src2: Operand::Reg(w),
                    });
                }
                self.triangle(
                    Cond::Int {
                        rel: CmpRel::Ne,
                        src1: b,
                        src2: Operand::Imm(0),
                    },
                    then_ops,
                );
                self.load_indexed(arr, 1, d);
            }
            KernelKind::FpStream { pct } => {
                let arr_a = self.array_f64(|_, rng| rng.range_f64(0.5, 1.5));
                let arr_b = self.array_f64(|_, rng| rng.range_f64(0.5, 1.5));
                let thresh = self.array_i64(|_, rng| rng.range_i64(0, 100));
                let ta = self.t();
                let tb = self.t();
                let d = self.t();
                let (fa, fb, fc) = (Fr::new(8), Fr::new(9), Fr::new(10));
                self.load_indexed(thresh, 0, d);
                self.alu(AluKind::Shl, ta, R_ITER(), 3i64);
                self.alu(AluKind::And, ta, ta, ((self.array_words - 1) * 8) as i64);
                self.op(MirOp::Movi {
                    dst: tb,
                    imm: arr_a as i64,
                });
                self.alu(AluKind::Add, tb, tb, Operand::Reg(ta));
                self.op(MirOp::Loadf {
                    dst: fa,
                    base: tb,
                    offset: 0,
                });
                self.op(MirOp::Movi {
                    dst: tb,
                    imm: arr_b as i64,
                });
                self.alu(AluKind::Add, tb, tb, Operand::Reg(ta));
                self.op(MirOp::Loadf {
                    dst: fb,
                    base: tb,
                    offset: 0,
                });
                self.op(MirOp::Fpu {
                    kind: FpuKind::Fmul,
                    dst: fc,
                    src1: fa,
                    src2: fb,
                });
                self.op(MirOp::Fpu {
                    kind: FpuKind::Fadd,
                    dst: F_ACC(),
                    src1: F_ACC(),
                    src2: fc,
                });
                self.filler(k.filler);
                self.triangle(
                    Cond::Int {
                        rel: CmpRel::Lt,
                        src1: d,
                        src2: Operand::Imm(i64::from(pct)),
                    },
                    vec![MirOp::Fpu {
                        kind: FpuKind::Fadd,
                        dst: F_ACC(),
                        src1: F_ACC(),
                        src2: fa,
                    }],
                );
                self.op(MirOp::Storef {
                    src: F_ACC(),
                    base: tb,
                    offset: 0,
                });
            }
        }
    }
}

/// Builds the [`Module`] for a workload specification.
pub fn build_module(spec: &WorkloadSpec) -> Module {
    let mut g = Gen::new(spec);

    // Entry: zero the counter and accumulators, set up the output buffer.
    let out_buf = g.array_i64(|_, _| 0);
    g.op(MirOp::Movi {
        dst: R_ITER(),
        imm: 0,
    });
    g.op(MirOp::Movi {
        dst: R_ACC(),
        imm: 0,
    });
    g.op(MirOp::Movi {
        dst: R_OUT(),
        imm: out_buf as i64,
    });
    let header = g.cfg.new_block();
    g.cfg.block_mut(g.cur).term = Terminator::Jump(header);
    g.cur = header;

    for k in &spec.kernels {
        g.emit_kernel(k);
    }

    // Latch: spill the accumulator, bump the counter, loop.
    g.fresh_window();
    let slot = g.t();
    g.alu(AluKind::And, slot, R_ITER(), (g.array_words - 1) as i64);
    g.alu(AluKind::Shl, slot, slot, 3i64);
    g.alu(AluKind::Add, slot, slot, Operand::Reg(R_OUT()));
    g.op(MirOp::Store {
        src: R_ACC(),
        base: slot,
        offset: 0,
    });
    g.alu(AluKind::Add, R_ITER(), R_ITER(), 1i64);
    let exit = g.cfg.new_block();
    g.cfg.block_mut(g.cur).term = Terminator::CondBranch {
        cond: Cond::Int {
            rel: CmpRel::Lt,
            src1: R_ITER(),
            src2: Operand::Imm(spec.trips),
        },
        then_bb: header,
        else_bb: exit,
    };
    // exit: halt (the default terminator).

    Module {
        cfg: g.cfg,
        data: g.data,
        gr_init: Vec::new(),
        fr_init: Vec::new(),
    }
}

fn k(kind: KernelKind, filler: u8) -> KernelSpec {
    KernelSpec { kind, filler }
}

/// The 22-benchmark suite (11 integer + 11 floating point), mirroring the
/// SPEC2000 names the paper reports.
///
/// Per-benchmark flavour (branchiness, correlation fraction, footprint) is
/// chosen so the suite spans the paper's regimes: control-heavy integer
/// codes with hard branches, correlation-rich codes that profit most from
/// the predicate predictor, and loopy low-misprediction FP codes. `twolf`
/// is deliberately built with many marginal branch sites and little
/// correlation — the configuration most exposed to the predicate
/// predictor's negative effects (extra aliasing from two hash functions),
/// mirroring its role as the paper's one exception in Figure 6.
pub fn spec2000_suite() -> Vec<WorkloadSpec> {
    use KernelKind::*;
    let int = |name: &'static str, seed: u64, array_words: usize, kernels: Vec<KernelSpec>| {
        WorkloadSpec {
            name,
            class: WorkloadClass::Int,
            seed,
            trips: i64::MAX / 2,
            array_words,
            kernels,
        }
    };
    let fp = |name: &'static str, seed: u64, array_words: usize, kernels: Vec<KernelSpec>| {
        WorkloadSpec {
            name,
            class: WorkloadClass::Fp,
            seed,
            trips: i64::MAX / 2,
            array_words,
            kernels,
        }
    };
    vec![
        // ---- integer ----
        int(
            "gzip",
            0x67a1,
            1024,
            vec![
                k(Biased { pct: 85 }, 6),
                k(Random { carried: true }, 48),
                k(Periodic { period: 4 }, 4),
                k(Correlated, 8),
                k(InnerLoop { trips: 8 }, 0),
            ],
        ),
        int(
            "vpr",
            0x76b2,
            2048,
            vec![
                k(Biased { pct: 70 }, 4),
                k(Correlated, 10),
                k(Random { carried: false }, 8),
                k(Biased { pct: 92 }, 6),
                k(Periodic { period: 3 }, 4),
                k(InnerLoop { trips: 6 }, 0),
            ],
        ),
        int(
            "gcc",
            0x6cc3,
            1024,
            vec![
                k(Biased { pct: 60 }, 3),
                k(Biased { pct: 88 }, 5),
                k(Correlated, 6),
                k(Correlated, 8),
                k(Random { carried: true }, 36),
                k(Periodic { period: 8 }, 3),
                k(InnerLoop { trips: 4 }, 0),
            ],
        ),
        int(
            "mcf",
            0x3cf4,
            65536,
            vec![
                k(Random { carried: false }, 14),
                k(Biased { pct: 75 }, 8),
                k(Correlated, 10),
                k(HardRegion, 60),
                k(InnerLoop { trips: 4 }, 0),
            ],
        ),
        int(
            "crafty",
            0xc4a5,
            2048,
            vec![
                k(Correlated, 8),
                k(Correlated, 6),
                k(Biased { pct: 80 }, 5),
                k(HardRegion, 48),
                k(Periodic { period: 2 }, 3),
                k(InnerLoop { trips: 8 }, 0),
            ],
        ),
        int(
            "parser",
            0x9a56,
            1024,
            vec![
                k(Biased { pct: 65 }, 4),
                k(Correlated, 8),
                k(Random { carried: false }, 10),
                k(Periodic { period: 5 }, 4),
                k(Biased { pct: 95 }, 3),
                k(InnerLoop { trips: 5 }, 0),
            ],
        ),
        int(
            "perlbmk",
            0x9e67,
            1024,
            vec![
                k(Correlated, 6),
                k(Biased { pct: 72 }, 5),
                k(HardRegion, 40),
                k(InnerLoop { trips: 5 }, 0),
                k(Periodic { period: 4 }, 5),
                k(Biased { pct: 90 }, 4),
            ],
        ),
        int(
            "gap",
            0x6a78,
            4096,
            vec![
                k(Biased { pct: 82 }, 6),
                k(Correlated, 10),
                k(Random { carried: false }, 10),
                k(InnerLoop { trips: 10 }, 0),
            ],
        ),
        int(
            "vortex",
            0x50f9,
            2048,
            vec![
                k(Biased { pct: 93 }, 4),
                k(Biased { pct: 88 }, 4),
                k(Correlated, 6),
                k(Periodic { period: 8 }, 4),
                k(HardRegion, 44),
                k(InnerLoop { trips: 3 }, 0),
            ],
        ),
        int(
            "bzip2",
            0xb21a,
            8192,
            vec![
                k(Random { carried: false }, 12),
                k(Biased { pct: 78 }, 6),
                k(Correlated, 8),
                k(Periodic { period: 2 }, 4),
                k(InnerLoop { trips: 4 }, 0),
            ],
        ),
        // Many marginal sites, no loop-carried conditions, no correlation:
        // the configuration most exposed to the predicate predictor's
        // negative effects (two-hash aliasing + corruption window) —
        // mirroring twolf's role as the paper's exception in Figure 6.
        int(
            "twolf",
            0x70ff,
            1024,
            vec![
                k(Random { carried: false }, 2),
                k(Biased { pct: 55 }, 2),
                k(Random { carried: false }, 2),
                k(Biased { pct: 62 }, 2),
                k(InnerLoop { trips: 5 }, 0),
                k(Random { carried: false }, 2),
                k(Biased { pct: 58 }, 2),
                k(Biased { pct: 66 }, 2),
                k(InnerLoop { trips: 5 }, 0),
                k(Biased { pct: 60 }, 2),
                k(Periodic { period: 3 }, 2),
            ],
        ),
        // ---- floating point ----
        fp(
            "wupwise",
            0x10b1,
            4096,
            vec![
                k(FpStream { pct: 96 }, 4),
                k(FpStream { pct: 92 }, 4),
                k(InnerLoop { trips: 8 }, 0),
                k(Biased { pct: 90 }, 4),
            ],
        ),
        fp(
            "swim",
            0x20b2,
            16384,
            vec![
                k(FpStream { pct: 97 }, 3),
                k(FpStream { pct: 95 }, 3),
                k(InnerLoop { trips: 12 }, 0),
            ],
        ),
        fp(
            "mgrid",
            0x30b3,
            8192,
            vec![
                k(FpStream { pct: 98 }, 2),
                k(InnerLoop { trips: 16 }, 0),
                k(FpStream { pct: 94 }, 4),
            ],
        ),
        fp(
            "applu",
            0x40b4,
            8192,
            vec![
                k(FpStream { pct: 93 }, 4),
                k(FpStream { pct: 96 }, 4),
                k(Periodic { period: 4 }, 3),
                k(InnerLoop { trips: 6 }, 0),
            ],
        ),
        fp(
            "mesa",
            0x50b5,
            2048,
            vec![
                k(FpStream { pct: 88 }, 5),
                k(Biased { pct: 85 }, 5),
                k(Correlated, 6),
                k(InnerLoop { trips: 4 }, 0),
            ],
        ),
        fp(
            "art",
            0x60b6,
            65536,
            vec![
                k(FpStream { pct: 90 }, 6),
                k(HardRegion, 36),
                k(FpStream { pct: 94 }, 4),
                k(InnerLoop { trips: 5 }, 0),
            ],
        ),
        fp(
            "equake",
            0x70b7,
            16384,
            vec![
                k(FpStream { pct: 95 }, 4),
                k(Biased { pct: 87 }, 5),
                k(InnerLoop { trips: 8 }, 0),
            ],
        ),
        fp(
            "facerec",
            0x80b8,
            8192,
            vec![
                k(FpStream { pct: 91 }, 5),
                k(Correlated, 8),
                k(InnerLoop { trips: 6 }, 0),
                k(FpStream { pct: 97 }, 3),
            ],
        ),
        fp(
            "ammp",
            0x90b9,
            4096,
            vec![
                k(FpStream { pct: 89 }, 5),
                k(Biased { pct: 75 }, 6),
                k(HardRegion, 40),
                k(InnerLoop { trips: 5 }, 0),
            ],
        ),
        fp(
            "lucas",
            0xa0ba,
            8192,
            vec![
                k(FpStream { pct: 98 }, 2),
                k(InnerLoop { trips: 20 }, 0),
                k(Periodic { period: 16 }, 3),
            ],
        ),
        fp(
            "apsi",
            0xb0bb,
            4096,
            vec![
                k(FpStream { pct: 94 }, 4),
                k(Periodic { period: 6 }, 4),
                k(Biased { pct: 91 }, 4),
                k(InnerLoop { trips: 7 }, 0),
            ],
        ),
    ]
}

/// A small, fast-terminating workload for tests: a few of every kernel
/// kind and a bounded trip count.
pub fn test_workload(seed: u64, trips: i64) -> WorkloadSpec {
    use KernelKind::*;
    WorkloadSpec {
        name: "test",
        class: WorkloadClass::Int,
        seed,
        trips,
        array_words: 64,
        kernels: vec![
            k(Biased { pct: 80 }, 3),
            k(Random { carried: false }, 4),
            k(Random { carried: true }, 8),
            k(HardRegion, 12),
            k(Correlated, 3),
            k(Periodic { period: 4 }, 2),
            k(InnerLoop { trips: 3 }, 0),
            k(FpStream { pct: 92 }, 2),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use ppsim_isa::{Machine, StopReason};

    #[test]
    fn suite_has_22_named_benchmarks() {
        let suite = spec2000_suite();
        assert_eq!(suite.len(), 22);
        assert_eq!(
            suite
                .iter()
                .filter(|s| s.class == WorkloadClass::Int)
                .count(),
            11
        );
        assert_eq!(
            suite
                .iter()
                .filter(|s| s.class == WorkloadClass::Fp)
                .count(),
            11
        );
        let names: std::collections::HashSet<_> = suite.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 22, "names are unique");
        assert!(names.contains("twolf") && names.contains("swim"));
    }

    #[test]
    fn workload_is_deterministic() {
        let a = build_module(&test_workload(42, 10));
        let b = build_module(&test_workload(42, 10));
        assert_eq!(a.cfg, b.cfg);
        assert_eq!(a.data, b.data);
        let c = build_module(&test_workload(43, 10));
        assert_ne!(a.data, c.data, "different seeds give different data");
    }

    #[test]
    fn workload_terminates_and_computes() {
        let m = build_module(&test_workload(7, 25));
        m.cfg.validate().unwrap();
        let out = lower(&m, true).unwrap();
        let mut machine = Machine::new(&out.program);
        let r = machine.run(2_000_000).unwrap();
        assert_eq!(r.reason, StopReason::Halted);
        assert!(machine.gr(R_ACC()) != 0, "accumulator did work");
    }

    #[test]
    fn every_suite_member_lowers_and_starts() {
        for spec in spec2000_suite() {
            let m = build_module(&spec);
            m.cfg
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let out = lower(&m, true).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let mut machine = Machine::new(&out.program);
            let r = machine.run(20_000).unwrap();
            assert_eq!(
                r.reason,
                StopReason::BudgetExhausted,
                "{} runs long",
                spec.name
            );
            assert!(
                out.program.count_insns(|i| i.is_cond_branch()) >= 4,
                "{} has a branch population",
                spec.name
            );
        }
    }

    #[test]
    fn correlated_kernel_produces_expected_taken_rate() {
        use crate::profile::profile_run;
        let spec = WorkloadSpec {
            name: "corr",
            class: WorkloadClass::Int,
            seed: 99,
            trips: 4096,
            array_words: 4096,
            kernels: vec![k(KernelKind::Correlated, 2)],
        };
        let m = build_module(&spec);
        let out = lower(&m, true).unwrap();
        let prof = profile_run(&out, 1_000_000).unwrap();
        // The region branch (AND of two fair bits) fires ~25% of the time;
        // depending on the fallthrough form chosen by lowering the emitted
        // branch is taken ~25% or ~75% of the time. Either way it must be
        // *predictable* for a global-history predictor (feeder outcomes in
        // the history determine it), unlike the ~50% feeders.
        let found = prof.by_block.values().any(|b| {
            let r = b.taken_rate();
            b.execs > 1000
                && ((0.2..0.3).contains(&r) || (0.7..0.8).contains(&r))
                && b.misp_rate() < 0.1
        });
        assert!(
            found,
            "region branch with ~25% taken rate exists: {:?}",
            prof.by_block
        );
    }

    #[test]
    fn big_arrays_expand_footprint() {
        let small = build_module(&test_workload(1, 4));
        let big = build_module(&WorkloadSpec {
            array_words: 4096,
            ..test_workload(1, 4)
        });
        let size = |m: &Module| m.data.iter().map(|d| d.bytes.len()).sum::<usize>();
        assert!(size(&big) > 16 * size(&small));
    }
}
