//! # ppsim-compiler — IR, if-conversion and the synthetic workload suite
//!
//! Stands in for the paper's compiler toolchain (Intel Electron v8.1 with
//! profile feedback) and benchmark inputs (SPEC2000 + MinneSpec):
//!
//! * [`ir`] — a small control-flow-graph IR with first-class predicates,
//! * [`profile`] — a profiling run that measures per-branch execution
//!   counts and mispredictability under a small gshare (the stand-in for
//!   the paper's profile feedback),
//! * [`ifconvert`] — the **if-conversion** pass: profile-guided collapsing
//!   of hammocks and diamonds into predicated straight-line code
//!   (reproducing the paper's Figure 1 transformation, including region
//!   branches that become conditional),
//! * [`lower`] — linearization of the CFG to `ppsim-isa` programs with
//!   predicate register assignment and *compare hoisting* (the scheduling
//!   freedom behind the paper's early-resolved branches),
//! * [`workloads`] — a deterministic generator for the 22 SPEC2000-named
//!   synthetic benchmarks (11 integer + 11 floating point) whose branch
//!   behaviour spans the regimes the paper's evaluation relies on:
//!   biased, periodic, data-dependent-random, and *correlated* branch
//!   families.
//!
//! # Example
//!
//! ```
//! use ppsim_compiler::{compile, CompileOptions};
//! use ppsim_compiler::workloads::spec2000_suite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = &spec2000_suite()[0];
//! let plain = compile(spec, &CompileOptions::no_ifconv())?;
//! let ifconv = compile(spec, &CompileOptions::with_ifconv())?;
//! assert!(ifconv.program.count_insns(|i| i.is_cond_branch())
//!         <= plain.program.count_insns(|i| i.is_cond_branch()));
//! # Ok(())
//! # }
//! ```

pub mod ifconvert;
pub mod ir;
pub mod lower;
pub mod profile;
pub mod rng;
pub mod workloads;

use ppsim_isa::Program;

pub use ifconvert::{IfConvertConfig, IfConvertStats};
pub use ir::{BlockId, Cfg, Cond, GuardedOp, MirOp, Module, PredId, Terminator};
pub use lower::{LowerError, LowerOutput};
pub use profile::{BranchProfile, ProfileData};
pub use workloads::{spec2000_suite, WorkloadClass, WorkloadSpec};

/// End-to-end compilation options (mirrors the paper's two binary sets).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompileOptions {
    /// Run profile-guided if-conversion.
    pub if_convert: bool,
    /// If-conversion pass parameters.
    pub ifconvert: IfConvertConfig,
    /// Hoist compares above independent work (early-resolution scheduling).
    pub hoist_compares: bool,
    /// Instruction budget for the profiling run.
    pub profile_steps: u64,
}

impl CompileOptions {
    /// The paper's first binary set: no predication, full optimization.
    pub fn no_ifconv() -> Self {
        CompileOptions {
            if_convert: false,
            ifconvert: IfConvertConfig::default(),
            hoist_compares: true,
            profile_steps: 200_000,
        }
    }

    /// The paper's second binary set: if-conversion enabled.
    pub fn with_ifconv() -> Self {
        CompileOptions {
            if_convert: true,
            ..CompileOptions::no_ifconv()
        }
    }
}

/// A compiled workload: the binary plus provenance metadata.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The executable program.
    pub program: Program,
    /// Per-branch profile gathered during compilation (present when
    /// if-conversion ran).
    pub profile: Option<ProfileData>,
    /// If-conversion statistics (present when the pass ran).
    pub ifconvert: Option<IfConvertStats>,
}

/// Errors surfaced by [`compile`].
#[derive(Debug)]
pub enum CompileError {
    /// The CFG failed validation.
    Ir(ir::IrError),
    /// Lowering failed (e.g. predicate registers exhausted).
    Lower(LowerError),
    /// The profiling run aborted.
    Profile(ppsim_isa::ExecError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Ir(e) => write!(f, "invalid IR: {e}"),
            CompileError::Lower(e) => write!(f, "lowering failed: {e}"),
            CompileError::Profile(e) => write!(f, "profiling run failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a workload specification to an executable program.
///
/// With `if_convert` enabled this follows the paper's flow: build the CFG,
/// lower it, run a profiling execution to find hard-to-predict branches,
/// if-convert the CFG under profile guidance, and lower again.
///
/// # Errors
///
/// Returns [`CompileError`] if the generated IR is malformed, lowering
/// runs out of predicate registers, or the profiling run dies.
pub fn compile(spec: &WorkloadSpec, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    let mut module = workloads::build_module(spec);
    module.cfg.validate().map_err(CompileError::Ir)?;

    if !opts.if_convert {
        let out = lower::lower(&module, opts.hoist_compares).map_err(CompileError::Lower)?;
        return Ok(Compiled {
            program: out.program,
            profile: None,
            ifconvert: None,
        });
    }

    let baseline = lower::lower(&module, opts.hoist_compares).map_err(CompileError::Lower)?;
    let profile =
        profile::profile_run(&baseline, opts.profile_steps).map_err(CompileError::Profile)?;
    let stats = ifconvert::if_convert(&mut module.cfg, &profile, &opts.ifconvert);
    module.cfg.validate().map_err(CompileError::Ir)?;
    let out = lower::lower(&module, opts.hoist_compares).map_err(CompileError::Lower)?;
    Ok(Compiled {
        program: out.program,
        profile: Some(profile),
        ifconvert: Some(stats),
    })
}
