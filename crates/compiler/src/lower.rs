//! Lowering: CFG → linear `ppsim-isa` code.
//!
//! Responsibilities:
//!
//! * block linearization with fallthrough optimization,
//! * synthesis of `cmp.unc` + guarded-branch pairs for
//!   [`Terminator::CondBranch`] (the compare-and-branch model),
//! * physical predicate register assignment (virtual predicates are
//!   block-local by IR construction, so a per-block bump allocator is
//!   exact),
//! * **compare hoisting**: every compare is scheduled as early in its block
//!   as data dependences allow. This is the scheduling freedom that
//!   produces the paper's *early-resolved* branches — when the compare
//!   executes before its branch renames, the branch reads the computed
//!   predicate and is always correct.

use std::collections::HashMap;
use std::fmt;

use ppsim_isa::{CmpType, Insn, Op, Pr, Program};

use crate::ir::{BlockId, Cond, MirOp, Module, PredId, Terminator};

/// Lowering failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// A block needs more than 63 live predicates.
    PredRegsExhausted {
        /// The offending block.
        block: u32,
    },
    /// The produced program failed validation (internal error).
    BadProgram(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::PredRegsExhausted { block } => {
                write!(
                    f,
                    "bb{block} exhausted the 63 assignable predicate registers"
                )
            }
            LowerError::BadProgram(e) => write!(f, "lowered program invalid: {e}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// The result of lowering.
#[derive(Clone, Debug)]
pub struct LowerOutput {
    /// The executable program.
    pub program: Program,
    /// Conditional-branch slots and the CFG block each one came from
    /// (profile attribution).
    pub branch_sites: Vec<(u32, BlockId)>,
}

impl LowerOutput {
    /// Map from branch slot to source block.
    pub fn site_map(&self) -> HashMap<u32, BlockId> {
        self.branch_sites.iter().copied().collect()
    }
}

struct BlockCtx {
    map: HashMap<PredId, Pr>,
    /// Rotating start keeps different blocks on different architectural
    /// predicate registers, like a real register allocator — without this,
    /// every block would reuse p1/p2 and predicate-register-indexed
    /// structures (PEP-PA's history selector, the PPRF) would see
    /// pathological churn.
    start: u8,
    count: u8,
}

impl BlockCtx {
    fn new(block: u32) -> Self {
        BlockCtx {
            map: HashMap::new(),
            start: 1 + (block * 11 % 62) as u8,
            count: 0,
        }
    }

    fn next_reg(&mut self, block: u32) -> Result<Pr, LowerError> {
        if self.count >= 63 {
            return Err(LowerError::PredRegsExhausted { block });
        }
        let idx = 1 + (u32::from(self.start) - 1 + u32::from(self.count)) % 63;
        self.count += 1;
        Ok(Pr::new(idx as u8))
    }

    fn assign(&mut self, p: PredId, block: u32) -> Result<Pr, LowerError> {
        if let Some(r) = self.map.get(&p) {
            return Ok(*r);
        }
        let r = self.next_reg(block)?;
        self.map.insert(p, r);
        Ok(r)
    }

    fn fresh(&mut self, block: u32) -> Result<Pr, LowerError> {
        self.next_reg(block)
    }

    fn lookup(&self, p: PredId) -> Pr {
        // IR validation guarantees def-before-use.
        self.map[&p]
    }
}

fn lower_cond(cond: Cond, pt: Pr, pf: Pr) -> Op {
    match cond {
        Cond::Int { rel, src1, src2 } => Op::Cmp {
            ctype: CmpType::Unc,
            rel,
            pt,
            pf,
            src1,
            src2,
        },
        Cond::Fp { rel, src1, src2 } => Op::Fcmp {
            ctype: CmpType::Unc,
            rel,
            pt,
            pf,
            src1,
            src2,
        },
    }
}

fn lower_op(op: MirOp, ctx: &mut BlockCtx, block: u32) -> Result<Op, LowerError> {
    Ok(match op {
        MirOp::Alu {
            kind,
            dst,
            src1,
            src2,
        } => Op::Alu {
            kind,
            dst,
            src1,
            src2,
        },
        MirOp::Movi { dst, imm } => Op::Movi { dst, imm },
        MirOp::Fpu {
            kind,
            dst,
            src1,
            src2,
        } => Op::Fpu {
            kind,
            dst,
            src1,
            src2,
        },
        MirOp::Itof { dst, src } => Op::Itof { dst, src },
        MirOp::Ftoi { dst, src } => Op::Ftoi { dst, src },
        MirOp::Load { dst, base, offset } => Op::Load { dst, base, offset },
        MirOp::Store { src, base, offset } => Op::Store { src, base, offset },
        MirOp::Loadf { dst, base, offset } => Op::Loadf { dst, base, offset },
        MirOp::Storef { src, base, offset } => Op::Storef { src, base, offset },
        MirOp::DefPred { pt, pf, cond } => {
            let rt = match pt {
                Some(p) => ctx.assign(p, block)?,
                None => Pr::ZERO,
            };
            let rf = match pf {
                Some(p) => ctx.assign(p, block)?,
                None => Pr::ZERO,
            };
            lower_cond(cond, rt, rf)
        }
    })
}

/// Lowers a module to an executable program.
///
/// When `hoist_compares` is set, compares are bubbled up within their block
/// as far as data dependences allow.
///
/// # Errors
///
/// Returns [`LowerError`] if predicate registers are exhausted in some
/// block or the produced program fails validation.
pub fn lower(module: &Module, hoist_compares: bool) -> Result<LowerOutput, LowerError> {
    let cfg = &module.cfg;
    let reachable = cfg.reachable();
    let order: Vec<BlockId> = cfg.block_ids().filter(|b| reachable.contains(b)).collect();
    let next_of: HashMap<BlockId, Option<BlockId>> = order
        .iter()
        .enumerate()
        .map(|(i, b)| (*b, order.get(i + 1).copied()))
        .collect();

    let mut insns: Vec<Insn> = Vec::new();
    let mut pending: Vec<(usize, BlockId)> = Vec::new(); // branch slot → target block
    let mut block_start: HashMap<BlockId, u32> = HashMap::new();
    let mut block_range: Vec<(usize, usize)> = Vec::new(); // hoisting windows
    let mut branch_sites: Vec<(u32, BlockId)> = Vec::new();

    for &bid in &order {
        block_start.insert(bid, insns.len() as u32);
        let begin = insns.len();
        let block = cfg.block(bid);
        let mut ctx = BlockCtx::new(bid.0);

        for g in &block.ops {
            let qp = match g.guard {
                Some(p) => ctx.lookup(p),
                None => Pr::ZERO,
            };
            let op = lower_op(g.op, &mut ctx, bid.0)?;
            insns.push(Insn::guarded(qp, op));
        }

        let hoist_end = insns.len(); // compares may move within [begin, hoist_end)
        let next = next_of[&bid];

        match block.term {
            Terminator::Halt => insns.push(Insn::new(Op::Halt)),
            Terminator::Jump(t) => {
                if next != Some(t) {
                    pending.push((insns.len(), t));
                    insns.push(Insn::new(Op::Br { target: 0 }));
                }
            }
            Terminator::CondBranch {
                cond,
                then_bb,
                else_bb,
            } => {
                let pt = ctx.fresh(bid.0)?;
                let pf = ctx.fresh(bid.0)?;
                insns.push(Insn::new(lower_cond(cond, pt, pf)));
                if next == Some(else_bb) {
                    branch_sites.push((insns.len() as u32, bid));
                    pending.push((insns.len(), then_bb));
                    insns.push(Insn::guarded(pt, Op::Br { target: 0 }));
                } else if next == Some(then_bb) {
                    branch_sites.push((insns.len() as u32, bid));
                    pending.push((insns.len(), else_bb));
                    insns.push(Insn::guarded(pf, Op::Br { target: 0 }));
                } else {
                    branch_sites.push((insns.len() as u32, bid));
                    pending.push((insns.len(), then_bb));
                    insns.push(Insn::guarded(pt, Op::Br { target: 0 }));
                    pending.push((insns.len(), else_bb));
                    insns.push(Insn::new(Op::Br { target: 0 }));
                }
            }
            Terminator::PredBranch {
                pred,
                then_bb,
                else_bb,
            } => {
                let qp = ctx.lookup(pred);
                branch_sites.push((insns.len() as u32, bid));
                pending.push((insns.len(), then_bb));
                insns.push(Insn::guarded(qp, Op::Br { target: 0 }));
                if next != Some(else_bb) {
                    pending.push((insns.len(), else_bb));
                    insns.push(Insn::new(Op::Br { target: 0 }));
                }
            }
        }
        block_range.push((begin, hoist_end.min(insns.len())));
        // The terminator compare (if any) sits at `hoist_end`; include it in
        // the hoisting window, branches stay put.
        if matches!(block.term, Terminator::CondBranch { .. }) {
            block_range.pop();
            block_range.push((begin, hoist_end + 1));
        }
    }

    if hoist_compares {
        for &(begin, end) in &block_range {
            hoist_in_window(&mut insns, begin, end);
        }
    }

    // Patch branch targets.
    for (slot, target) in pending {
        let t = block_start[&target];
        match &mut insns[slot].op {
            Op::Br { target } => *target = t,
            other => unreachable!("pending patch on non-branch {other:?}"),
        }
    }

    let program = Program {
        insns,
        data: module.data.clone(),
        gr_init: module.gr_init.clone(),
        fr_init: module.fr_init.clone(),
    };
    program
        .validate()
        .map_err(|e| LowerError::BadProgram(e.to_string()))?;
    Ok(LowerOutput {
        program,
        branch_sites,
    })
}

/// Whether `above` must stay above `cmp` (dependence check for hoisting).
fn depends(cmp: &Insn, above: &Insn) -> bool {
    // `cmp` reads integer/float sources and its guard; it writes predicates.
    // It must not move above:
    //  * a producer of any of its sources,
    //  * the definition of its guard,
    //  * an instruction guarded by (or branching on) a predicate it writes,
    //  * another compare writing any of the same predicate registers (WAW),
    //  * any branch.
    if above.is_branch() {
        return true;
    }
    if let Some(d) = above.gr_dst() {
        if cmp.gr_srcs().iter().flatten().any(|s| *s == d) {
            return true;
        }
    }
    if let Some(d) = above.fr_dst() {
        if cmp.fr_srcs().iter().flatten().any(|s| *s == d) {
            return true;
        }
    }
    let above_prs = above.pr_dsts();
    if above_prs.iter().flatten().any(|p| *p == cmp.qp) && !cmp.qp.is_zero() {
        return true;
    }
    let cmp_prs = cmp.pr_dsts();
    // RAW on predicates: `above` guarded by a predicate cmp defines would
    // change meaning if cmp moved above it (cmp is the *next* definition;
    // moving it up would make `above` read the new value too early).
    if cmp_prs.iter().flatten().any(|p| *p == above.qp) {
        return true;
    }
    // WAW on predicates.
    if cmp_prs
        .iter()
        .flatten()
        .any(|p| above_prs.iter().flatten().any(|q| q == p))
    {
        return true;
    }
    false
}

fn hoist_in_window(insns: &mut [Insn], begin: usize, end: usize) {
    // Bubble each compare upward to the earliest legal position, processing
    // top-down so earlier compares settle first.
    for i in begin..end.min(insns.len()) {
        if !insns[i].is_cmp() {
            continue;
        }
        let mut pos = i;
        while pos > begin && !depends(&insns[pos].clone(), &insns[pos - 1].clone()) {
            insns.swap(pos, pos - 1);
            pos -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Cfg, GuardedOp};
    use ppsim_isa::{AluKind, CmpRel, Gr, Machine, Operand};

    fn g(i: u8) -> Gr {
        Gr::new(i)
    }

    fn int_cond(r: Gr, v: i64) -> Cond {
        Cond::Int {
            rel: CmpRel::Lt,
            src1: r,
            src2: Operand::Imm(v),
        }
    }

    /// entry: r1=5; if (r1<10) { r2=1 } else { r2=2 }; r3=r2+1; halt
    fn diamond_module() -> Module {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let t = cfg.new_block();
        let f = cfg.new_block();
        let j = cfg.new_block();
        cfg.block_mut(a)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(1), imm: 5 }));
        cfg.block_mut(a).term = Terminator::CondBranch {
            cond: int_cond(g(1), 10),
            then_bb: t,
            else_bb: f,
        };
        cfg.block_mut(t)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(2), imm: 1 }));
        cfg.block_mut(t).term = Terminator::Jump(j);
        cfg.block_mut(f)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(2), imm: 2 }));
        cfg.block_mut(f).term = Terminator::Jump(j);
        cfg.block_mut(j).ops.push(GuardedOp::new(MirOp::Alu {
            kind: AluKind::Add,
            dst: g(3),
            src1: g(2),
            src2: Operand::Imm(1),
        }));
        Module {
            cfg,
            ..Module::default()
        }
    }

    #[test]
    fn diamond_lowers_and_runs() {
        let m = diamond_module();
        let out = lower(&m, false).unwrap();
        let mut machine = Machine::new(&out.program);
        machine.run(100).unwrap();
        assert_eq!(machine.gr(g(2)), 1, "then-path taken (5 < 10)");
        assert_eq!(machine.gr(g(3)), 2);
        assert_eq!(out.branch_sites.len(), 1);
        assert_eq!(out.branch_sites[0].1, BlockId(0));
    }

    #[test]
    fn fallthrough_else_needs_one_branch() {
        let m = diamond_module();
        let out = lower(&m, false).unwrap();
        // Block layout a,t,f,j: then-branch to t is NOT fallthrough-else
        // (next is t), so the (pf) br f form is used: exactly one
        // conditional branch plus t's jump over f.
        let cond_branches = out.program.count_insns(|i| i.is_cond_branch());
        assert_eq!(cond_branches, 1);
    }

    #[test]
    fn hoisting_moves_compare_above_independent_work() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let b = cfg.new_block();
        let blk = cfg.block_mut(a);
        blk.ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(1), imm: 5 }));
        // Independent filler the compare can rise above.
        for k in 0..4 {
            blk.ops.push(GuardedOp::new(MirOp::Alu {
                kind: AluKind::Add,
                dst: g(10 + k),
                src1: g(10 + k),
                src2: Operand::Imm(1),
            }));
        }
        blk.term = Terminator::CondBranch {
            cond: int_cond(g(1), 10),
            then_bb: b,
            else_bb: b,
        };
        let m = Module {
            cfg,
            ..Module::default()
        };

        let unhoisted = lower(&m, false).unwrap();
        let hoisted = lower(&m, true).unwrap();
        let cmp_pos = |p: &Program| p.insns.iter().position(|i| i.is_cmp()).unwrap();
        assert_eq!(
            cmp_pos(&unhoisted.program),
            5,
            "compare sits just before the branch"
        );
        assert_eq!(
            cmp_pos(&hoisted.program),
            1,
            "compare rises above independent filler"
        );

        // Semantics unchanged.
        let mut m1 = Machine::new(&unhoisted.program);
        let mut m2 = Machine::new(&hoisted.program);
        m1.run(100).unwrap();
        m2.run(100).unwrap();
        for r in 1..15u8 {
            assert_eq!(m1.gr(g(r)), m2.gr(g(r)), "r{r}");
        }
    }

    #[test]
    fn hoisting_respects_data_dependences() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let b = cfg.new_block();
        let blk = cfg.block_mut(a);
        blk.ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(1), imm: 1 }));
        blk.ops.push(GuardedOp::new(MirOp::Alu {
            kind: AluKind::Add,
            dst: g(2),
            src1: g(1),
            src2: Operand::Imm(1),
        }));
        // Compare reads r2 — must stay below its producer.
        blk.term = Terminator::CondBranch {
            cond: int_cond(g(2), 10),
            then_bb: b,
            else_bb: b,
        };
        let m = Module {
            cfg,
            ..Module::default()
        };
        let out = lower(&m, true).unwrap();
        let cmp_pos = out.program.insns.iter().position(|i| i.is_cmp()).unwrap();
        assert_eq!(cmp_pos, 2, "compare cannot pass the producer of r2");
    }

    #[test]
    fn pred_branch_lowering_reuses_defined_predicate() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let t = cfg.new_block();
        let e = cfg.new_block();
        let p = cfg.new_pred();
        let blk = cfg.block_mut(a);
        blk.ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(1), imm: 0 }));
        blk.ops.push(GuardedOp::new(MirOp::DefPred {
            pt: Some(p),
            pf: None,
            cond: int_cond(g(1), 10),
        }));
        blk.term = Terminator::PredBranch {
            pred: p,
            then_bb: t,
            else_bb: e,
        };
        cfg.block_mut(t)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(2), imm: 1 }));
        cfg.block_mut(t).term = Terminator::Halt;
        cfg.block_mut(e)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(2), imm: 2 }));
        let m = Module {
            cfg,
            ..Module::default()
        };
        let out = lower(&m, false).unwrap();
        // Exactly one compare: the DefPred. The branch reuses its register.
        assert_eq!(out.program.count_insns(|i| i.is_cmp()), 1);
        let mut machine = Machine::new(&out.program);
        machine.run(100).unwrap();
        assert_eq!(machine.gr(g(2)), 1, "0 < 10, then-path");
    }

    #[test]
    fn unreachable_blocks_are_dropped() {
        let mut m = diamond_module();
        let dead = m.cfg.new_block();
        m.cfg
            .block_mut(dead)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(9), imm: 9 }));
        let out = lower(&m, false).unwrap();
        let with_dead = out.program.len();
        let out2 = lower(&diamond_module(), false).unwrap();
        assert_eq!(with_dead, out2.program.len(), "dead block emitted nothing");
    }

    #[test]
    fn pred_exhaustion_is_reported() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let mut preds = Vec::new();
        for _ in 0..64 {
            preds.push(cfg.new_pred());
        }
        let blk = cfg.block_mut(a);
        for chunk in preds.chunks(2) {
            blk.ops.push(GuardedOp::new(MirOp::DefPred {
                pt: Some(chunk[0]),
                pf: chunk.get(1).copied(),
                cond: int_cond(g(1), 0),
            }));
        }
        let m = Module {
            cfg,
            ..Module::default()
        };
        assert_eq!(
            lower(&m, false).unwrap_err(),
            LowerError::PredRegsExhausted { block: 0 }
        );
    }

    #[test]
    fn cond_branch_with_no_fallthrough_emits_two_branches() {
        // Terminator targets neither of which is the next block in layout:
        // requires a conditional branch plus an unconditional one.
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let filler = cfg.new_block(); // placed between a and the targets
        let t = cfg.new_block();
        let f = cfg.new_block();
        cfg.block_mut(a).term = Terminator::CondBranch {
            cond: int_cond(g(1), 10),
            then_bb: t,
            else_bb: f,
        };
        // filler must be reachable to be emitted: route it from t.
        cfg.block_mut(t)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(2), imm: 1 }));
        cfg.block_mut(t).term = Terminator::Jump(filler);
        cfg.block_mut(filler)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(3), imm: 1 }));
        cfg.block_mut(filler).term = Terminator::Halt;
        cfg.block_mut(f)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(2), imm: 2 }));
        let m = Module {
            cfg,
            ..Module::default()
        };
        let out = lower(&m, false).unwrap();
        let branches = out.program.count_insns(|i| i.is_branch());
        assert!(
            branches >= 2,
            "cond + unconditional:\n{}",
            out.program.listing()
        );
        // Semantics: 0 < 10 → then-path.
        let mut machine = Machine::new(&out.program);
        machine.run(100).unwrap();
        assert_eq!(machine.gr(g(2)), 1);
        assert_eq!(machine.gr(g(3)), 1);
    }

    #[test]
    fn pred_branch_else_fallthrough_is_single_branch() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let t = cfg.new_block();
        let e = cfg.new_block();
        let p = cfg.new_pred();
        let blk = cfg.block_mut(a);
        blk.ops.push(GuardedOp::new(MirOp::DefPred {
            pt: Some(p),
            pf: None,
            cond: int_cond(g(1), 10),
        }));
        blk.term = Terminator::PredBranch {
            pred: p,
            then_bb: t,
            else_bb: e,
        };
        cfg.block_mut(t).term = Terminator::Halt;
        // Layout order: a, t, e → else is NOT the fallthrough; then is.
        // The lowering always emits `(p) br then` and adds `br else` only
        // when else is not next; here next is t so one extra br for e.
        cfg.block_mut(e).term = Terminator::Halt;
        let m = Module {
            cfg,
            ..Module::default()
        };
        let out = lower(&m, false).unwrap();
        let cond = out.program.count_insns(|i| i.is_cond_branch());
        assert_eq!(cond, 1, "{}", out.program.listing());
    }

    #[test]
    fn branch_sites_cover_every_conditional_branch() {
        let m = diamond_module();
        let out = lower(&m, true).unwrap();
        let cond_slots: Vec<u32> = out
            .program
            .insns
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_cond_branch())
            .map(|(s, _)| s as u32)
            .collect();
        let mapped: Vec<u32> = out.branch_sites.iter().map(|(s, _)| *s).collect();
        for s in cond_slots {
            assert!(mapped.contains(&s), "slot {s} missing from branch_sites");
        }
    }

    #[test]
    fn predicate_registers_rotate_across_blocks() {
        // Two separate diamonds: their compares must not share predicate
        // registers (realistic allocation; PEP-PA's selector needs this).
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let j1 = cfg.new_block();
        let j2 = cfg.new_block();
        cfg.block_mut(a).term = Terminator::CondBranch {
            cond: int_cond(g(1), 10),
            then_bb: j1,
            else_bb: j1,
        };
        cfg.block_mut(j1).term = Terminator::CondBranch {
            cond: int_cond(g(2), 10),
            then_bb: j2,
            else_bb: j2,
        };
        let m = Module {
            cfg,
            ..Module::default()
        };
        let out = lower(&m, false).unwrap();
        let cmp_targets: Vec<_> = out
            .program
            .insns
            .iter()
            .filter(|i| i.is_cmp())
            .map(|i| i.pr_dsts())
            .collect();
        assert_eq!(cmp_targets.len(), 2);
        assert_ne!(
            cmp_targets[0], cmp_targets[1],
            "blocks use distinct predicate registers"
        );
    }

    #[test]
    fn guarded_ops_get_their_assigned_register() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let p = cfg.new_pred();
        let blk = cfg.block_mut(a);
        blk.ops.push(GuardedOp::new(MirOp::DefPred {
            pt: Some(p),
            pf: None,
            cond: int_cond(g(1), 10),
        }));
        blk.ops
            .push(GuardedOp::guarded(p, MirOp::Movi { dst: g(2), imm: 7 }));
        let m = Module {
            cfg,
            ..Module::default()
        };
        let out = lower(&m, false).unwrap();
        let mov = out
            .program
            .insns
            .iter()
            .find(|i| matches!(i.op, Op::Movi { .. }))
            .unwrap();
        assert!(!mov.qp.is_zero(), "guard was mapped to a real register");
        let mut machine = Machine::new(&out.program);
        machine.run(10).unwrap();
        assert_eq!(machine.gr(g(2)), 7, "guard evaluates true (0 < 10)");
    }
}
