//! Profiling run: the stand-in for the paper's profile feedback.
//!
//! The paper's benchmarks are compiled "using maximum optimization levels
//! and profile information", and prior work (\[4\]) selects if-conversion
//! candidates by profiling hard-to-predict branches. We do the same: run
//! the non-if-converted binary under a small gshare and record, per branch
//! site, the execution count, taken rate and misprediction rate.

use std::collections::HashMap;

use ppsim_isa::{ExecError, Machine, Program};
use ppsim_predictors::{BranchPredictor, Gshare, GshareConfig};

use crate::ir::BlockId;
use crate::lower::LowerOutput;

/// Per-branch-site profile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchProfile {
    /// Dynamic executions.
    pub execs: u64,
    /// Times taken.
    pub taken: u64,
    /// Mispredictions under the profiling gshare.
    pub mispredicts: u64,
}

impl BranchProfile {
    /// Misprediction rate (0 when never executed).
    pub fn misp_rate(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.execs as f64
        }
    }

    /// Taken rate (0 when never executed).
    pub fn taken_rate(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            self.taken as f64 / self.execs as f64
        }
    }
}

/// Profile for a whole program, keyed by the source CFG block of each
/// branch.
#[derive(Clone, Debug, Default)]
pub struct ProfileData {
    /// Block → profile of the branch that block's terminator produced.
    pub by_block: HashMap<BlockId, BranchProfile>,
    /// Dynamic instructions executed during profiling.
    pub steps: u64,
}

impl ProfileData {
    /// Profile of one block's branch, if it executed.
    pub fn branch(&self, block: BlockId) -> Option<&BranchProfile> {
        self.by_block.get(&block)
    }
}

/// Runs the program for up to `max_steps` instructions, predicting every
/// conditional branch with a small gshare, and aggregates per-site
/// statistics.
///
/// The first quarter of the run warms the predictor without being
/// counted, so borderline if-conversion decisions do not flip with the
/// profiling budget.
///
/// # Errors
///
/// Propagates emulator failures ([`ExecError`]).
pub fn profile_run(lowered: &LowerOutput, max_steps: u64) -> Result<ProfileData, ExecError> {
    let site_map = lowered.site_map();
    let mut gshare = Gshare::new(GshareConfig { ghr_bits: 12 });
    // Pre-measure the dynamic length so the warm-up window scales with
    // the run that will actually happen (short programs halt early).
    let total = Machine::new(&lowered.program).run(max_steps)?.steps;
    let warmup = total / 4;
    let mut machine = Machine::new(&lowered.program);
    let mut data = ProfileData::default();

    let mut steps = 0u64;
    while steps < max_steps {
        let Some(rec) = machine.step()? else { break };
        steps += 1;
        if !rec.insn.is_cond_branch() {
            continue;
        }
        let taken = rec.is_taken_branch();
        let pc = Program::pc_of(rec.slot);
        let pred = gshare.predict(pc, rec.insn.qp.index() as u8);
        if pred.taken != taken {
            gshare.recover(&pred, taken);
        }
        gshare.train(&pred, taken);
        if steps <= warmup {
            continue;
        }
        if let Some(block) = site_map.get(&rec.slot) {
            let e = data.by_block.entry(*block).or_default();
            e.execs += 1;
            e.taken += u64::from(taken);
            e.mispredicts += u64::from(pred.taken != taken);
        }
    }
    data.steps = steps;
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Cfg, Cond, GuardedOp, MirOp, Module, Terminator};
    use crate::lower::lower;
    use ppsim_isa::{AluKind, CmpRel, Gr, Operand};

    fn g(i: u8) -> Gr {
        Gr::new(i)
    }

    /// A loop with a biased inner branch: `for i in 0..100 { if i % 4 != 0 {..} }`.
    fn looped_module() -> Module {
        let mut cfg = Cfg::new();
        let entry = cfg.new_block();
        let header = cfg.new_block();
        let then = cfg.new_block();
        let latch = cfg.new_block();
        let exit = cfg.new_block();

        cfg.block_mut(entry)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(1), imm: 0 }));
        cfg.block_mut(entry).term = Terminator::Jump(header);

        let h = cfg.block_mut(header);
        h.ops.push(GuardedOp::new(MirOp::Alu {
            kind: AluKind::And,
            dst: g(2),
            src1: g(1),
            src2: Operand::Imm(3),
        }));
        h.term = Terminator::CondBranch {
            cond: Cond::Int {
                rel: CmpRel::Ne,
                src1: g(2),
                src2: Operand::Imm(0),
            },
            then_bb: then,
            else_bb: latch,
        };

        cfg.block_mut(then).ops.push(GuardedOp::new(MirOp::Alu {
            kind: AluKind::Add,
            dst: g(3),
            src1: g(3),
            src2: Operand::Imm(1),
        }));
        cfg.block_mut(then).term = Terminator::Jump(latch);

        let l = cfg.block_mut(latch);
        l.ops.push(GuardedOp::new(MirOp::Alu {
            kind: AluKind::Add,
            dst: g(1),
            src1: g(1),
            src2: Operand::Imm(1),
        }));
        l.term = Terminator::CondBranch {
            cond: Cond::Int {
                rel: CmpRel::Lt,
                src1: g(1),
                src2: Operand::Imm(1000),
            },
            then_bb: header,
            else_bb: exit,
        };
        Module {
            cfg,
            ..Module::default()
        }
    }

    #[test]
    fn profile_counts_both_branch_sites() {
        let out = lower(&looped_module(), true).unwrap();
        let data = profile_run(&out, 100_000).unwrap();
        let inner = data.branch(crate::ir::BlockId(1)).unwrap();
        let latch = data.branch(crate::ir::BlockId(3)).unwrap();
        // The first quarter of the run warms the predictor uncounted, so
        // 750 of the 1000 iterations are measured.
        assert_eq!(inner.execs, 750);
        // Lowering picked the fallthrough-then form, so the emitted branch
        // is taken when the condition is false: i % 4 == 0, i.e. 25%.
        assert!(
            (0.24..0.26).contains(&inner.taken_rate()),
            "{}",
            inner.taken_rate()
        );
        assert_eq!(latch.execs, 750);
        assert!(latch.taken_rate() > 0.99);
        assert!(latch.misp_rate() < 0.05, "loop-back branch is easy");
    }

    #[test]
    fn rates_handle_zero_execs() {
        let p = BranchProfile::default();
        assert_eq!(p.misp_rate(), 0.0);
        assert_eq!(p.taken_rate(), 0.0);
    }

    #[test]
    fn budget_truncates_profiling() {
        let out = lower(&looped_module(), true).unwrap();
        let data = profile_run(&out, 50).unwrap();
        assert_eq!(data.steps, 50);
    }
}
