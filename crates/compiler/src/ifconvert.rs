//! Profile-guided if-conversion (Allen et al.; applied as in the paper).
//!
//! Collapses hammocks (triangles) and diamonds whose branch is
//! hard-to-predict into predicated straight-line code:
//!
//! * the branch condition becomes a [`MirOp::DefPred`] (`cmp.unc`),
//! * the side blocks' operations are guarded with the new predicates
//!   (already-guarded operations keep their guard — their own `DefPred`
//!   is guarded instead, and `unc` semantics clear its targets when
//!   disqualified, exactly the IA-64 nesting idiom),
//! * side blocks ending in a further *exit* branch are supported: the exit
//!   becomes a [`Terminator::PredBranch`] — the paper's Figure 1
//!   "unconditional branch transformed into a conditional branch" that
//!   still needs prediction,
//! * straight-line jump chains are merged so that nested structures become
//!   single blocks, enabling fixpoint conversion of regions.
//!
//! The pass never touches loop branches: back edges target blocks with
//! multiple predecessors, which the single-predecessor side-block test
//! rejects.

use crate::ir::{BlockId, Cfg, GuardedOp, MirOp, PredId, Terminator};
use crate::profile::ProfileData;

/// If-conversion parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IfConvertConfig {
    /// Convert a branch only if its profiled misprediction rate is at
    /// least this.
    pub misp_threshold: f64,
    /// ... and it executed at least this many times during profiling.
    pub min_execs: u64,
    /// Maximum operations per side block.
    pub max_ops: usize,
    /// Ignore the profile and convert every structural candidate.
    pub convert_all: bool,
}

impl Default for IfConvertConfig {
    fn default() -> Self {
        IfConvertConfig {
            // The paper converts *hard-to-predict* branches (profile
            // guided, after Chang et al. [4]); moderately predictable
            // branches — in particular the correlated region branches the
            // whole study revolves around — stay as branches.
            misp_threshold: 0.15,
            min_execs: 50,
            max_ops: 24,
            convert_all: false,
        }
    }
}

/// What the pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IfConvertStats {
    /// Branches converted (hammock or diamond collapses).
    pub converted: usize,
    /// Structural candidates rejected by the profile gate.
    pub rejected_by_profile: usize,
    /// Structural candidates rejected by the size limit.
    pub rejected_by_size: usize,
    /// Straight-line jump chains merged.
    pub merged_chains: usize,
}

/// A side block's terminator, normalized for absorption into the region:
/// either it simply rejoins (`Jump`), or it leaves behind a *region branch*
/// (`PredBranch`) plus possibly one extra guarded `DefPred` computing its
/// predicate (the Figure-1 case of a conditional branch inside the region).
struct SideExit {
    /// Extra operation to append after the side's guarded ops.
    extra: Option<GuardedOp>,
    /// Normalized terminator.
    term: Terminator,
}

/// Normalizes a side block's terminator for absorption under `guard`.
fn normalize_side_term(cfg: &mut Cfg, guard: PredId, term: Terminator) -> SideExit {
    match term {
        Terminator::CondBranch {
            cond,
            then_bb,
            else_bb,
        } => {
            // The branch survives if-conversion as a guarded compare plus a
            // predicate branch — the paper's "unconditional branch
            // transformed into a conditional branch" when it was the exit
            // of a region ((p3) br.ret in Figure 1b).
            let p = cfg.new_pred();
            SideExit {
                extra: Some(GuardedOp::guarded(
                    guard,
                    MirOp::DefPred {
                        pt: Some(p),
                        pf: None,
                        cond,
                    },
                )),
                term: Terminator::PredBranch {
                    pred: p,
                    then_bb,
                    else_bb,
                },
            }
        }
        other => SideExit {
            extra: None,
            term: other,
        },
    }
}

/// Merges the normalized terminators of the two sides of a diamond.
///
/// A `PredBranch` can pair with a `Jump` to the same fallthrough because
/// its predicate is defined under the *other* side's guard by an `unc`
/// compare: when that guard is false the predicate reads zero and the
/// region branch falls through.
fn merge_terminators(t_term: Terminator, f_term: Terminator) -> Option<Terminator> {
    match (t_term, f_term) {
        (Terminator::Jump(a), Terminator::Jump(b)) if a == b => Some(Terminator::Jump(a)),
        (
            Terminator::Jump(j),
            Terminator::PredBranch {
                pred,
                then_bb,
                else_bb,
            },
        ) if else_bb == j => Some(Terminator::PredBranch {
            pred,
            then_bb,
            else_bb,
        }),
        (
            Terminator::PredBranch {
                pred,
                then_bb,
                else_bb,
            },
            Terminator::Jump(j),
        ) if else_bb == j => Some(Terminator::PredBranch {
            pred,
            then_bb,
            else_bb,
        }),
        (Terminator::Halt, Terminator::Halt) => Some(Terminator::Halt),
        _ => None,
    }
}

/// Whether a normalized side terminator is a valid exit toward `join`
/// (triangle patterns).
fn triangle_exit(term: Terminator, join: BlockId) -> Option<Terminator> {
    match term {
        Terminator::Jump(j) if j == join => Some(Terminator::Jump(join)),
        Terminator::PredBranch {
            pred,
            then_bb,
            else_bb,
        } if else_bb == join => Some(Terminator::PredBranch {
            pred,
            then_bb,
            else_bb,
        }),
        _ => None,
    }
}

/// Guards every operation of `ops` with `guard`, preserving existing guards
/// (their defining `DefPred` is the one that gets guarded).
fn guard_ops(ops: &[GuardedOp], guard: PredId) -> Vec<GuardedOp> {
    ops.iter()
        .map(|g| GuardedOp {
            guard: Some(g.guard.unwrap_or(guard)),
            op: g.op,
        })
        .collect()
}

fn profile_allows(cfg_block: BlockId, profile: &ProfileData, config: &IfConvertConfig) -> bool {
    if config.convert_all {
        return true;
    }
    match profile.branch(cfg_block) {
        Some(p) => p.execs >= config.min_execs && p.misp_rate() >= config.misp_threshold,
        None => false,
    }
}

/// Runs if-conversion to a fixpoint on `cfg`, guided by `profile`.
pub fn if_convert(
    cfg: &mut Cfg,
    profile: &ProfileData,
    config: &IfConvertConfig,
) -> IfConvertStats {
    let mut stats = IfConvertStats::default();
    // Chain merging moves a successor's terminator into its predecessor;
    // profile data is keyed by the *original* block of each branch, so
    // track where each block's current terminator came from.
    let mut term_origin: Vec<BlockId> = cfg.block_ids().collect();
    loop {
        let mut changed = false;

        // 1. Merge straight-line jump chains (enables nested conversion).
        loop {
            let preds = cfg.reachable_predecessor_counts();
            let reachable = cfg.reachable();
            let mut merged = false;
            for a in cfg.block_ids().collect::<Vec<_>>() {
                if !reachable.contains(&a) {
                    continue;
                }
                let Terminator::Jump(b) = cfg.block(a).term else {
                    continue;
                };
                if b == a || preds[b.0 as usize] != 1 {
                    continue;
                }
                let b_block = cfg.block(b).clone();
                let a_block = cfg.block_mut(a);
                a_block.ops.extend(b_block.ops);
                a_block.term = b_block.term;
                term_origin[a.0 as usize] = term_origin[b.0 as usize];
                stats.merged_chains += 1;
                merged = true;
                break; // predecessor counts are stale; recompute
            }
            if !merged {
                break;
            }
        }

        // 2. Convert one candidate, then restart (keeps predecessor counts
        //    trivially correct). Rejection counters reflect the final pass.
        stats.rejected_by_profile = 0;
        stats.rejected_by_size = 0;
        let preds = cfg.reachable_predecessor_counts();
        let reachable = cfg.reachable();
        let candidates: Vec<BlockId> = cfg.block_ids().filter(|b| reachable.contains(b)).collect();
        for a in candidates {
            let Terminator::CondBranch {
                cond,
                then_bb: t,
                else_bb: f,
            } = cfg.block(a).term
            else {
                continue;
            };
            if t == f || t == a || f == a {
                continue;
            }
            let t_single = preds[t.0 as usize] == 1;
            let f_single = preds[f.0 as usize] == 1;
            let t_len = cfg.block(t).ops.len();
            let f_len = cfg.block(f).ops.len();

            enum Shape {
                Diamond,
                TriangleThen,
                TriangleElse,
            }
            // Structural pre-check (without allocating predicates):
            // triangles need the absorbed side to rejoin at the other side;
            // diamonds need mergeable exits. CondBranch exits normalize to
            // PredBranch, so treat them as PredBranch for the check.
            let as_norm = |term: Terminator| -> Terminator {
                match term {
                    Terminator::CondBranch {
                        then_bb, else_bb, ..
                    } => Terminator::PredBranch {
                        pred: PredId(u32::MAX),
                        then_bb,
                        else_bb,
                    },
                    other => other,
                }
            };
            let shape = if t_single
                && f_single
                && merge_terminators(as_norm(cfg.block(t).term), as_norm(cfg.block(f).term))
                    .is_some()
            {
                Some(Shape::Diamond)
            } else if t_single && triangle_exit(as_norm(cfg.block(t).term), f).is_some() {
                Some(Shape::TriangleThen)
            } else if f_single && triangle_exit(as_norm(cfg.block(f).term), t).is_some() {
                Some(Shape::TriangleElse)
            } else {
                None
            };
            let Some(shape) = shape else { continue };

            // Size gate.
            let too_big = match shape {
                Shape::Diamond => t_len > config.max_ops || f_len > config.max_ops,
                Shape::TriangleThen => t_len > config.max_ops,
                Shape::TriangleElse => f_len > config.max_ops,
            };
            if too_big {
                stats.rejected_by_size += 1;
                continue;
            }

            // Profile gate (on the block the terminator originally came
            // from).
            if !profile_allows(term_origin[a.0 as usize], profile, config) {
                stats.rejected_by_profile += 1;
                continue;
            }

            // Apply.
            let pt = cfg.new_pred();
            let pf = cfg.new_pred();
            match shape {
                Shape::Diamond => {
                    let (tt, ft) = (cfg.block(t).term, cfg.block(f).term);
                    let t_exit = normalize_side_term(cfg, pt, tt);
                    let f_exit = normalize_side_term(cfg, pf, ft);
                    let term =
                        merge_terminators(t_exit.term, f_exit.term).expect("pre-checked mergeable");
                    let mut t_ops = guard_ops(&cfg.block(t).ops, pt);
                    t_ops.extend(t_exit.extra);
                    let mut f_ops = guard_ops(&cfg.block(f).ops, pf);
                    f_ops.extend(f_exit.extra);
                    let a_block = cfg.block_mut(a);
                    a_block.ops.push(GuardedOp::new(MirOp::DefPred {
                        pt: Some(pt),
                        pf: Some(pf),
                        cond,
                    }));
                    a_block.ops.extend(t_ops);
                    a_block.ops.extend(f_ops);
                    a_block.term = term;
                }
                Shape::TriangleThen => {
                    let tt = cfg.block(t).term;
                    let t_exit = normalize_side_term(cfg, pt, tt);
                    let term = triangle_exit(t_exit.term, f).expect("pre-checked exit");
                    let mut t_ops = guard_ops(&cfg.block(t).ops, pt);
                    t_ops.extend(t_exit.extra);
                    let a_block = cfg.block_mut(a);
                    a_block.ops.push(GuardedOp::new(MirOp::DefPred {
                        pt: Some(pt),
                        pf: None,
                        cond,
                    }));
                    a_block.ops.extend(t_ops);
                    a_block.term = term;
                }
                Shape::TriangleElse => {
                    let ft = cfg.block(f).term;
                    let f_exit = normalize_side_term(cfg, pf, ft);
                    let term = triangle_exit(f_exit.term, t).expect("pre-checked exit");
                    let mut f_ops = guard_ops(&cfg.block(f).ops, pf);
                    f_ops.extend(f_exit.extra);
                    let a_block = cfg.block_mut(a);
                    a_block.ops.push(GuardedOp::new(MirOp::DefPred {
                        pt: None,
                        pf: Some(pf),
                        cond,
                    }));
                    a_block.ops.extend(f_ops);
                    a_block.term = term;
                }
            }
            stats.converted += 1;
            changed = true;
            break;
        }

        if !changed {
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Cond, Module};
    use crate::lower::lower;
    use crate::profile::profile_run;
    use ppsim_isa::{AluKind, CmpRel, Gr, Machine, Operand};

    fn g(i: u8) -> Gr {
        Gr::new(i)
    }

    fn cond_lt(r: Gr, v: i64) -> Cond {
        Cond::Int {
            rel: CmpRel::Lt,
            src1: r,
            src2: Operand::Imm(v),
        }
    }

    fn all() -> IfConvertConfig {
        IfConvertConfig {
            convert_all: true,
            ..IfConvertConfig::default()
        }
    }

    fn movi(dst: Gr, imm: i64) -> GuardedOp {
        GuardedOp::new(MirOp::Movi { dst, imm })
    }

    /// if (r1 < 10) r2 = 1 else r2 = 2; r3 = r2 + 1
    fn diamond(taken: bool) -> Module {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let t = cfg.new_block();
        let f = cfg.new_block();
        let j = cfg.new_block();
        cfg.block_mut(a)
            .ops
            .push(movi(g(1), if taken { 5 } else { 50 }));
        cfg.block_mut(a).term = Terminator::CondBranch {
            cond: cond_lt(g(1), 10),
            then_bb: t,
            else_bb: f,
        };
        cfg.block_mut(t).ops.push(movi(g(2), 1));
        cfg.block_mut(t).term = Terminator::Jump(j);
        cfg.block_mut(f).ops.push(movi(g(2), 2));
        cfg.block_mut(f).term = Terminator::Jump(j);
        cfg.block_mut(j).ops.push(GuardedOp::new(MirOp::Alu {
            kind: AluKind::Add,
            dst: g(3),
            src1: g(2),
            src2: Operand::Imm(1),
        }));
        Module {
            cfg,
            ..Module::default()
        }
    }

    fn run_regs(m: &Module, regs: &[u8]) -> Vec<i64> {
        let out = lower(m, false).unwrap();
        let mut machine = Machine::new(&out.program);
        machine.run(10_000).unwrap();
        regs.iter().map(|r| machine.gr(g(*r))).collect()
    }

    #[test]
    fn diamond_is_converted_and_preserves_semantics() {
        for taken in [true, false] {
            let mut m = diamond(taken);
            let before = run_regs(&m, &[1, 2, 3]);
            let stats = if_convert(&mut m.cfg, &ProfileData::default(), &all());
            assert_eq!(stats.converted, 1);
            m.cfg.validate().unwrap();
            assert_eq!(m.cfg.cond_branch_count(), 0, "branch removed");
            let after = run_regs(&m, &[1, 2, 3]);
            assert_eq!(before, after, "taken={taken}");
        }
    }

    #[test]
    fn converted_diamond_has_multiple_defs_of_same_register() {
        // The classic multiple-register-definition situation of §3.2:
        // both guarded movs write r2.
        let mut m = diamond(true);
        if_convert(&mut m.cfg, &ProfileData::default(), &all());
        let entry = m.cfg.block(BlockId(0));
        let guarded_movs = entry
            .ops
            .iter()
            .filter(|o| o.guard.is_some() && matches!(o.op, MirOp::Movi { dst, .. } if dst == g(2)))
            .count();
        assert_eq!(guarded_movs, 2);
    }

    #[test]
    fn triangle_then_is_converted() {
        // if (r1 < 10) r2 = 1; r3 = r2
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let t = cfg.new_block();
        let j = cfg.new_block();
        cfg.block_mut(a).ops.push(movi(g(1), 5));
        cfg.block_mut(a).term = Terminator::CondBranch {
            cond: cond_lt(g(1), 10),
            then_bb: t,
            else_bb: j,
        };
        cfg.block_mut(t).ops.push(movi(g(2), 1));
        cfg.block_mut(t).term = Terminator::Jump(j);
        cfg.block_mut(j).ops.push(GuardedOp::new(MirOp::Alu {
            kind: AluKind::Add,
            dst: g(3),
            src1: g(2),
            src2: Operand::Imm(0),
        }));
        let mut m = Module {
            cfg,
            ..Module::default()
        };
        let before = run_regs(&m, &[2, 3]);
        let stats = if_convert(&mut m.cfg, &ProfileData::default(), &all());
        assert_eq!(stats.converted, 1);
        assert_eq!(m.cfg.cond_branch_count(), 0);
        assert_eq!(run_regs(&m, &[2, 3]), before);
    }

    /// The paper's Figure 1: a diamond on cond1 followed (on the join path)
    /// by a triangle on cond2 whose then-side exits to `ret`.
    fn figure1() -> Module {
        let mut cfg = Cfg::new();
        let a = cfg.new_block(); // cmp cond1; br
        let x = cfg.new_block(); // mov r32 = 0
        let y = cfg.new_block(); // mov r32 = 1; cmp cond2; br
        let ret = cfg.new_block(); // mov r35 = 1; halt ("br.ret")
        let cont = cfg.new_block(); // mov r33 = r32
                                    // r40 = cond1 source, r41 = cond2 source
        cfg.block_mut(a).term = Terminator::CondBranch {
            cond: cond_lt(g(40), 10),
            then_bb: x,
            else_bb: y,
        };
        cfg.block_mut(x).ops.push(movi(g(32), 0));
        cfg.block_mut(x).term = Terminator::Jump(cont);
        cfg.block_mut(y).ops.push(movi(g(32), 1));
        cfg.block_mut(y).term = Terminator::CondBranch {
            cond: cond_lt(g(41), 10),
            then_bb: ret,
            else_bb: cont,
        };
        cfg.block_mut(ret).ops.push(movi(g(35), 1));
        cfg.block_mut(ret).term = Terminator::Halt;
        cfg.block_mut(cont).ops.push(GuardedOp::new(MirOp::Alu {
            kind: AluKind::Add,
            dst: g(33),
            src1: g(32),
            src2: Operand::Imm(0),
        }));
        Module {
            cfg,
            ..Module::default()
        }
    }

    #[test]
    fn figure1_nested_structure_collapses_to_region_with_pred_branch() {
        for (c1, c2) in [(5, 5), (5, 50), (50, 5), (50, 50)] {
            let mut m = figure1();
            m.cfg.block_mut(BlockId(0)).ops.insert(0, movi(g(40), c1));
            m.cfg.block_mut(BlockId(0)).ops.insert(1, movi(g(41), c2));
            let before = run_regs(&m, &[32, 33, 35]);
            let stats = if_convert(&mut m.cfg, &ProfileData::default(), &all());
            m.cfg.validate().unwrap();
            assert!(
                stats.converted >= 1,
                "the diamond (with its inner exit branch) converts"
            );
            // Exactly one conditional branch remains: the region branch
            // (the paper's transformed br.ret).
            assert_eq!(m.cfg.cond_branch_count(), 1);
            let entry = m.cfg.block(BlockId(0));
            assert!(
                matches!(entry.term, Terminator::PredBranch { .. }),
                "remaining branch is predicate-guarded"
            );
            // And the inner compare is itself guarded (nested predication,
            // as in Figure 1(b): "(p2) cmp.unc p3, p0 = cond2").
            let guarded_defpred = entry
                .ops
                .iter()
                .any(|o| o.guard.is_some() && matches!(o.op, MirOp::DefPred { .. }));
            assert!(guarded_defpred, "inner DefPred carries the region guard");
            assert_eq!(run_regs(&m, &[32, 33, 35]), before, "c1={c1} c2={c2}");
        }
    }

    #[test]
    fn loop_latch_is_never_converted() {
        // while (r1 < 100) { r1 += 1 }
        let mut cfg = Cfg::new();
        let entry = cfg.new_block();
        let header = cfg.new_block();
        let body = cfg.new_block();
        let exit = cfg.new_block();
        cfg.block_mut(entry).ops.push(movi(g(1), 0));
        cfg.block_mut(entry).term = Terminator::Jump(header);
        cfg.block_mut(header).term = Terminator::CondBranch {
            cond: cond_lt(g(1), 100),
            then_bb: body,
            else_bb: exit,
        };
        cfg.block_mut(body).ops.push(GuardedOp::new(MirOp::Alu {
            kind: AluKind::Add,
            dst: g(1),
            src1: g(1),
            src2: Operand::Imm(1),
        }));
        cfg.block_mut(body).term = Terminator::Jump(header);
        let mut m = Module {
            cfg,
            ..Module::default()
        };
        let stats = if_convert(&mut m.cfg, &ProfileData::default(), &all());
        assert_eq!(stats.converted, 0, "back edges keep the header multi-pred");
        assert_eq!(run_regs(&m, &[1]), vec![100]);
    }

    #[test]
    fn profile_gate_spares_predictable_branches() {
        // Profile the diamond; its branch is perfectly biased, so a
        // realistic threshold rejects it.
        let m = diamond(true);
        let out = lower(&m, true).unwrap();
        let profile = profile_run(&out, 10_000).unwrap();
        let mut m2 = diamond(true);
        let cfg = IfConvertConfig {
            min_execs: 0,
            ..IfConvertConfig::default()
        };
        let stats = if_convert(&mut m2.cfg, &profile, &cfg);
        assert_eq!(stats.converted, 0);
        assert_eq!(stats.rejected_by_profile, 1);
    }

    #[test]
    fn size_gate_rejects_fat_sides() {
        let mut m = diamond(true);
        for k in 0..30 {
            m.cfg.block_mut(BlockId(1)).ops.push(movi(g(60), k));
        }
        let stats = if_convert(&mut m.cfg, &ProfileData::default(), &all());
        assert_eq!(stats.converted, 0);
        assert!(stats.rejected_by_size >= 1);
    }

    #[test]
    fn halt_halt_diamond_merges() {
        // Both sides end the program: mergeable (Halt, Halt).
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let t = cfg.new_block();
        let f = cfg.new_block();
        cfg.block_mut(a).ops.push(movi(g(1), 5));
        cfg.block_mut(a).term = Terminator::CondBranch {
            cond: cond_lt(g(1), 10),
            then_bb: t,
            else_bb: f,
        };
        cfg.block_mut(t).ops.push(movi(g(2), 1));
        cfg.block_mut(t).term = Terminator::Halt;
        cfg.block_mut(f).ops.push(movi(g(2), 2));
        cfg.block_mut(f).term = Terminator::Halt;
        let mut m = Module {
            cfg,
            ..Module::default()
        };
        let before = run_regs(&m, &[2]);
        let stats = if_convert(&mut m.cfg, &ProfileData::default(), &all());
        assert_eq!(stats.converted, 1);
        assert_eq!(m.cfg.cond_branch_count(), 0);
        assert_eq!(run_regs(&m, &[2]), before);
    }

    #[test]
    fn triangle_else_is_converted() {
        // if (cond) join else { r2 = 9 }; — the else-side hangs off the
        // fallthrough and rejoins at the then-target.
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let j = cfg.new_block();
        let f = cfg.new_block();
        cfg.block_mut(a).ops.push(movi(g(1), 50)); // cond false → else
        cfg.block_mut(a).term = Terminator::CondBranch {
            cond: cond_lt(g(1), 10),
            then_bb: j,
            else_bb: f,
        };
        cfg.block_mut(f).ops.push(movi(g(2), 9));
        cfg.block_mut(f).term = Terminator::Jump(j);
        cfg.block_mut(j).ops.push(movi(g(3), 3));
        let mut m = Module {
            cfg,
            ..Module::default()
        };
        let before = run_regs(&m, &[2, 3]);
        let stats = if_convert(&mut m.cfg, &ProfileData::default(), &all());
        assert_eq!(stats.converted, 1);
        assert_eq!(m.cfg.cond_branch_count(), 0);
        assert_eq!(run_regs(&m, &[2, 3]), before);
    }

    #[test]
    fn chain_merge_attributes_profile_to_moved_terminator() {
        // A → (jump) → B where B ends in a hot branch; the profile gate
        // must consult B's profile even after B's terminator is merged
        // into A.
        use crate::profile::BranchProfile;
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let b = cfg.new_block();
        let t = cfg.new_block();
        let j = cfg.new_block();
        cfg.block_mut(a).ops.push(movi(g(1), 5));
        cfg.block_mut(a).term = Terminator::Jump(b);
        cfg.block_mut(b).ops.push(movi(g(2), 1));
        cfg.block_mut(b).term = Terminator::CondBranch {
            cond: cond_lt(g(1), 10),
            then_bb: t,
            else_bb: j,
        };
        cfg.block_mut(t).ops.push(movi(g(3), 1));
        cfg.block_mut(t).term = Terminator::Jump(j);
        // Profile: B's branch is hard; nothing recorded for A.
        let mut prof = ProfileData::default();
        prof.by_block.insert(
            b,
            BranchProfile {
                execs: 1000,
                taken: 500,
                mispredicts: 400,
            },
        );
        let cfg_opts = IfConvertConfig {
            min_execs: 10,
            ..IfConvertConfig::default()
        };
        let mut m = Module {
            cfg,
            ..Module::default()
        };
        let stats = if_convert(&mut m.cfg, &prof, &cfg_opts);
        assert!(stats.merged_chains >= 1, "A and B merged");
        assert_eq!(
            stats.converted, 1,
            "B's hard branch converted via A's merged terminator"
        );
    }

    #[test]
    fn predicated_store_survives_conversion() {
        // if (r1 < 10) mem[r4] = r5 — stores must be guarded, not hoisted.
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let t = cfg.new_block();
        let j = cfg.new_block();
        cfg.block_mut(a).ops.push(movi(g(1), 50)); // NOT taken
        cfg.block_mut(a).ops.push(movi(g(4), 0x9000));
        cfg.block_mut(a).ops.push(movi(g(5), 77));
        cfg.block_mut(a).term = Terminator::CondBranch {
            cond: cond_lt(g(1), 10),
            then_bb: t,
            else_bb: j,
        };
        cfg.block_mut(t).ops.push(GuardedOp::new(MirOp::Store {
            src: g(5),
            base: g(4),
            offset: 0,
        }));
        cfg.block_mut(t).term = Terminator::Jump(j);
        cfg.block_mut(j).ops.push(GuardedOp::new(MirOp::Load {
            dst: g(6),
            base: g(4),
            offset: 0,
        }));
        let mut m = Module {
            cfg,
            ..Module::default()
        };
        if_convert(&mut m.cfg, &ProfileData::default(), &all());
        assert_eq!(
            run_regs(&m, &[6]),
            vec![0],
            "nullified store left memory untouched"
        );
    }
}
