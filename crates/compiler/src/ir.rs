//! A control-flow-graph IR with first-class predicates.
//!
//! The IR mirrors the compare-and-branch model of the target ISA: branch
//! conditions are explicit [`Cond`] expressions until lowering (for
//! [`Terminator::CondBranch`]), while if-converted code uses
//! [`MirOp::DefPred`] definitions and [`Terminator::PredBranch`] region
//! branches — the paper's Figure 1(b) shape.
//!
//! Virtual predicates ([`PredId`]) are block-local by construction: every
//! use (guard or predicate branch) must be dominated by a [`MirOp::DefPred`]
//! in the *same* block. [`Cfg::validate`] enforces this, which is what makes
//! predicate register assignment during lowering trivially correct.

use std::collections::HashSet;
use std::fmt;

use ppsim_isa::{AluKind, CmpRel, FpuKind, Fr, Gr, Operand};

/// A virtual predicate name (assigned a physical `Pr` at lowering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

/// A basic-block name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%p{}", self.0)
    }
}

/// A branch/compare condition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Cond {
    /// Integer relation `src1 <rel> src2`.
    Int {
        /// Relation.
        rel: CmpRel,
        /// Left operand.
        src1: Gr,
        /// Right operand.
        src2: Operand,
    },
    /// Floating-point relation `src1 <rel> src2`.
    Fp {
        /// Relation.
        rel: CmpRel,
        /// Left operand.
        src1: Fr,
        /// Right operand.
        src2: Fr,
    },
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Int { rel, src1, src2 } => write!(f, "{src1} {rel:?} {src2}"),
            Cond::Fp { rel, src1, src2 } => write!(f, "{src1} {rel:?} {src2}"),
        }
    }
}

/// A straight-line mid-level operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MirOp {
    /// Integer ALU.
    Alu {
        /// Operation kind.
        kind: AluKind,
        /// Destination.
        dst: Gr,
        /// First source.
        src1: Gr,
        /// Second source.
        src2: Operand,
    },
    /// Load immediate.
    Movi {
        /// Destination.
        dst: Gr,
        /// Value.
        imm: i64,
    },
    /// Floating-point arithmetic.
    Fpu {
        /// Operation kind.
        kind: FpuKind,
        /// Destination.
        dst: Fr,
        /// First source.
        src1: Fr,
        /// Second source.
        src2: Fr,
    },
    /// Integer → float conversion.
    Itof {
        /// Destination.
        dst: Fr,
        /// Source.
        src: Gr,
    },
    /// Float → integer conversion.
    Ftoi {
        /// Destination.
        dst: Gr,
        /// Source.
        src: Fr,
    },
    /// Integer load.
    Load {
        /// Destination.
        dst: Gr,
        /// Base register.
        base: Gr,
        /// Byte offset.
        offset: i64,
    },
    /// Integer store.
    Store {
        /// Source.
        src: Gr,
        /// Base register.
        base: Gr,
        /// Byte offset.
        offset: i64,
    },
    /// Float load.
    Loadf {
        /// Destination.
        dst: Fr,
        /// Base register.
        base: Gr,
        /// Byte offset.
        offset: i64,
    },
    /// Float store.
    Storef {
        /// Source.
        src: Fr,
        /// Base register.
        base: Gr,
        /// Byte offset.
        offset: i64,
    },
    /// Unconditional-type predicate definition (`cmp.unc` semantics: when
    /// the op's guard is false, both targets are cleared).
    DefPred {
        /// True target (receives the condition).
        pt: Option<PredId>,
        /// False target (receives the complement).
        pf: Option<PredId>,
        /// The condition.
        cond: Cond,
    },
}

impl MirOp {
    /// Whether this operation defines the given predicate.
    pub fn defines_pred(&self, p: PredId) -> bool {
        matches!(self, MirOp::DefPred { pt, pf, .. } if *pt == Some(p) || *pf == Some(p))
    }
}

/// An operation with an optional qualifying predicate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardedOp {
    /// Guard: the op only takes architectural effect when this predicate is
    /// true (`None` = always).
    pub guard: Option<PredId>,
    /// The operation.
    pub op: MirOp,
}

impl GuardedOp {
    /// An unguarded operation.
    pub fn new(op: MirOp) -> Self {
        GuardedOp { guard: None, op }
    }

    /// A guarded operation.
    pub fn guarded(guard: PredId, op: MirOp) -> Self {
        GuardedOp {
            guard: Some(guard),
            op,
        }
    }
}

/// Block terminators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on an explicit condition (pre-if-conversion form;
    /// lowering synthesizes the compare and the predicate).
    CondBranch {
        /// The condition.
        cond: Cond,
        /// Successor when the condition holds.
        then_bb: BlockId,
        /// Successor otherwise.
        else_bb: BlockId,
    },
    /// Two-way branch on an already-defined predicate (the *region branch*
    /// left behind by if-conversion — the paper's `(p3) br.ret`).
    PredBranch {
        /// The guarding predicate.
        pred: PredId,
        /// Successor when the predicate is true.
        then_bb: BlockId,
        /// Successor otherwise.
        else_bb: BlockId,
    },
    /// Program end.
    Halt,
}

impl Terminator {
    /// Successor blocks (0, 1 or 2).
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match *self {
            Terminator::Jump(t) => (Some(t), None),
            Terminator::CondBranch {
                then_bb, else_bb, ..
            }
            | Terminator::PredBranch {
                then_bb, else_bb, ..
            } => (Some(then_bb), Some(else_bb)),
            Terminator::Halt => (None, None),
        };
        a.into_iter().chain(b)
    }
}

/// A basic block: guarded straight-line ops plus a terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Operations in program order.
    pub ops: Vec<GuardedOp>,
    /// Control-flow exit.
    pub term: Terminator,
}

/// IR validation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// A terminator names a block that does not exist.
    BadTarget {
        /// The block with the bad terminator.
        block: u32,
    },
    /// A predicate is used before any definition in its block.
    UseBeforeDef {
        /// The offending block.
        block: u32,
        /// The undefined predicate.
        pred: u32,
    },
    /// A `DefPred` names the same predicate for both targets.
    DuplicateDefTargets {
        /// The offending block.
        block: u32,
    },
    /// The CFG has no blocks.
    Empty,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BadTarget { block } => write!(f, "bb{block} targets a nonexistent block"),
            IrError::UseBeforeDef { block, pred } => {
                write!(
                    f,
                    "bb{block} uses %p{pred} before any definition in the block"
                )
            }
            IrError::DuplicateDefTargets { block } => {
                write!(
                    f,
                    "bb{block} has a DefPred writing the same predicate twice"
                )
            }
            IrError::Empty => write!(f, "CFG has no blocks"),
        }
    }
}

impl std::error::Error for IrError {}

/// A control-flow graph. Block 0 is the entry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cfg {
    /// The blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    next_pred: u32,
}

impl Cfg {
    /// An empty CFG.
    pub fn new() -> Self {
        Cfg::default()
    }

    /// Appends an empty block ending in [`Terminator::Halt`].
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            ops: Vec::new(),
            term: Terminator::Halt,
        });
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Allocates a fresh virtual predicate.
    pub fn new_pred(&mut self) -> PredId {
        self.next_pred += 1;
        PredId(self.next_pred - 1)
    }

    /// Shared access to a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Predecessor counts for every block (index = block id).
    pub fn predecessor_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.blocks.len()];
        for b in &self.blocks {
            for s in b.term.successors() {
                counts[s.0 as usize] += 1;
            }
        }
        counts
    }

    /// Predecessor counts considering only edges from blocks reachable
    /// from the entry. Transformations that strand blocks (if-conversion,
    /// chain merging) must use this, or stale edges from dead blocks
    /// suppress later rewrites.
    pub fn reachable_predecessor_counts(&self) -> Vec<u32> {
        let reachable = self.reachable();
        let mut counts = vec![0u32; self.blocks.len()];
        for id in self.block_ids() {
            if !reachable.contains(&id) {
                continue;
            }
            for s in self.block(id).term.successors() {
                counts[s.0 as usize] += 1;
            }
        }
        counts
    }

    /// The set of blocks reachable from the entry.
    pub fn reachable(&self) -> HashSet<BlockId> {
        let mut seen = HashSet::new();
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![BlockId(0)];
        while let Some(b) = stack.pop() {
            if seen.insert(b) {
                stack.extend(self.block(b).term.successors());
            }
        }
        seen
    }

    /// Counts conditional branches (`CondBranch` + `PredBranch`) in
    /// reachable blocks.
    pub fn cond_branch_count(&self) -> usize {
        self.reachable()
            .iter()
            .filter(|b| {
                matches!(
                    self.block(**b).term,
                    Terminator::CondBranch { .. } | Terminator::PredBranch { .. }
                )
            })
            .count()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// See [`IrError`] for the conditions checked.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.blocks.is_empty() {
            return Err(IrError::Empty);
        }
        let n = self.blocks.len() as u32;
        for (i, b) in self.blocks.iter().enumerate() {
            let block = i as u32;
            for s in b.term.successors() {
                if s.0 >= n {
                    return Err(IrError::BadTarget { block });
                }
            }
            let mut defined: HashSet<PredId> = HashSet::new();
            for g in &b.ops {
                if let Some(p) = g.guard {
                    if !defined.contains(&p) {
                        return Err(IrError::UseBeforeDef { block, pred: p.0 });
                    }
                }
                if let MirOp::DefPred { pt, pf, .. } = g.op {
                    if pt.is_some() && pt == pf {
                        return Err(IrError::DuplicateDefTargets { block });
                    }
                    defined.extend(pt);
                    defined.extend(pf);
                }
            }
            if let Terminator::PredBranch { pred, .. } = b.term {
                if !defined.contains(&pred) {
                    return Err(IrError::UseBeforeDef {
                        block,
                        pred: pred.0,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{i}:")?;
            for g in &b.ops {
                match g.guard {
                    Some(p) => writeln!(f, "    ({p}) {:?}", g.op)?,
                    None => writeln!(f, "    {:?}", g.op)?,
                }
            }
            match &b.term {
                Terminator::Jump(t) => writeln!(f, "    jump {t}")?,
                Terminator::CondBranch {
                    cond,
                    then_bb,
                    else_bb,
                } => writeln!(f, "    if {cond} then {then_bb} else {else_bb}")?,
                Terminator::PredBranch {
                    pred,
                    then_bb,
                    else_bb,
                } => writeln!(f, "    if {pred} then {then_bb} else {else_bb}")?,
                Terminator::Halt => writeln!(f, "    halt")?,
            }
        }
        Ok(())
    }
}

/// A compilation unit: CFG plus initialized data and registers.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Initialized data memory.
    pub data: Vec<ppsim_isa::DataSegment>,
    /// Initial integer register values.
    pub gr_init: Vec<i64>,
    /// Initial floating-point register values.
    pub fr_init: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u8) -> Gr {
        Gr::new(i)
    }

    fn cond() -> Cond {
        Cond::Int {
            rel: CmpRel::Lt,
            src1: g(1),
            src2: Operand::Imm(0),
        }
    }

    #[test]
    fn builder_allocates_sequentially() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let b = cfg.new_block();
        assert_eq!((a, b), (BlockId(0), BlockId(1)));
        assert_eq!(cfg.new_pred(), PredId(0));
        assert_eq!(cfg.new_pred(), PredId(1));
    }

    #[test]
    fn successors_per_terminator() {
        let t = Terminator::Jump(BlockId(3));
        assert_eq!(t.successors().collect::<Vec<_>>(), vec![BlockId(3)]);
        let t = Terminator::CondBranch {
            cond: cond(),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(t.successors().count(), 2);
        assert_eq!(Terminator::Halt.successors().count(), 0);
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        cfg.block_mut(a).term = Terminator::Jump(BlockId(7));
        assert_eq!(cfg.validate(), Err(IrError::BadTarget { block: 0 }));
    }

    #[test]
    fn validate_rejects_guard_before_def() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let p = cfg.new_pred();
        cfg.block_mut(a)
            .ops
            .push(GuardedOp::guarded(p, MirOp::Movi { dst: g(1), imm: 0 }));
        assert_eq!(
            cfg.validate(),
            Err(IrError::UseBeforeDef { block: 0, pred: 0 })
        );
    }

    #[test]
    fn validate_accepts_def_then_use() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let p = cfg.new_pred();
        let q = cfg.new_pred();
        let blk = cfg.block_mut(a);
        blk.ops.push(GuardedOp::new(MirOp::DefPred {
            pt: Some(p),
            pf: Some(q),
            cond: cond(),
        }));
        blk.ops
            .push(GuardedOp::guarded(p, MirOp::Movi { dst: g(1), imm: 0 }));
        blk.term = Terminator::PredBranch {
            pred: q,
            then_bb: a,
            else_bb: a,
        };
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_pred_branch_without_def() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let p = cfg.new_pred();
        cfg.block_mut(a).term = Terminator::PredBranch {
            pred: p,
            then_bb: a,
            else_bb: a,
        };
        assert_eq!(
            cfg.validate(),
            Err(IrError::UseBeforeDef { block: 0, pred: 0 })
        );
    }

    #[test]
    fn validate_rejects_duplicate_def_targets() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let p = cfg.new_pred();
        cfg.block_mut(a).ops.push(GuardedOp::new(MirOp::DefPred {
            pt: Some(p),
            pf: Some(p),
            cond: cond(),
        }));
        assert_eq!(
            cfg.validate(),
            Err(IrError::DuplicateDefTargets { block: 0 })
        );
    }

    #[test]
    fn reachability_and_pred_counts() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        let b = cfg.new_block();
        let c = cfg.new_block();
        let dead = cfg.new_block();
        cfg.block_mut(a).term = Terminator::CondBranch {
            cond: cond(),
            then_bb: b,
            else_bb: c,
        };
        cfg.block_mut(b).term = Terminator::Jump(c);
        // c halts; dead unreachable.
        let r = cfg.reachable();
        assert!(r.contains(&a) && r.contains(&b) && r.contains(&c));
        assert!(!r.contains(&dead));
        assert_eq!(cfg.predecessor_counts(), vec![0, 1, 2, 0]);
        assert_eq!(cfg.cond_branch_count(), 1);
    }

    #[test]
    fn display_renders_blocks() {
        let mut cfg = Cfg::new();
        let a = cfg.new_block();
        cfg.block_mut(a)
            .ops
            .push(GuardedOp::new(MirOp::Movi { dst: g(1), imm: 7 }));
        let s = cfg.to_string();
        assert!(s.contains("bb0:"), "{s}");
        assert!(s.contains("halt"), "{s}");
    }
}
