//! Deterministic pseudo-random number generation for workload synthesis.
//!
//! The workspace builds fully offline with no external crates, so workload
//! data streams come from this small self-contained generator instead of
//! `rand`. The algorithm (splitmix64 seed expansion into xoshiro256**) is
//! frozen: benchmark bytes must never change under a toolchain or
//! dependency bump, because experiment results are content-addressed by
//! the runner's job hashes and regenerating different data would silently
//! invalidate every published number.

/// A seedable xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Expands a 64-bit seed into the full generator state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        SmallRng {
            s: [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// A uniformly random signed word.
    pub fn gen_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// Uniform in `[lo, hi)` via the multiply-shift range reduction.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u64;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as i64)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.range_i64(-5, 100);
            assert!((-5..100).contains(&v));
            let f = r.range_f64(0.5, 1.5);
            assert!((0.5..1.5).contains(&f));
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_i64_covers_endpoints() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.range_i64(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn bool_bias_is_roughly_respected() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
