//! # ppsim-bench — the figure/table regeneration harness
//!
//! Binaries (run with `cargo run --release -p ppsim-bench --bin <name>`):
//!
//! * `table1` — prints the simulated machine parameters and predictor
//!   storage budgets (Table 1),
//! * `fig5` — conventional vs predicate predictor on non-if-converted
//!   binaries; pass `--ideal` for the alias-free/perfect-history variant,
//! * `fig6a` — PEP-PA vs conventional vs predicate predictor on
//!   if-converted binaries,
//! * `fig6b` — early-resolved vs correlation breakdown,
//! * `ipc_ablation` — selective predicate prediction vs cmov predication,
//! * `sweeps` — budget/history/threshold/repair sensitivity sweeps,
//! * `all` — everything above in one run, plus the paper-vs-measured
//!   summary used by `EXPERIMENTS.md`.
//!
//! Every binary accepts the runner flags `--jobs N` (worker threads, 0 =
//! all CPUs), `--no-cache` (skip the on-disk result cache), `--cache-dir
//! PATH`, and `--json PATH` (write the experiment's data plus execution
//! telemetry as a JSON artifact). Environment knobs: `PPSIM_COMMITS`
//! (committed instructions per run, default 500000), `PPSIM_ONLY`
//! (comma-separated benchmark subset), `PPSIM_CACHE_DIR`.
//!
//! The session plumbing itself lives in [`ppsim_core::session`] so
//! downstream tools can reuse it; this crate re-exports it for the
//! binaries.

pub use ppsim_core::{setup, Session};
