//! # ppsim-bench — the figure/table regeneration harness
//!
//! Binaries (run with `cargo run --release -p ppsim-bench --bin <name>`):
//!
//! * `table1` — prints the simulated machine parameters and predictor
//!   storage budgets (Table 1),
//! * `fig5` — conventional vs predicate predictor on non-if-converted
//!   binaries; pass `--ideal` for the alias-free/perfect-history variant,
//! * `fig6a` — PEP-PA vs conventional vs predicate predictor on
//!   if-converted binaries,
//! * `fig6b` — early-resolved vs correlation breakdown,
//! * `ipc_ablation` — selective predicate prediction vs cmov predication,
//! * `all` — everything above in one run, plus the paper-vs-measured
//!   summary used by `EXPERIMENTS.md`.
//!
//! Environment knobs: `PPSIM_COMMITS` (committed instructions per run,
//! default 500000), `PPSIM_ONLY` (comma-separated benchmark subset).
//!
//! Criterion micro-benchmarks (`cargo bench -p ppsim-bench`) cover
//! predictor lookup/train throughput, end-to-end simulator speed, and the
//! compiler passes.

use ppsim_core::{experiments, ExperimentConfig};

/// Shared entry point: builds the experiment config from the environment
/// and echoes the run parameters.
pub fn setup(name: &str) -> ExperimentConfig {
    let cfg = ExperimentConfig::from_env();
    eprintln!(
        "[{name}] commits/run = {}, benchmarks = {}",
        cfg.commits,
        if cfg.only.is_empty() { "all 22".to_string() } else { cfg.only.join(",") }
    );
    cfg
}

/// Runs every experiment and prints the consolidated report (the `all`
/// binary body; exposed for integration tests).
pub fn run_all(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str(&experiments::table1(cfg));
    out.push('\n');
    let fig5 = experiments::fig5(cfg, false);
    out.push_str(&fig5.table().to_string());
    out.push_str(&format!(
        "average accuracy gain (predicate over conventional): {:+.2} points (paper: +1.86)\n\n",
        fig5.accuracy_gain(0, 1)
    ));
    let fig6a = experiments::fig6a(cfg);
    out.push_str(&fig6a.table().to_string());
    out.push_str(&format!(
        "average accuracy gain (predicate over conventional): {:+.2} points (paper: +1.5 vs best)\n\n",
        fig6a.accuracy_gain(1, 2)
    ));
    let fig6b = experiments::fig6b(cfg);
    out.push_str(&fig6b.table().to_string());
    out.push_str(&format!(
        "averages: early {:+.2}, correlation {:+.2} (paper: +0.5 / +1.0)\n\n",
        fig6b.average_early(),
        fig6b.average_correlation()
    ));
    let ipc = experiments::ipc_ablation(cfg);
    out.push_str(&ipc.table().to_string());
    out.push_str(&format!(
        "geomean speedup of selective predication: {:.3} (ICS'06 reports ~1.11)\n",
        ipc.geomean_speedup()
    ));
    out
}
