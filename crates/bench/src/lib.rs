//! # ppsim-bench — the figure/table regeneration harness
//!
//! Binaries (run with `cargo run --release -p ppsim-bench --bin <name>`):
//!
//! * `table1` — prints the simulated machine parameters and predictor
//!   storage budgets (Table 1),
//! * `fig5` — conventional vs predicate predictor on non-if-converted
//!   binaries; pass `--ideal` for the alias-free/perfect-history variant,
//! * `fig6a` — PEP-PA vs conventional vs predicate predictor on
//!   if-converted binaries,
//! * `fig6b` — early-resolved vs correlation breakdown,
//! * `ipc_ablation` — selective predicate prediction vs cmov predication,
//! * `sweeps` — budget/history/threshold/repair sensitivity sweeps,
//! * `all` — everything above in one run, plus the paper-vs-measured
//!   summary used by `EXPERIMENTS.md`.
//!
//! Every binary accepts the runner flags `--jobs N` (worker threads, 0 =
//! all CPUs), `--no-cache` (skip the on-disk result cache), `--cache-dir
//! PATH`, and `--json PATH` (write the experiment's data plus execution
//! telemetry as a JSON artifact). Environment knobs: `PPSIM_COMMITS`
//! (committed instructions per run, default 500000), `PPSIM_ONLY`
//! (comma-separated benchmark subset), `PPSIM_CACHE_DIR`.

use std::path::PathBuf;

use ppsim_core::{ExperimentConfig, Json, Runner, RunnerOptions};

/// A figure binary's execution context: the runner, the experiment
/// config, and the artifact/flag plumbing shared by every binary.
pub struct Session {
    /// The (parallel, cache-aware) execution engine.
    pub runner: Runner,
    /// Commit budget, benchmark subset, machine.
    pub cfg: ExperimentConfig,
    /// Where to write the JSON artifact (`--json PATH`).
    pub json_path: Option<PathBuf>,
    /// Binary name (for logging and the artifact's `experiment` field).
    name: String,
    /// Arguments not consumed by the shared flags.
    rest: Vec<String>,
}

/// Shared entry point: parses the runner flags and `--json` from the
/// command line, builds the experiment config from the environment, and
/// echoes the run parameters to stderr.
pub fn setup(name: &str) -> Session {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match RunnerOptions::from_args(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[{name}] {e}");
            std::process::exit(2);
        }
    };
    let mut json_path = None;
    let mut remaining = Vec::new();
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("[{name}] --json needs a path");
                    std::process::exit(2);
                }
            }
        } else {
            remaining.push(a);
        }
    }
    let cfg = ExperimentConfig::from_env();
    eprintln!(
        "[{name}] commits/run = {}, benchmarks = {}",
        cfg.commits,
        if cfg.only.is_empty() {
            "all 22".to_string()
        } else {
            cfg.only.join(",")
        }
    );
    Session {
        runner: Runner::new(opts),
        cfg,
        json_path,
        name: name.to_string(),
        rest: remaining,
    }
}

impl Session {
    /// Whether an unconsumed flag (e.g. `--ideal`) was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// First unconsumed positional argument, if any.
    pub fn positional(&self) -> Option<&str> {
        self.rest
            .iter()
            .find(|a| !a.starts_with("--"))
            .map(|s| s.as_str())
    }

    /// Finishes the run: writes the JSON artifact when `--json` was given
    /// (experiment data + execution telemetry) and prints the telemetry
    /// summary to stderr. Stdout stays purely deterministic.
    pub fn finish(&self, data: Json) {
        let telemetry = self.runner.telemetry();
        if let Some(path) = &self.json_path {
            let doc = Json::obj()
                .field("experiment", self.name.as_str())
                .field("commits", self.cfg.commits)
                .field("data", data)
                .field("telemetry", telemetry.to_json());
            match std::fs::write(path, format!("{doc}\n")) {
                Ok(()) => eprintln!("[{}] wrote {}", self.name, path.display()),
                Err(e) => {
                    eprintln!("[{}] failed to write {}: {e}", self.name, path.display());
                    std::process::exit(1);
                }
            }
        }
        eprintln!("[{}] {}", self.name, telemetry.summary());
    }
}
