//! Sensitivity sweeps: predictor budget, history length and if-conversion
//! threshold ablations (the design-space context around Table 1's
//! operating point).

use ppsim_core::sweep;

fn main() {
    let mut cfg = ppsim_bench::setup("sweeps");
    if cfg.only.is_empty() {
        // Sweeps multiply run counts by the number of points; default to a
        // representative subset (override with PPSIM_ONLY).
        cfg.only = ["gzip", "gcc", "crafty", "twolf", "swim", "art"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        eprintln!("[sweeps] defaulting to subset: {}", cfg.only.join(","));
    }
    println!("{}", sweep::size_sweep(&cfg, false).table());
    println!("{}", sweep::size_sweep(&cfg, true).table());
    println!("{}", sweep::history_sweep(&cfg, true).table());
    println!("{}", sweep::threshold_table(&sweep::threshold_sweep(&cfg)));
    println!("{}", sweep::repair_ablation(&cfg).table());
}
