//! Sensitivity sweeps: predictor budget, history length and if-conversion
//! threshold ablations (the design-space context around Table 1's
//! operating point). Pass `--json PATH` for a machine-readable artifact.

use ppsim_core::sweep;
use ppsim_core::Json;

fn main() {
    let mut s = ppsim_bench::setup("sweeps");
    if s.cfg.only.is_empty() {
        // Sweeps multiply run counts by the number of points; default to a
        // representative subset (override with PPSIM_ONLY).
        s.cfg.only = ["gzip", "gcc", "crafty", "twolf", "swim", "art"]
            .iter()
            .map(|x| x.to_string())
            .collect();
        eprintln!("[sweeps] defaulting to subset: {}", s.cfg.only.join(","));
    }
    let size_plain = sweep::size_sweep(&s.runner, &s.cfg, false);
    let size_ifconv = sweep::size_sweep(&s.runner, &s.cfg, true);
    let history = sweep::history_sweep(&s.runner, &s.cfg, true);
    let threshold = sweep::threshold_sweep(&s.runner, &s.cfg);
    let repair = sweep::repair_ablation(&s.runner, &s.cfg);
    println!("{}", size_plain.table());
    println!("{}", size_ifconv.table());
    println!("{}", history.table());
    println!("{}", sweep::threshold_table(&threshold));
    println!("{}", repair.table());
    s.finish(
        Json::obj()
            .field("size_plain", size_plain.to_json())
            .field("size_ifconv", size_ifconv.to_json())
            .field("history", history.to_json())
            .field("threshold", sweep::threshold_json(&threshold))
            .field("repair", repair.to_json()),
    );
}
