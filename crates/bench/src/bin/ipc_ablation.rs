//! Selective predicate prediction vs cmov-style predication: the IPC
//! ablation behind the paper's §3.2/§5 claims. Pass `--json PATH` for a
//! machine-readable artifact.

fn main() {
    let s = ppsim_bench::setup("ipc_ablation");
    let r = ppsim_core::experiments::ipc_ablation(&s.runner, &s.cfg);
    println!("{}", r.table());
    println!(
        "geomean speedup of selective predication: {:.3} (ICS'06 reports ~1.11)",
        r.geomean_speedup()
    );
    s.finish(r.to_json());
}
