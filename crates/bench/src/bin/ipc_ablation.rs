//! Selective predicate prediction vs cmov-style predication: the IPC
//! ablation behind the paper's §3.2/§5 claims.

fn main() {
    let cfg = ppsim_bench::setup("ipc_ablation");
    let r = ppsim_core::experiments::ipc_ablation(&cfg);
    println!("{}", r.table());
    println!(
        "geomean speedup of selective predication: {:.3} (ICS'06 reports ~1.11)",
        r.geomean_speedup()
    );
}
