//! Deep diagnostic: per-branch-site survival and profile through the
//! if-conversion flow.

use ppsim_compiler::ifconvert::{if_convert, IfConvertConfig};
use ppsim_compiler::lower::lower;
use ppsim_compiler::profile::profile_run;
use ppsim_compiler::workloads::{build_module, spec2000_suite};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "crafty".into());
    let spec = spec2000_suite()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap();
    let mut module = build_module(&spec);
    let lowered = lower(&module, true).unwrap();
    let prof = profile_run(&lowered, 400_000).unwrap();
    if std::env::args().any(|a| a == "--listing") {
        println!("{}", lowered.program.listing());
    }
    println!(
        "pre-ifconv: {} blocks, {} cond branches",
        module.cfg.len(),
        module.cfg.cond_branch_count()
    );
    let mut sites: Vec<_> = prof.by_block.iter().collect();
    sites.sort_by_key(|(b, _)| **b);
    for (b, p) in &sites {
        println!(
            "  {b:?}: execs={} taken={:.2} misp={:.3}",
            p.execs,
            p.taken_rate(),
            p.misp_rate()
        );
    }
    let stats = if_convert(&mut module.cfg, &prof, &IfConvertConfig::default());
    println!("ifconvert: {stats:?}");
    let lowered2 = lower(&module, true).unwrap();
    println!(
        "post: {} cond branches at slots:",
        lowered2.program.count_insns(|i| i.is_cond_branch())
    );
    let prof2 = profile_run(&lowered2, 400_000).unwrap();
    let mut sites2: Vec<_> = prof2.by_block.iter().collect();
    sites2.sort_by_key(|(b, _)| **b);
    for (b, p) in &sites2 {
        println!(
            "  {b:?}: execs={} taken={:.2} misp={:.3}",
            p.execs,
            p.taken_rate(),
            p.misp_rate()
        );
    }
}
