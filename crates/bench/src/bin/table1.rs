//! Prints Table 1: the simulated machine parameters and predictor budgets.

fn main() {
    let s = ppsim_bench::setup("table1");
    println!("{}", ppsim_core::experiments::table1(&s.cfg));
}
