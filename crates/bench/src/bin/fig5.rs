//! Regenerates Figure 5: conventional vs predicate predictor on
//! non-if-converted binaries. Pass `--ideal` for the idealized variant,
//! `--json PATH` for a machine-readable artifact.

fn main() {
    let s = ppsim_bench::setup("fig5");
    let ideal = s.has_flag("--ideal");
    let r = ppsim_core::experiments::fig5(&s.runner, &s.cfg, ideal);
    println!("{}", r.table());
    println!(
        "average accuracy gain (predicate over conventional): {:+.2} points (paper: {})",
        r.accuracy_gain(0, 1),
        if ideal { "+2.24 idealized" } else { "+1.86" }
    );
    s.finish(r.to_json());
}
