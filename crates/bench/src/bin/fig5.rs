//! Regenerates Figure 5: conventional vs predicate predictor on
//! non-if-converted binaries. Pass `--ideal` for the idealized variant.

fn main() {
    let ideal = std::env::args().any(|a| a == "--ideal");
    let cfg = ppsim_bench::setup("fig5");
    let r = ppsim_core::experiments::fig5(&cfg, ideal);
    println!("{}", r.table());
    println!(
        "average accuracy gain (predicate over conventional): {:+.2} points (paper: {})",
        r.accuracy_gain(0, 1),
        if ideal { "+2.24 idealized" } else { "+1.86" }
    );
}
