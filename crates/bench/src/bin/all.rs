//! Runs every experiment (Table 1, Figures 5/6a/6b, the IPC ablation) and
//! prints the consolidated report.

fn main() {
    let cfg = ppsim_bench::setup("all");
    println!("{}", ppsim_bench::run_all(&cfg));
}
