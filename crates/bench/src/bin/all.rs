//! Runs every experiment (Table 1, Figures 5/6a/6b, the IPC ablation) and
//! prints the consolidated report. Pass `--json PATH` for a
//! machine-readable artifact covering all figures.

use ppsim_core::experiments;

fn main() {
    let s = ppsim_bench::setup("all");
    println!("{}", experiments::full_report(&s.runner, &s.cfg));
    // Figure data comes from the cache the report run just populated, so
    // the artifact costs no extra simulation (modulo --no-cache).
    s.finish(experiments::full_report_json(&s.runner, &s.cfg));
}
