//! Diagnostic dump: per-benchmark detailed statistics for each scheme.

use ppsim_compiler::{compile, CompileOptions};
use ppsim_isa::Machine;
use ppsim_pipeline::{PredicationModel, SchemeKind, SimOptions};

fn main() {
    let session = ppsim_bench::setup("diag");
    let cfg = &session.cfg;
    for spec in ppsim_compiler::spec2000_suite() {
        if !cfg.selected(spec.name) {
            continue;
        }
        let ifconv = session.has_flag("--ifconv");
        let opts = if ifconv {
            CompileOptions::with_ifconv()
        } else {
            CompileOptions::no_ifconv()
        };
        let compiled = compile(&spec, &opts).unwrap();
        println!(
            "== {} (ifconv={ifconv}) static insns={} cond-br={} cmps={}",
            spec.name,
            compiled.program.len(),
            compiled.program.count_insns(|i| i.is_cond_branch()),
            compiled.program.count_insns(|i| i.is_cmp())
        );
        if let Some(st) = &compiled.ifconvert {
            println!("   ifconvert: {st:?}");
        }
        if session.has_flag("--predication") {
            for model in [PredicationModel::Cmov, PredicationModel::Selective] {
                let mut sim = SimOptions::new(SchemeKind::Predicate, model)
                    .core(cfg.core)
                    .build_source(Machine::new(&compiled.program))
                    .unwrap();
                let r = sim.run(cfg.commits);
                let s = r.stats;
                println!(
                    "   {:?}: ipc={:.3} cancel={} unguard={} flushes={} nullified={} misp={:.2}%",
                    model,
                    s.ipc(),
                    s.cancelled_at_rename,
                    s.unguarded_at_rename,
                    s.predication_flushes,
                    s.nullified,
                    s.misprediction_rate() * 100.0
                );
            }
            continue;
        }
        for scheme in [SchemeKind::Conventional, SchemeKind::Predicate] {
            let mut sim = SimOptions::new(scheme, PredicationModel::Cmov)
                .core(cfg.core)
                .shadow(true)
                .build_source(Machine::new(&compiled.program))
                .unwrap();
            let r = sim.run(cfg.commits);
            let s = r.stats;
            if std::env::var("PPSIM_HIST").is_ok() {
                // branch_pcs is already sorted by slot.
                for &(slot, e, m) in &s.branch_pcs {
                    if e > 200 {
                        println!(
                            "      slot {slot}: execs={e} misp={m} ({:.1}%)",
                            m as f64 / e as f64 * 100.0
                        );
                    }
                }
            }
            println!("   {:14} misp={:5.2}% er={:5.2}% er_saves={} pp_wrong={:5.2}% ({}p) ovr={} shadow={:5.2}% ipc={:.2}",
                scheme.name(),
                s.misprediction_rate()*100.0,
                s.early_resolved_rate()*100.0,
                s.early_resolved_saves,
                s.predicate_misprediction_rate()*100.0,
                s.predicate_predictions,
                s.overrides,
                s.shadow_mispredicts as f64 / s.cond_branches.max(1) as f64 * 100.0,
                s.ipc());
        }
    }
}
