//! Regenerates Figure 6a: PEP-PA vs conventional vs predicate predictor
//! on if-converted binaries. Pass `--json PATH` for a machine-readable
//! artifact.

fn main() {
    use ppsim_core::experiments::fig6a_col;
    use ppsim_pipeline::SchemeKind;

    let s = ppsim_bench::setup("fig6a");
    let r = ppsim_core::experiments::fig6a(&s.runner, &s.cfg);
    let (peppa, conv, pred) = (
        fig6a_col(SchemeKind::PepPa),
        fig6a_col(SchemeKind::Conventional),
        fig6a_col(SchemeKind::Predicate),
    );
    println!("{}", r.table());
    println!(
        "average accuracy gain (predicate over conventional): {:+.2} points (paper: +1.5 vs best other)",
        r.accuracy_gain(conv, pred)
    );
    println!(
        "average accuracy gain (conventional over pep-pa):    {:+.2} points (paper: positive — PEP-PA degrades out of order)",
        r.accuracy_gain(peppa, conv)
    );
    println!(
        "average accuracy gain (tage over conventional):      {:+.2} points; (tage-h2p over tage): {:+.2}; (tage-predicate over predicate): {:+.2}",
        r.accuracy_gain(conv, fig6a_col(SchemeKind::Tage)),
        r.accuracy_gain(fig6a_col(SchemeKind::Tage), fig6a_col(SchemeKind::TageH2p)),
        r.accuracy_gain(pred, fig6a_col(SchemeKind::TagePredicate)),
    );
    s.finish(r.to_json());
}
