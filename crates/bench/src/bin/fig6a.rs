//! Regenerates Figure 6a: PEP-PA vs conventional vs predicate predictor
//! on if-converted binaries. Pass `--json PATH` for a machine-readable
//! artifact.

fn main() {
    let s = ppsim_bench::setup("fig6a");
    let r = ppsim_core::experiments::fig6a(&s.runner, &s.cfg);
    println!("{}", r.table());
    println!(
        "average accuracy gain (predicate over conventional): {:+.2} points (paper: +1.5 vs best other)",
        r.accuracy_gain(1, 2)
    );
    println!(
        "average accuracy gain (conventional over pep-pa):    {:+.2} points (paper: positive — PEP-PA degrades out of order)",
        r.accuracy_gain(0, 1)
    );
    s.finish(r.to_json());
}
