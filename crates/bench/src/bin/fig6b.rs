//! Regenerates Figure 6b: the early-resolved vs correlation breakdown of
//! the predicate predictor's accuracy gain on if-converted binaries.
//! Pass `--json PATH` for a machine-readable artifact.

fn main() {
    let s = ppsim_bench::setup("fig6b");
    let r = ppsim_core::experiments::fig6b(&s.runner, &s.cfg);
    println!("{}", r.table());
    println!(
        "averages: early-resolved {:+.2} points, correlation {:+.2} points (paper: +0.5 / +1.0)",
        r.average_early(),
        r.average_correlation()
    );
    s.finish(r.to_json());
}
