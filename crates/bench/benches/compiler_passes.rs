//! Criterion benchmarks for the compiler: workload generation, lowering,
//! profiling and the if-conversion pass.

use criterion::{criterion_group, criterion_main, Criterion};
use ppsim_compiler::ifconvert::{if_convert, IfConvertConfig};
use ppsim_compiler::lower::lower;
use ppsim_compiler::profile::profile_run;
use ppsim_compiler::workloads::{build_module, spec2000_suite};

fn benches(c: &mut Criterion) {
    let spec = spec2000_suite().into_iter().find(|s| s.name == "gcc").unwrap();
    c.bench_function("build_module/gcc", |b| b.iter(|| build_module(&spec)));

    let module = build_module(&spec);
    c.bench_function("lower+hoist/gcc", |b| b.iter(|| lower(&module, true).unwrap()));

    let lowered = lower(&module, true).unwrap();
    c.bench_function("profile_100k/gcc", |b| {
        b.iter(|| profile_run(&lowered, 100_000).unwrap())
    });

    let profile = profile_run(&lowered, 100_000).unwrap();
    c.bench_function("if_convert/gcc", |b| {
        b.iter_batched(
            || module.cfg.clone(),
            |mut cfg| if_convert(&mut cfg, &profile, &IfConvertConfig::default()),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(compiler_benches, benches);
criterion_main!(compiler_benches);
