//! Criterion micro-benchmarks: predictor lookup/train throughput for every
//! prediction structure the paper evaluates.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ppsim_predictors::{
    BranchPredictor, Gshare, GshareConfig, PepPa, PepPaConfig, PerceptronConfig,
    PerceptronPredictor, PredicateConfig, PredicatePredictor,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const N: u64 = 10_000;

fn outcomes() -> Vec<(u64, bool)> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (0..N)
        .map(|_| {
            let pc = 0x4000_0000u64 + u64::from(rng.gen::<u16>()) * 16;
            (pc, rng.gen_bool(0.6))
        })
        .collect()
}

fn bench_branch_predictor<P: BranchPredictor>(c: &mut Criterion, name: &str, mut p: P) {
    let stream = outcomes();
    let mut g = c.benchmark_group("predictors");
    g.throughput(Throughput::Elements(N));
    g.bench_function(name, |b| {
        b.iter(|| {
            for &(pc, taken) in &stream {
                let pred = p.predict(black_box(pc), 1);
                if pred.taken != taken {
                    p.recover(&pred, taken);
                }
                p.train(&pred, taken);
            }
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_branch_predictor(c, "gshare-4kb", Gshare::new(GshareConfig::paper_4kb()));
    bench_branch_predictor(
        c,
        "perceptron-148kb",
        PerceptronPredictor::new(PerceptronConfig::paper_148kb()),
    );
    bench_branch_predictor(c, "pep-pa-144kb", PepPa::new(PepPaConfig::paper_144kb()));

    let stream = outcomes();
    let mut g = c.benchmark_group("predictors");
    g.throughput(Throughput::Elements(N));
    g.bench_function("predicate-148kb (two targets)", |b| {
        let mut p = PredicatePredictor::new(PredicateConfig::paper_148kb());
        b.iter(|| {
            for &(pc, v) in &stream {
                let cp = p.predict_compare(black_box(pc), true, true);
                let pt = cp.pt.unwrap();
                if pt.value != v {
                    p.fix_history_bit(0, v);
                }
                p.train(&pt, v);
                p.train(&cp.pf.unwrap(), !v);
            }
        })
    });
    g.finish();
}

criterion_group!(predictor_benches, benches);
criterion_main!(predictor_benches);
