//! Criterion benchmark: end-to-end simulated instructions per second for
//! each prediction scheme on one representative workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ppsim_compiler::{compile, CompileOptions};
use ppsim_pipeline::{CoreConfig, PredicationModel, SchemeKind, Simulator};

const COMMITS: u64 = 50_000;

fn benches(c: &mut Criterion) {
    let spec = ppsim_compiler::spec2000_suite()
        .into_iter()
        .find(|s| s.name == "crafty")
        .expect("crafty exists");
    let plain = compile(&spec, &CompileOptions::no_ifconv()).unwrap();
    let ifconv = compile(&spec, &CompileOptions::with_ifconv()).unwrap();

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(COMMITS));
    g.sample_size(10);
    for scheme in [SchemeKind::Conventional, SchemeKind::PepPa, SchemeKind::Predicate] {
        g.bench_function(format!("{}/plain", scheme.name()), |b| {
            b.iter(|| {
                Simulator::new(&plain.program, scheme, PredicationModel::Cmov, CoreConfig::paper())
                    .run(COMMITS)
            })
        });
    }
    g.bench_function("predicate-selective/ifconv", |b| {
        b.iter(|| {
            Simulator::new(
                &ifconv.program,
                SchemeKind::Predicate,
                PredicationModel::Selective,
                CoreConfig::paper(),
            )
            .run(COMMITS)
        })
    });
    g.finish();
}

criterion_group!(simulator_benches, benches);
criterion_main!(simulator_benches);
