//! # ppsim-obs — the observability layer
//!
//! Every other ppsim crate *produces* behaviour; this crate makes that
//! behaviour *measurable*. It is deliberately dependency-free so the
//! whole workspace — predictors, memory hierarchy, pipeline, runner —
//! can sit on top of it:
//!
//! * [`MetricSet`] — a typed metric registry (counters, ratios, per-PC
//!   histograms) with **stable, sorted names**. `SimStats` and
//!   `HierarchyStats` export onto it, so every report and JSON artifact
//!   draws from one canonical namespace instead of ad-hoc field dumps.
//! * [`StallBucket`] / [`StallBreakdown`] — per-stage stall attribution.
//!   The pipeline charges every simulated cycle to exactly one bucket, so
//!   `cycles == Σ buckets` holds by construction and IPC regressions can
//!   be diagnosed from the artifact alone.
//! * [`TraceEvent`] / [`EventRing`] — a bounded ring-buffer event trace of
//!   the paper's mechanisms (predictions made/overridden, early
//!   resolution, rename-time cancel/unguard, flushes), exported through
//!   `ppsim run --trace-events`.
//! * [`Json`] — the workspace's hand-rolled, deterministic JSON value
//!   tree (the workspace bans serde). Lives here so metric and event
//!   export need no higher-level crate.
//!
//! # Example
//!
//! ```
//! use ppsim_obs::{MetricSet, StallBreakdown, StallBucket};
//!
//! let mut m = MetricSet::new();
//! m.counter("cycles", 100);
//! m.counter("committed", 250);
//! m.ratio("ipc", 250, 100);
//! assert_eq!(m.counter_value("cycles"), Some(100));
//! assert!(m.to_json().to_string().contains("\"cycles\""));
//!
//! let mut stalls = StallBreakdown::default();
//! stalls.charge(StallBucket::FetchMiss, 7);
//! assert_eq!(stalls.total(), 7);
//! ```

#![deny(missing_docs)]

mod event;
pub mod json;
mod metric;
mod stall;

pub use event::{EventKind, EventRing, TraceEvent};
pub use json::Json;
pub use metric::{MetricSet, MetricValue, PcEntry, PcHistogram};
pub use stall::{StallBreakdown, StallBucket};
