//! Per-stage stall attribution.
//!
//! The pipeline charges the commit-cycle advance of every committed
//! instruction to exactly one [`StallBucket`], so the sum of all buckets
//! equals the total cycle count **by construction** — there is no
//! "unaccounted" remainder and no double counting. The buckets answer the
//! first question of any IPC regression: *where did the cycles go?*

use crate::json::Json;
use crate::metric::MetricSet;

/// Why the commit frontier advanced: each simulated cycle belongs to
/// exactly one of these causes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallBucket {
    /// Instruction-cache (or ITLB) miss delayed fetch.
    FetchMiss,
    /// A structural resource (ROB, issue queue, LSQ, physical registers)
    /// gated rename.
    RenameStall,
    /// Waiting in an issue queue: operand dependences, functional-unit
    /// contention, or execution latency (including data-cache misses).
    IssueWait,
    /// In-order commit bandwidth: the machine was draining at its commit
    /// width (this is also the "useful work" baseline bucket).
    CommitBound,
    /// Branch-misprediction flush and refetch recovery (including
    /// second-level override re-steer bubbles).
    FlushRecovery,
    /// Flush caused by wrong predicate speculation on an if-converted
    /// instruction (selective predication).
    PredicationFlush,
}

impl StallBucket {
    /// Every bucket, in canonical (serialization) order.
    pub const ALL: [StallBucket; 6] = [
        StallBucket::FetchMiss,
        StallBucket::RenameStall,
        StallBucket::IssueWait,
        StallBucket::CommitBound,
        StallBucket::FlushRecovery,
        StallBucket::PredicationFlush,
    ];

    /// Stable snake_case name used in metrics, cache files and JSON.
    pub fn name(self) -> &'static str {
        match self {
            StallBucket::FetchMiss => "fetch_miss",
            StallBucket::RenameStall => "rename_stall",
            StallBucket::IssueWait => "issue_wait",
            StallBucket::CommitBound => "commit_bound",
            StallBucket::FlushRecovery => "flush_recovery",
            StallBucket::PredicationFlush => "predication_flush",
        }
    }

    /// Parses a [`StallBucket::name`] rendering back to the bucket.
    pub fn parse(name: &str) -> Option<StallBucket> {
        StallBucket::ALL.into_iter().find(|b| b.name() == name)
    }

    fn index(self) -> usize {
        StallBucket::ALL
            .iter()
            .position(|b| *b == self)
            .expect("bucket in ALL")
    }
}

/// Cycles charged per [`StallBucket`]. `total()` equals the simulation's
/// cycle count when maintained by the pipeline's attribution rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    cycles: [u64; 6],
}

impl StallBreakdown {
    /// Charges `cycles` to `bucket`.
    pub fn charge(&mut self, bucket: StallBucket, cycles: u64) {
        self.cycles[bucket.index()] += cycles;
    }

    /// Cycles charged to `bucket` so far.
    pub fn get(&self, bucket: StallBucket) -> u64 {
        self.cycles[bucket.index()]
    }

    /// Overwrites the cycles of `bucket` (cache replay).
    pub fn set(&mut self, bucket: StallBucket, cycles: u64) {
        self.cycles[bucket.index()] = cycles;
    }

    /// Sum over all buckets — equal to the run's total cycles by
    /// construction.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Iterates `(bucket, cycles)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (StallBucket, u64)> + '_ {
        StallBucket::ALL.into_iter().map(|b| (b, self.get(b)))
    }

    /// Registers every bucket as a counter on `metrics` under
    /// `<prefix>.<bucket>` (e.g. `stall.fetch_miss`).
    pub fn register(&self, metrics: &mut MetricSet, prefix: &str) {
        for (bucket, cycles) in self.iter() {
            metrics.counter(&format!("{prefix}.{}", bucket.name()), cycles);
        }
    }

    /// Renders the breakdown as a JSON object in canonical bucket order.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (bucket, cycles) in self.iter() {
            obj = obj.field(bucket.name(), Json::Int(cycles as i64));
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut s = StallBreakdown::default();
        s.charge(StallBucket::FetchMiss, 3);
        s.charge(StallBucket::FetchMiss, 2);
        s.charge(StallBucket::CommitBound, 10);
        assert_eq!(s.get(StallBucket::FetchMiss), 5);
        assert_eq!(s.total(), 15);
        s.set(StallBucket::FetchMiss, 1);
        assert_eq!(s.total(), 11);
    }

    #[test]
    fn names_round_trip() {
        for b in StallBucket::ALL {
            assert_eq!(StallBucket::parse(b.name()), Some(b));
        }
        assert_eq!(StallBucket::parse("nope"), None);
    }

    #[test]
    fn registers_prefixed_counters() {
        let mut s = StallBreakdown::default();
        s.charge(StallBucket::IssueWait, 4);
        let mut m = MetricSet::new();
        s.register(&mut m, "stall");
        assert_eq!(m.counter_value("stall.issue_wait"), Some(4));
        assert_eq!(m.counter_value("stall.fetch_miss"), Some(0));
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn json_lists_every_bucket() {
        let j = StallBreakdown::default().to_json().to_string();
        for b in StallBucket::ALL {
            assert!(j.contains(b.name()), "{j}");
        }
    }
}
