//! Bounded ring-buffer event trace.
//!
//! The pipeline emits a [`TraceEvent`] at each interesting mechanism point
//! (prediction made / overridden / undone, early resolution, rename-time
//! cancel / unguard, flushes, retirement). An [`EventRing`] keeps the
//! **last** `capacity` events — the tail of a run is where mispredictions
//! cluster when something goes wrong — and counts what it dropped, so an
//! exported trace is honest about truncation.

use crate::json::Json;
use std::collections::VecDeque;
use std::fmt;

/// What happened at a trace point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A branch received its final front-end prediction.
    PredictionMade {
        /// Predicted direction.
        taken: bool,
        /// True when the prediction came from a predicate value (PPRF)
        /// rather than the pattern-history predictor.
        from_predicate: bool,
    },
    /// The second-level (override) predictor re-steered the front end
    /// away from the first-level prediction.
    PredictionOverridden {
        /// First-level direction that was discarded.
        from: bool,
        /// Overriding direction the fetch stream followed.
        to: bool,
    },
    /// A predictor update was rolled back on a squashed wrong path
    /// (§3.3 history repair).
    PredictionUndone,
    /// The branch resolved at rename from an already-computed predicate
    /// value — no prediction needed, no misprediction possible.
    EarlyResolve {
        /// Resolved direction.
        taken: bool,
    },
    /// Selective predication cancelled an if-converted instruction at
    /// rename because its guarding predicate was predicted false.
    CancelAtRename {
        /// True when the predicate prediction later proved wrong.
        wrong: bool,
    },
    /// Selective predication dropped the guard of an if-converted
    /// instruction at rename because its predicate was predicted true.
    UnguardAtRename {
        /// True when the predicate prediction later proved wrong.
        wrong: bool,
    },
    /// Pipeline flush from a wrong predicate speculation on an
    /// if-converted instruction.
    PredicationFlush,
    /// Pipeline flush from a branch misprediction.
    BranchFlush,
    /// A sampled run crossed from its warmup phase into the measured
    /// window: statistics were rebased here, so events before this
    /// marker trained predictors and caches but are excluded from the
    /// reported counters. The marker is positional — `cycle` is the
    /// rebase point (the last warmup commit); `seq` and `pc` are zero.
    MeasurementBegin,
    /// An instruction retired; timestamps of each stage it passed.
    Retire {
        /// Fetch cycle.
        fetch: u64,
        /// Rename cycle.
        rename: u64,
        /// Issue cycle.
        issue: u64,
        /// Execution-complete cycle.
        exec: u64,
        /// Commit cycle.
        commit: u64,
    },
}

impl EventKind {
    /// Stable snake_case tag used in JSON export and display.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::PredictionMade { .. } => "prediction_made",
            EventKind::PredictionOverridden { .. } => "prediction_overridden",
            EventKind::PredictionUndone => "prediction_undone",
            EventKind::EarlyResolve { .. } => "early_resolve",
            EventKind::CancelAtRename { .. } => "cancel_at_rename",
            EventKind::UnguardAtRename { .. } => "unguard_at_rename",
            EventKind::PredicationFlush => "predication_flush",
            EventKind::BranchFlush => "branch_flush",
            EventKind::MeasurementBegin => "measurement_begin",
            EventKind::Retire { .. } => "retire",
        }
    }

    fn detail_fields(&self, obj: Json) -> Json {
        match *self {
            EventKind::PredictionMade {
                taken,
                from_predicate,
            } => obj
                .field("taken", Json::Bool(taken))
                .field("from_predicate", Json::Bool(from_predicate)),
            EventKind::PredictionOverridden { from, to } => obj
                .field("from", Json::Bool(from))
                .field("to", Json::Bool(to)),
            EventKind::EarlyResolve { taken } => obj.field("taken", Json::Bool(taken)),
            EventKind::CancelAtRename { wrong } | EventKind::UnguardAtRename { wrong } => {
                obj.field("wrong", Json::Bool(wrong))
            }
            EventKind::Retire {
                fetch,
                rename,
                issue,
                exec,
                commit,
            } => obj
                .field("fetch", Json::Int(fetch as i64))
                .field("rename", Json::Int(rename as i64))
                .field("issue", Json::Int(issue as i64))
                .field("exec", Json::Int(exec as i64))
                .field("commit", Json::Int(commit as i64)),
            EventKind::PredictionUndone
            | EventKind::PredicationFlush
            | EventKind::BranchFlush
            | EventKind::MeasurementBegin => obj,
        }
    }
}

/// One traced event: which dynamic instruction (`seq`), which static site
/// (`pc`), when (`cycle`), and what happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dynamic instruction sequence number.
    pub seq: u64,
    /// Static program counter / instruction slot.
    pub pc: u64,
    /// Simulated cycle the event is attributed to.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Renders the event as a flat JSON object.
    pub fn to_json(&self) -> Json {
        let obj = Json::obj()
            .field("seq", Json::Int(self.seq as i64))
            .field("pc", Json::Int(self.pc as i64))
            .field("cycle", Json::Int(self.cycle as i64))
            .field("kind", Json::Str(self.kind.tag().to_string()));
        self.kind.detail_fields(obj)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8}] seq {:>6} pc {:>4} {}",
            self.cycle,
            self.seq,
            self.pc,
            self.kind.tag()
        )?;
        match self.kind {
            EventKind::PredictionMade {
                taken,
                from_predicate,
            } => write!(
                f,
                " taken={taken}{}",
                if from_predicate { " (predicate)" } else { "" }
            ),
            EventKind::PredictionOverridden { from, to } => write!(f, " {from}->{to}"),
            EventKind::EarlyResolve { taken } => write!(f, " taken={taken}"),
            EventKind::CancelAtRename { wrong } | EventKind::UnguardAtRename { wrong } => {
                write!(f, "{}", if wrong { " WRONG" } else { "" })
            }
            EventKind::Retire {
                fetch,
                rename,
                issue,
                exec,
                commit,
            } => write!(f, " f={fetch} r={rename} i={issue} x={exec} c={commit}"),
            _ => Ok(()),
        }
    }
}

/// A bounded event trace that keeps the **most recent** `capacity` events
/// and counts how many older ones were dropped.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    recorded: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (`0` disables recording
    /// but still counts).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            recorded: 0,
        }
    }

    /// Records an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        self.recorded += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring retains no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events that were recorded but evicted by newer ones.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Renders the trace as `{"recorded", "dropped", "events": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("recorded", Json::Int(self.recorded as i64))
            .field("dropped", Json::Int(self.dropped() as i64))
            .field(
                "events",
                Json::Arr(self.buf.iter().map(TraceEvent::to_json).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            pc: seq * 4,
            cycle: seq * 10,
            kind,
        }
    }

    #[test]
    fn ring_keeps_latest_and_counts_drops() {
        let mut r = EventRing::new(2);
        for i in 0..5 {
            r.push(ev(i, EventKind::BranchFlush));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 3);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [3, 4], "latest events survive");
    }

    #[test]
    fn zero_capacity_counts_without_storing() {
        let mut r = EventRing::new(0);
        r.push(ev(1, EventKind::PredictionUndone));
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn json_includes_kind_details() {
        let mut r = EventRing::new(8);
        r.push(ev(
            1,
            EventKind::PredictionMade {
                taken: true,
                from_predicate: true,
            },
        ));
        r.push(ev(
            2,
            EventKind::PredictionOverridden {
                from: false,
                to: true,
            },
        ));
        r.push(ev(
            3,
            EventKind::Retire {
                fetch: 1,
                rename: 2,
                issue: 3,
                exec: 4,
                commit: 5,
            },
        ));
        let j = r.to_json().to_string();
        assert!(j.contains("\"prediction_made\""), "{j}");
        assert!(j.contains("\"from_predicate\":true"), "{j}");
        assert!(j.contains("\"commit\":5"), "{j}");
        let parsed = Json::parse(&j).unwrap();
        assert_eq!(parsed.get("recorded").and_then(Json::as_i64), Some(3));
    }

    #[test]
    fn measurement_marker_is_detail_free() {
        let e = ev(0, EventKind::MeasurementBegin);
        assert_eq!(e.kind.tag(), "measurement_begin");
        let j = e.to_json().to_string();
        assert!(j.contains("\"measurement_begin\""), "{j}");
        // Positional marker: nothing beyond the common fields.
        let parsed = Json::parse(&j).unwrap();
        assert!(parsed.get("taken").is_none(), "{j}");
    }

    #[test]
    fn display_is_compact() {
        let e = ev(7, EventKind::CancelAtRename { wrong: true });
        let s = e.to_string();
        assert!(s.contains("cancel_at_rename"), "{s}");
        assert!(s.contains("WRONG"), "{s}");
    }
}
