//! Hand-rolled JSON: a value tree, a deterministic emitter and a
//! validating parser.
//!
//! The workspace bans serde, but every figure binary and `ppsim suite`
//! must emit machine-readable artifacts for trajectory tracking, so this
//! module implements the subset of JSON we need from scratch. Object keys
//! keep insertion order, making emission byte-deterministic — a property
//! the runner's reproducibility tests rely on. The parser exists chiefly
//! so tests can round-trip emitted artifacts and assert well-formedness
//! without external tooling.

use std::fmt;

/// A JSON value. Numbers are split into `Int` (emitted exactly) and
/// `Num` (floating point) so counters survive round trips bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, emitted without a fractional part.
    Int(i64),
    /// A floating-point number. Non-finite values emit as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object (builder entry point).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (builder style). Panics on non-objects.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a dotted path through nested objects and arrays:
    /// `"data.stats.commits"` descends object fields; a numeric segment
    /// like `"rows.0"` indexes into an array. Returns `None` as soon as
    /// any segment fails to resolve.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = match cur {
                Json::Obj(_) => cur.get(seg)?,
                Json::Arr(items) => items.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// The value as f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as i64 if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a string slice if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` is the shortest round-trippable rendering
                    // and always keeps a fractional part (or exponent),
                    // so whole-number floats stay floats on re-parse.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (object, array or scalar at top level).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        // Counters beyond i64 range cannot occur in our simulations; keep
        // the conversion total anyway.
        Json::Int(i64::try_from(u).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::Int(i64::try_from(u).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at offset {start}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad integer `{text}` at offset {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_deterministic_objects() {
        let j = Json::obj()
            .field("name", "fig5")
            .field("rate", 0.0423)
            .field("jobs", 44u64)
            .field("ok", true)
            .field("note", Json::Null)
            .field("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)]));
        assert_eq!(
            j.to_string(),
            r#"{"name":"fig5","rate":0.0423,"jobs":44,"ok":true,"note":null,"rows":[1,2]}"#
        );
    }

    #[test]
    fn round_trips_structures() {
        let j = Json::obj()
            .field("title", "Figure 5 — misprediction \"rates\"\n")
            .field("neg", -17i64)
            .field("pi", 3.140625)
            .field(
                "rows",
                Json::Arr(vec![
                    Json::obj().field("b", "gzip").field("r", 0.051),
                    Json::obj().field("b", "twolf").field("r", 0.124),
                ]),
            );
        let text = j.to_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\u0041\" : [ 1 , 2.5 , \"x\\ty\" ] } ").unwrap();
        assert_eq!(v.get("aA").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("aA").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\ty")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integers_round_trip_exactly() {
        let big = i64::MAX - 7;
        let text = Json::Int(big).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_i64(), Some(big));
    }

    #[test]
    fn get_path_descends_objects_and_arrays() {
        let doc = Json::parse(r#"{"data":{"rows":[{"ipc":1.5},{"ipc":2.0}],"n":2}}"#).unwrap();
        assert_eq!(doc.get_path("data.n").and_then(Json::as_i64), Some(2));
        assert_eq!(
            doc.get_path("data.rows.1.ipc").and_then(Json::as_f64),
            Some(2.0)
        );
        assert!(doc.get_path("data.rows.2.ipc").is_none());
        assert!(doc.get_path("data.rows.x").is_none());
        assert!(doc.get_path("missing").is_none());
        assert!(doc.get_path("data.n.deeper").is_none());
    }
}
