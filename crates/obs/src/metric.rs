//! The typed metric registry.
//!
//! A [`MetricSet`] is a flat namespace of metrics with **stable names**:
//! once a name ships in an artifact it never changes meaning. Three metric
//! shapes cover everything the simulator reports:
//!
//! * **counters** — monotone `u64` event counts (`cycles`, `mispredicts`),
//! * **ratios** — a numerator/denominator pair kept *unreduced* so the
//!   derived value survives serialization bit-exactly and the denominator
//!   stays inspectable (`ipc = committed / cycles`),
//! * **per-PC histograms** — `(pc, executions, events)` rows sorted by PC,
//!   the per-static-site attribution that flat counter bags cannot express
//!   (which *branch* mispredicts, not just how often).
//!
//! Names are kept sorted; insertion is `O(log n)` search + insert and
//! duplicate names panic (a registry discipline bug, not a runtime
//! condition). Export order is therefore deterministic byte-for-byte.

use crate::json::Json;

/// The value of one registered metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotone event count.
    Counter(u64),
    /// An unreduced numerator/denominator pair.
    Ratio {
        /// Numerator.
        num: u64,
        /// Denominator (a zero denominator yields a value of 0.0).
        den: u64,
    },
}

impl MetricValue {
    /// The metric as a floating-point value (counters cast; ratios
    /// divide, with `0/0 = 0`).
    pub fn value(&self) -> f64 {
        match *self {
            MetricValue::Counter(c) => c as f64,
            MetricValue::Ratio { num, den } => {
                if den == 0 {
                    0.0
                } else {
                    num as f64 / den as f64
                }
            }
        }
    }
}

/// One row of a per-PC histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcEntry {
    /// Static site identifier (program counter or instruction slot).
    pub pc: u64,
    /// Times the site executed.
    pub execs: u64,
    /// Times the measured event occurred there (e.g. mispredictions).
    pub events: u64,
}

/// A per-PC histogram: rows sorted by `pc`, so iteration and export are
/// deterministic regardless of the collection order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PcHistogram {
    entries: Vec<PcEntry>,
}

impl PcHistogram {
    /// Builds a histogram from unsorted rows (sorts by PC; duplicate PCs
    /// are merged by summing their counters).
    pub fn from_rows(mut rows: Vec<PcEntry>) -> Self {
        rows.sort_by_key(|e| e.pc);
        let mut entries: Vec<PcEntry> = Vec::with_capacity(rows.len());
        for row in rows {
            match entries.last_mut() {
                Some(last) if last.pc == row.pc => {
                    last.execs += row.execs;
                    last.events += row.events;
                }
                _ => entries.push(row),
            }
        }
        PcHistogram { entries }
    }

    /// The rows, sorted by PC.
    pub fn entries(&self) -> &[PcEntry] {
        &self.entries
    }

    /// Number of distinct sites.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The row for `pc`, if present.
    pub fn get(&self, pc: u64) -> Option<&PcEntry> {
        self.entries
            .binary_search_by_key(&pc, |e| e.pc)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Renders as a JSON array of `[pc, execs, events]` triples.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|e| {
                    Json::Arr(vec![
                        Json::Int(e.pc as i64),
                        Json::Int(e.execs as i64),
                        Json::Int(e.events as i64),
                    ])
                })
                .collect(),
        )
    }
}

/// The metric registry: named counters, ratios and per-PC histograms,
/// kept sorted by name for deterministic export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricSet {
    scalars: Vec<(String, MetricValue)>,
    histograms: Vec<(String, PcHistogram)>,
}

impl MetricSet {
    /// An empty registry.
    pub fn new() -> Self {
        MetricSet::default()
    }

    fn insert_scalar(&mut self, name: &str, value: MetricValue) {
        match self.scalars.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(_) => panic!("duplicate metric name `{name}`"),
            Err(i) => self.scalars.insert(i, (name.to_string(), value)),
        }
    }

    /// Registers a counter. Panics on a duplicate name.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.insert_scalar(name, MetricValue::Counter(value));
    }

    /// Registers a ratio (kept unreduced). Panics on a duplicate name.
    pub fn ratio(&mut self, name: &str, num: u64, den: u64) {
        self.insert_scalar(name, MetricValue::Ratio { num, den });
    }

    /// Registers a per-PC histogram. Panics on a duplicate name.
    pub fn histogram(&mut self, name: &str, hist: PcHistogram) {
        match self
            .histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(_) => panic!("duplicate histogram name `{name}`"),
            Err(i) => self.histograms.insert(i, (name.to_string(), hist)),
        }
    }

    /// Copies every metric of `other` in under `prefix` (joined with a
    /// dot), e.g. `absorb("mem", hierarchy_metrics)` registers
    /// `mem.l1d.accesses`.
    pub fn absorb(&mut self, prefix: &str, other: &MetricSet) {
        for (name, value) in &other.scalars {
            self.insert_scalar(&format!("{prefix}.{name}"), *value);
        }
        for (name, hist) in &other.histograms {
            self.histogram(&format!("{prefix}.{name}"), hist.clone());
        }
    }

    /// Looks up a scalar metric by name.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.scalars
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.scalars[i].1)
    }

    /// A counter's value, if `name` is a registered counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(c) => Some(c),
            MetricValue::Ratio { .. } => None,
        }
    }

    /// Looks up a per-PC histogram by name.
    pub fn histogram_for(&self, name: &str) -> Option<&PcHistogram> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Iterates scalar metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricValue)> {
        self.scalars.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterates per-PC histograms in name order.
    pub fn iter_histograms(&self) -> impl Iterator<Item = (&str, &PcHistogram)> {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Number of scalar metrics.
    pub fn len(&self) -> usize {
        self.scalars.len()
    }

    /// Whether the registry holds no scalar metrics.
    pub fn is_empty(&self) -> bool {
        self.scalars.is_empty()
    }

    /// Renders the registry as one JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"committed": 250, "cycles": 100},
    ///   "ratios": {"ipc": {"num": 250, "den": 100, "value": 2.5}},
    ///   "per_pc": {"branch_sites": [[4, 100, 3]]}
    /// }
    /// ```
    ///
    /// Keys appear in sorted name order, making the rendering
    /// byte-deterministic for equal registries.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        let mut ratios = Json::obj();
        for (name, value) in &self.scalars {
            match *value {
                MetricValue::Counter(c) => {
                    counters = counters.field(name, Json::Int(c as i64));
                }
                MetricValue::Ratio { num, den } => {
                    ratios = ratios.field(
                        name,
                        Json::obj()
                            .field("num", Json::Int(num as i64))
                            .field("den", Json::Int(den as i64))
                            .field("value", Json::Num(value.value())),
                    );
                }
            }
        }
        let mut per_pc = Json::obj();
        for (name, hist) in &self.histograms {
            per_pc = per_pc.field(name, hist.to_json());
        }
        Json::obj()
            .field("counters", counters)
            .field("ratios", ratios)
            .field("per_pc", per_pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_sort_and_look_up() {
        let mut m = MetricSet::new();
        m.counter("zeta", 1);
        m.counter("alpha", 2);
        m.ratio("mid", 1, 4);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        assert_eq!(m.counter_value("alpha"), Some(2));
        assert_eq!(m.counter_value("mid"), None, "ratio is not a counter");
        assert_eq!(m.get("mid").unwrap().value(), 0.25);
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_panic() {
        let mut m = MetricSet::new();
        m.counter("x", 1);
        m.counter("x", 2);
    }

    #[test]
    fn ratio_zero_denominator_is_zero() {
        assert_eq!(MetricValue::Ratio { num: 5, den: 0 }.value(), 0.0);
    }

    #[test]
    fn histogram_sorts_and_merges() {
        let h = PcHistogram::from_rows(vec![
            PcEntry {
                pc: 8,
                execs: 1,
                events: 1,
            },
            PcEntry {
                pc: 4,
                execs: 10,
                events: 2,
            },
            PcEntry {
                pc: 8,
                execs: 2,
                events: 0,
            },
        ]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.entries()[0].pc, 4);
        assert_eq!(h.get(8).unwrap().execs, 3);
        assert_eq!(h.get(8).unwrap().events, 1);
        assert!(h.get(5).is_none());
    }

    #[test]
    fn absorb_prefixes_names() {
        let mut inner = MetricSet::new();
        inner.counter("accesses", 7);
        let mut outer = MetricSet::new();
        outer.counter("cycles", 1);
        outer.absorb("mem", &inner);
        assert_eq!(outer.counter_value("mem.accesses"), Some(7));
    }

    #[test]
    fn json_rendering_is_deterministic_and_parses() {
        let mut a = MetricSet::new();
        a.counter("b", 2);
        a.ratio("r", 1, 2);
        a.counter("a", 1);
        a.histogram(
            "sites",
            PcHistogram::from_rows(vec![PcEntry {
                pc: 4,
                execs: 9,
                events: 3,
            }]),
        );
        let mut b = MetricSet::new();
        b.histogram(
            "sites",
            PcHistogram::from_rows(vec![PcEntry {
                pc: 4,
                execs: 9,
                events: 3,
            }]),
        );
        b.ratio("r", 1, 2);
        b.counter("a", 1);
        b.counter("b", 2);
        let ja = a.to_json().to_string();
        assert_eq!(ja, b.to_json().to_string(), "insertion order is erased");
        let parsed = Json::parse(&ja).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("a"))
                .and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("ratios")
                .and_then(|r| r.get("r"))
                .and_then(|r| r.get("value"))
                .and_then(Json::as_f64),
            Some(0.5)
        );
    }
}
