//! Property tests for the ISA crate: emulator determinism, compare-type
//! semantics, and the listing ⇄ parser round trip.
//!
//! The workspace builds offline with no external crates, so instead of
//! `proptest` these run hand-rolled property loops over a seeded
//! splitmix64 stream: every case is deterministic and a failure message
//! includes the case index for replay.

use ppsim_isa::{
    parse_program, AluKind, Asm, CmpRel, CmpType, Gr, Insn, Machine, Op, Operand, Pr, Program,
};

/// Minimal deterministic PRNG (splitmix64) for the property loops.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

fn arb_gr(rng: &mut Rng) -> Gr {
    Gr::new(rng.below(32) as u8)
}

fn arb_pr(rng: &mut Rng) -> Pr {
    Pr::new(rng.below(16) as u8)
}

fn arb_alu_kind(rng: &mut Rng) -> AluKind {
    const KINDS: [AluKind; 8] = [
        AluKind::Add,
        AluKind::Sub,
        AluKind::And,
        AluKind::Or,
        AluKind::Xor,
        AluKind::Shl,
        AluKind::Shr,
        AluKind::Mul,
    ];
    KINDS[rng.below(8) as usize]
}

fn arb_rel(rng: &mut Rng) -> CmpRel {
    const RELS: [CmpRel; 6] = [
        CmpRel::Eq,
        CmpRel::Ne,
        CmpRel::Lt,
        CmpRel::Le,
        CmpRel::Gt,
        CmpRel::Ge,
    ];
    RELS[rng.below(6) as usize]
}

fn arb_ctype(rng: &mut Rng) -> CmpType {
    const TYPES: [CmpType; 4] = [CmpType::None, CmpType::Unc, CmpType::And, CmpType::Or];
    TYPES[rng.below(4) as usize]
}

/// A straight-line instruction (no control flow).
fn arb_op(rng: &mut Rng) -> Op {
    match rng.below(4) {
        0 => Op::Alu {
            kind: arb_alu_kind(rng),
            dst: arb_gr(rng),
            src1: arb_gr(rng),
            src2: Operand::Reg(arb_gr(rng)),
        },
        1 => Op::Alu {
            kind: arb_alu_kind(rng),
            dst: arb_gr(rng),
            src1: arb_gr(rng),
            src2: Operand::Imm(rng.i64_in(-100, 100)),
        },
        2 => Op::Movi {
            dst: arb_gr(rng),
            imm: rng.next() as u32 as i32 as i64,
        },
        _ => {
            let pt = arb_pr(rng);
            let mut pf = arb_pr(rng);
            // A compare may not name the same real register twice.
            if pf == pt && !pt.is_zero() {
                pf = Pr::ZERO;
            }
            Op::Cmp {
                ctype: arb_ctype(rng),
                rel: arb_rel(rng),
                pt,
                pf,
                src1: arb_gr(rng),
                src2: Operand::Imm(rng.i64_in(-50, 50)),
            }
        }
    }
}

fn arb_ops(rng: &mut Rng, max: u64) -> Vec<Op> {
    let n = 1 + rng.below(max - 1) as usize;
    (0..n).map(|_| arb_op(rng)).collect()
}

fn program_of(ops: &[Op], guards: &[u8]) -> Program {
    let mut a = Asm::new();
    for (op, g) in ops.iter().zip(guards) {
        a.pred(Pr::new(g % 16));
        a.emit(*op);
    }
    a.halt();
    a.assemble()
        .expect("straight-line programs always assemble")
}

fn arb_program(rng: &mut Rng, max_ops: u64) -> Program {
    let ops = arb_ops(rng, max_ops);
    let guards: Vec<u8> = (0..ops.len()).map(|_| rng.below(256) as u8).collect();
    program_of(&ops, &guards)
}

fn final_state(p: &Program) -> (Vec<i64>, Vec<bool>) {
    let mut m = Machine::new(p);
    m.run(10_000).unwrap();
    (
        (0..32).map(|i| m.gr(Gr::new(i))).collect(),
        (0..16).map(|i| m.pr(Pr::new(i))).collect(),
    )
}

/// The emulator is a pure function of the program.
#[test]
fn execution_is_deterministic() {
    let mut rng = Rng(0x5eed_0001);
    for case in 0..64 {
        let p = arb_program(&mut rng, 40);
        assert_eq!(final_state(&p), final_state(&p), "case {case}");
    }
}

/// Writes to hardwired registers never stick.
#[test]
fn hardwired_registers_stay_fixed() {
    let mut rng = Rng(0x5eed_0002);
    for case in 0..64 {
        let p = arb_program(&mut rng, 40);
        let (grs, prs) = final_state(&p);
        assert_eq!(grs[0], 0, "case {case}: r0 is zero");
        assert!(prs[0], "case {case}: p0 is true");
    }
}

/// Disassembling and reparsing reproduces the exact instruction sequence
/// (the parser is a left inverse of the lister).
#[test]
fn listing_parse_round_trip() {
    let mut rng = Rng(0x5eed_0003);
    for case in 0..64 {
        let p = arb_program(&mut rng, 30);
        let reparsed = parse_program(&p.listing()).unwrap();
        assert_eq!(p.insns, reparsed.insns, "case {case}");
    }
}

/// A disqualified `unc` compare always clears both targets; a disqualified
/// normal compare never writes.
#[test]
fn compare_write_discipline() {
    for cond in [false, true] {
        for qp in [false, true] {
            for ctype in [CmpType::None, CmpType::Unc, CmpType::And, CmpType::Or] {
                let (pt, pf) = ctype.resolve(qp, cond);
                if !qp {
                    match ctype {
                        CmpType::Unc => {
                            assert_eq!(pt, Some(false));
                            assert_eq!(pf, Some(false));
                        }
                        _ => {
                            assert_eq!(pt, None);
                            assert_eq!(pf, None);
                        }
                    }
                } else if matches!(ctype, CmpType::None | CmpType::Unc) {
                    assert_eq!(pt, Some(cond));
                    assert_eq!(pf, Some(!cond));
                }
            }
        }
    }
}

/// Memory round-trips arbitrary u64s at arbitrary (possibly unaligned,
/// page-crossing) addresses.
#[test]
fn sparse_memory_round_trip() {
    let mut rng = Rng(0x5eed_0004);
    for case in 0..128 {
        let addr = rng.below(1 << 40);
        let value = rng.next();
        let mut m = ppsim_isa::SparseMem::new();
        m.write_u64(addr, value);
        assert_eq!(m.read_u64(addr), value, "case {case} addr {addr:#x}");
    }
}

/// Guards select exactly the architectural effects the ISA promises.
#[test]
fn guard_isolates_effects() {
    for guard_value in [true, false] {
        let mut a = Asm::new();
        a.movi(Gr::new(1), 10);
        let rel = if guard_value { CmpRel::Eq } else { CmpRel::Ne };
        a.cmp(
            CmpType::Unc,
            rel,
            Pr::new(1),
            Pr::new(2),
            Gr::new(1),
            Operand::imm(10),
        );
        a.pred(Pr::new(1)).movi(Gr::new(2), 77);
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        m.run(10).unwrap();
        assert_eq!(m.gr(Gr::new(2)), if guard_value { 77 } else { 0 });
    }
}

/// An instruction never changes a register outside its declared write set.
#[test]
fn write_sets_are_sound() {
    let mut rng = Rng(0x5eed_0005);
    for _ in 0..50 {
        let ops = arb_ops(&mut rng, 20);
        let p = program_of(&ops, &vec![0; ops.len()]);
        let mut m = Machine::new(&p);
        let mut prev: Vec<i64> = (0..64).map(|i| m.gr(Gr::new(i))).collect();
        let mut prev_pr: Vec<bool> = (0..16).map(|i| m.pr(Pr::new(i))).collect();
        while let Ok(Some(rec)) = m.step() {
            let insn: Insn = rec.insn;
            for i in 0..64u8 {
                let now = m.gr(Gr::new(i));
                if now != prev[i as usize] {
                    assert_eq!(
                        insn.gr_dst(),
                        Some(Gr::new(i)),
                        "{insn} changed r{i} outside its write set"
                    );
                }
                prev[i as usize] = now;
            }
            for i in 0..16u8 {
                let now = m.pr(Pr::new(i));
                if now != prev_pr[i as usize] {
                    assert!(
                        insn.pr_dsts().iter().flatten().any(|p| *p == Pr::new(i)),
                        "{insn} changed p{i} outside its write set"
                    );
                }
                prev_pr[i as usize] = now;
            }
        }
    }
}
