//! Property tests for the ISA crate: emulator determinism, compare-type
//! semantics, and the listing ⇄ parser round trip.

use proptest::prelude::*;

use ppsim_isa::{
    parse_program, AluKind, Asm, CmpRel, CmpType, Gr, Insn, Machine, Op, Operand, Pr, Program,
};

fn arb_gr() -> impl Strategy<Value = Gr> {
    (0u8..32).prop_map(Gr::new)
}

fn arb_pr() -> impl Strategy<Value = Pr> {
    (0u8..16).prop_map(Pr::new)
}

fn arb_alu_kind() -> impl Strategy<Value = AluKind> {
    prop_oneof![
        Just(AluKind::Add),
        Just(AluKind::Sub),
        Just(AluKind::And),
        Just(AluKind::Or),
        Just(AluKind::Xor),
        Just(AluKind::Shl),
        Just(AluKind::Shr),
        Just(AluKind::Mul),
    ]
}

fn arb_rel() -> impl Strategy<Value = CmpRel> {
    prop_oneof![
        Just(CmpRel::Eq),
        Just(CmpRel::Ne),
        Just(CmpRel::Lt),
        Just(CmpRel::Le),
        Just(CmpRel::Gt),
        Just(CmpRel::Ge),
    ]
}

fn arb_ctype() -> impl Strategy<Value = CmpType> {
    prop_oneof![
        Just(CmpType::None),
        Just(CmpType::Unc),
        Just(CmpType::And),
        Just(CmpType::Or),
    ]
}

/// A straight-line instruction (no control flow).
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_alu_kind(), arb_gr(), arb_gr(), arb_gr())
            .prop_map(|(kind, dst, src1, s2)| Op::Alu { kind, dst, src1, src2: Operand::Reg(s2) }),
        (arb_alu_kind(), arb_gr(), arb_gr(), -100i64..100)
            .prop_map(|(kind, dst, src1, v)| Op::Alu { kind, dst, src1, src2: Operand::Imm(v) }),
        (arb_gr(), any::<i32>()).prop_map(|(dst, v)| Op::Movi { dst, imm: i64::from(v) }),
        (arb_ctype(), arb_rel(), arb_pr(), arb_pr(), arb_gr(), -50i64..50).prop_map(
            |(ctype, rel, pt, pf, src1, v)| {
                // A compare may not name the same real register twice.
                let pf = if pf == pt && !pt.is_zero() { Pr::ZERO } else { pf };
                Op::Cmp { ctype, rel, pt, pf, src1, src2: Operand::Imm(v) }
            }
        ),
    ]
}

fn program_of(ops: &[Op], guards: &[u8]) -> Program {
    let mut a = Asm::new();
    for (op, g) in ops.iter().zip(guards) {
        a.pred(Pr::new(g % 16));
        a.emit(*op);
    }
    a.halt();
    a.assemble().expect("straight-line programs always assemble")
}

fn final_state(p: &Program) -> (Vec<i64>, Vec<bool>) {
    let mut m = Machine::new(p);
    m.run(10_000).unwrap();
    (
        (0..32).map(|i| m.gr(Gr::new(i))).collect(),
        (0..16).map(|i| m.pr(Pr::new(i))).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The emulator is a pure function of the program.
    #[test]
    fn execution_is_deterministic(
        ops in prop::collection::vec(arb_op(), 1..40),
        guards in prop::collection::vec(any::<u8>(), 40),
    ) {
        let p = program_of(&ops, &guards);
        prop_assert_eq!(final_state(&p), final_state(&p));
    }

    /// Writes to hardwired registers never stick.
    #[test]
    fn hardwired_registers_stay_fixed(
        ops in prop::collection::vec(arb_op(), 1..40),
        guards in prop::collection::vec(any::<u8>(), 40),
    ) {
        let p = program_of(&ops, &guards);
        let (grs, prs) = final_state(&p);
        prop_assert_eq!(grs[0], 0, "r0 is zero");
        prop_assert!(prs[0], "p0 is true");
    }

    /// Disassembling and reparsing reproduces the exact instruction
    /// sequence (the parser is a left inverse of the lister).
    #[test]
    fn listing_parse_round_trip(
        ops in prop::collection::vec(arb_op(), 1..30),
        guards in prop::collection::vec(any::<u8>(), 30),
    ) {
        let p = program_of(&ops, &guards);
        let reparsed = parse_program(&p.listing()).unwrap();
        prop_assert_eq!(p.insns, reparsed.insns);
    }

    /// A disqualified `unc` compare always clears both targets; a
    /// disqualified normal compare never writes.
    #[test]
    fn compare_write_discipline(cond in any::<bool>(), qp in any::<bool>()) {
        for ctype in [CmpType::None, CmpType::Unc, CmpType::And, CmpType::Or] {
            let (pt, pf) = ctype.resolve(qp, cond);
            if !qp {
                match ctype {
                    CmpType::Unc => {
                        prop_assert_eq!(pt, Some(false));
                        prop_assert_eq!(pf, Some(false));
                    }
                    _ => {
                        prop_assert_eq!(pt, None);
                        prop_assert_eq!(pf, None);
                    }
                }
            } else if matches!(ctype, CmpType::None | CmpType::Unc) {
                prop_assert_eq!(pt, Some(cond));
                prop_assert_eq!(pf, Some(!cond));
            }
        }
    }

    /// Memory round-trips arbitrary u64s at arbitrary (possibly unaligned,
    /// page-crossing) addresses.
    #[test]
    fn sparse_memory_round_trip(addr in 0u64..1 << 40, value in any::<u64>()) {
        let mut m = ppsim_isa::SparseMem::new();
        m.write_u64(addr, value);
        prop_assert_eq!(m.read_u64(addr), value);
    }
}

/// Guards select exactly the architectural effects the ISA promises.
#[test]
fn guard_isolates_effects() {
    for guard_value in [true, false] {
        let mut a = Asm::new();
        a.movi(Gr::new(1), 10);
        let rel = if guard_value { CmpRel::Eq } else { CmpRel::Ne };
        a.cmp(CmpType::Unc, rel, Pr::new(1), Pr::new(2), Gr::new(1), Operand::imm(10));
        a.pred(Pr::new(1)).movi(Gr::new(2), 77);
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        m.run(10).unwrap();
        assert_eq!(m.gr(Gr::new(2)), if guard_value { 77 } else { 0 });
    }
}

/// An instruction never changes a register outside its declared write set.
#[test]
fn write_sets_are_sound() {
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let strat = prop::collection::vec(arb_op(), 1..20);
    for _ in 0..50 {
        let ops = strat.new_tree(&mut runner).unwrap().current();
        let p = program_of(&ops, &vec![0; ops.len()]);
        let mut m = Machine::new(&p);
        let mut prev: Vec<i64> = (0..64).map(|i| m.gr(Gr::new(i))).collect();
        let mut prev_pr: Vec<bool> = (0..16).map(|i| m.pr(Pr::new(i))).collect();
        while let Ok(Some(rec)) = m.step() {
            let insn: Insn = rec.insn;
            for i in 0..64u8 {
                let now = m.gr(Gr::new(i));
                if now != prev[i as usize] {
                    assert_eq!(
                        insn.gr_dst(),
                        Some(Gr::new(i)),
                        "{insn} changed r{i} outside its write set"
                    );
                }
                prev[i as usize] = now;
            }
            for i in 0..16u8 {
                let now = m.pr(Pr::new(i));
                if now != prev_pr[i as usize] {
                    assert!(
                        insn.pr_dsts().iter().flatten().any(|p| *p == Pr::new(i)),
                        "{insn} changed p{i} outside its write set"
                    );
                }
                prev_pr[i as usize] = now;
            }
        }
    }
}
