//! Capture-once/replay-many dynamic trace engine.
//!
//! A sweep runs the same program through many timing configurations, but
//! the *architectural* instruction stream is identical in every cell by
//! construction (that is the invariant the cosimulation oracle enforces).
//! [`TraceBuffer::capture`] runs the functional [`Machine`] once and
//! records its [`ExecRecord`] stream into a compact structure-of-arrays
//! buffer; a [`TraceCursor`] then replays the decoded stream into any
//! number of timing cells, zero-copy, via `Arc<TraceBuffer>` sharing
//! across cells and worker threads.
//!
//! The timing simulator is generic over [`InsnSource`], so a cell can be
//! driven either by an inline `Machine` (still used by the differential
//! oracle for lockstep architectural diffing) or by a shared trace.
//!
//! # Encoding
//!
//! Per dynamic instruction the buffer stores a slot index (`u32`) and one
//! flag byte; memory effective addresses go to a dense side array (one
//! `u64` per `ExecInfo::Mem` record, consumed sequentially). Everything
//! else — the instruction itself, branch targets, `next_slot` — is
//! reconstructed from the static code image, so a record costs 5 bytes
//! plus 8 per memory access instead of `size_of::<ExecRecord>()`.

use std::sync::Arc;

use crate::exec::{ExecError, ExecInfo, ExecRecord, Machine};
use crate::insn::{Insn, Op};
use crate::program::Program;

/// Flag byte layout, per record:
///
/// * bit 0 — qualifying predicate value
/// * bits 1–2 — [`ExecInfo`] discriminant (none/cmp/br/mem)
/// * cmp: bit 3 condition, bit 4/5 `pt_write` present/value,
///   bit 6/7 `pf_write` present/value
/// * br: bit 3 taken
const F_QP: u8 = 1;
pub(crate) const KIND_SHIFT: u8 = 1;
pub(crate) const KIND_MASK: u8 = 0b11;
const KIND_NONE: u8 = 0;
const KIND_CMP: u8 = 1;
pub(crate) const KIND_BR: u8 = 2;
pub(crate) const KIND_MEM: u8 = 3;
const F_CMP_COND: u8 = 1 << 3;
const F_CMP_PT_SOME: u8 = 1 << 4;
const F_CMP_PT_VAL: u8 = 1 << 5;
const F_CMP_PF_SOME: u8 = 1 << 6;
const F_CMP_PF_VAL: u8 = 1 << 7;
const F_BR_TAKEN: u8 = 1 << 3;

/// A captured, pre-decoded dynamic instruction trace.
///
/// Built once per compiled binary (see [`TraceBuffer::capture`] or the
/// incremental [`TraceBuffer::push`] path) and shared read-only between
/// timing cells through `Arc<TraceBuffer>`.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    /// Static code image (indexed by slot), copied from the program.
    insns: Vec<Insn>,
    /// Per-record static slot index.
    slots: Vec<u32>,
    /// Per-record flag byte (see the `F_*`/`KIND_*` constants).
    flags: Vec<u8>,
    /// Dense side array of memory effective addresses, one per
    /// `ExecInfo::Mem` record in stream order.
    addrs: Vec<u64>,
    /// Whether the captured stream ended in a `halt`.
    halted: bool,
}

impl TraceBuffer {
    /// An empty buffer for `program`, ready for incremental [`push`]es
    /// (the capture loop the differential oracle already runs).
    ///
    /// [`push`]: TraceBuffer::push
    pub fn new(program: &Program) -> Self {
        TraceBuffer {
            insns: program.insns.clone(),
            slots: Vec::new(),
            flags: Vec::new(),
            addrs: Vec::new(),
            halted: false,
        }
    }

    /// Runs a fresh [`Machine`] for up to `max_steps` dynamic
    /// instructions and captures the record stream.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from [`Machine::step`] (malformed
    /// program).
    pub fn capture(program: &Program, max_steps: u64) -> Result<TraceBuffer, ExecError> {
        let mut machine = Machine::new(program);
        let mut buf = TraceBuffer::new(program);
        while buf.len() < max_steps {
            match machine.step()? {
                Some(rec) => buf.push(&rec),
                None => {
                    buf.mark_halted();
                    break;
                }
            }
        }
        Ok(buf)
    }

    /// Appends one record. Records must arrive in stream order (the
    /// record's `seq` must equal the current length).
    pub fn push(&mut self, rec: &ExecRecord) {
        debug_assert_eq!(
            rec.seq,
            self.slots.len() as u64,
            "trace records must be pushed in stream order"
        );
        let mut flags = if rec.qp { F_QP } else { 0 };
        match rec.info {
            ExecInfo::None => flags |= KIND_NONE << KIND_SHIFT,
            ExecInfo::Cmp {
                cond,
                pt_write,
                pf_write,
            } => {
                flags |= KIND_CMP << KIND_SHIFT;
                if cond {
                    flags |= F_CMP_COND;
                }
                if let Some(v) = pt_write {
                    flags |= F_CMP_PT_SOME | if v { F_CMP_PT_VAL } else { 0 };
                }
                if let Some(v) = pf_write {
                    flags |= F_CMP_PF_SOME | if v { F_CMP_PF_VAL } else { 0 };
                }
            }
            ExecInfo::Br { taken, .. } => {
                flags |= KIND_BR << KIND_SHIFT;
                if taken {
                    flags |= F_BR_TAKEN;
                }
            }
            ExecInfo::Mem { addr } => {
                flags |= KIND_MEM << KIND_SHIFT;
                self.addrs.push(addr);
            }
        }
        self.slots.push(rec.slot);
        self.flags.push(flags);
    }

    /// Marks the stream as ending in a `halt` (the capturing machine
    /// returned `Ok(None)`).
    pub fn mark_halted(&mut self) {
        self.halted = true;
    }

    /// Dynamic instructions captured.
    pub fn len(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Whether no records were captured.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the captured stream ended in a `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The static code image replayed records index into.
    ///
    /// For a captured benchmark this is the compiled program's
    /// instruction list; for an imported branches-only trace it is the
    /// synthesized compare-and-branch skeleton (see [`crate::pptrace`]).
    pub fn code(&self) -> &[Insn] {
        &self.insns
    }

    /// Decomposes the buffer into its raw columns (for the on-disk
    /// codec in [`crate::pptrace`]).
    pub(crate) fn parts(&self) -> (&[Insn], &[u32], &[u8], &[u64], bool) {
        (
            &self.insns,
            &self.slots,
            &self.flags,
            &self.addrs,
            self.halted,
        )
    }

    /// Reassembles a buffer from raw columns. The caller (the
    /// [`crate::pptrace`] decoder) is responsible for the invariants
    /// `record_at` relies on: every slot indexes `insns`, branch-kind
    /// flag bytes sit on `Op::Br` slots, and the number of mem-kind flag
    /// bytes equals `addrs.len()`.
    pub(crate) fn from_parts(
        insns: Vec<Insn>,
        slots: Vec<u32>,
        flags: Vec<u8>,
        addrs: Vec<u64>,
        halted: bool,
    ) -> TraceBuffer {
        TraceBuffer {
            insns,
            slots,
            flags,
            addrs,
            halted,
        }
    }

    /// Approximate in-memory footprint in bytes (for diagnostics).
    pub fn bytes(&self) -> usize {
        self.insns.len() * std::mem::size_of::<Insn>()
            + self.slots.len() * std::mem::size_of::<u32>()
            + self.flags.len()
            + self.addrs.len() * std::mem::size_of::<u64>()
    }

    /// Reconstructs the record at `idx`; `addr_idx` is the cursor into
    /// the dense address array and is advanced on `Mem` records.
    #[inline]
    fn record_at(&self, idx: usize, addr_idx: &mut usize) -> ExecRecord {
        let slot = self.slots[idx];
        let insn = self.insns[slot as usize];
        let flags = self.flags[idx];
        let info = match (flags >> KIND_SHIFT) & KIND_MASK {
            KIND_NONE => ExecInfo::None,
            KIND_CMP => ExecInfo::Cmp {
                cond: flags & F_CMP_COND != 0,
                pt_write: (flags & F_CMP_PT_SOME != 0).then_some(flags & F_CMP_PT_VAL != 0),
                pf_write: (flags & F_CMP_PF_SOME != 0).then_some(flags & F_CMP_PF_VAL != 0),
            },
            KIND_BR => {
                let Op::Br { target } = insn.op else {
                    unreachable!("Br record on a non-branch slot")
                };
                ExecInfo::Br {
                    taken: flags & F_BR_TAKEN != 0,
                    target,
                }
            }
            _ => {
                let addr = self.addrs[*addr_idx];
                *addr_idx += 1;
                ExecInfo::Mem { addr }
            }
        };
        let next_slot = match (insn.op, &info) {
            (Op::Halt, _) => slot,
            (
                _,
                ExecInfo::Br {
                    taken: true,
                    target,
                },
            ) => *target,
            _ => slot + 1,
        };
        ExecRecord {
            seq: idx as u64,
            slot,
            insn,
            qp: flags & F_QP != 0,
            info,
            next_slot,
        }
    }

    /// Iterates the captured records in stream order (reconstructing
    /// each from the packed encoding).
    pub fn iter(&self) -> impl Iterator<Item = ExecRecord> + '_ {
        let mut addr_idx = 0usize;
        (0..self.slots.len()).map(move |i| self.record_at(i, &mut addr_idx))
    }
}

/// Anything that can feed the timing simulator one [`ExecRecord`] at a
/// time: the inline functional [`Machine`] (execution-driven mode) or a
/// [`TraceCursor`] over a shared capture (trace-driven mode).
pub trait InsnSource {
    /// The next dynamic instruction, `Ok(None)` when the stream ends.
    ///
    /// # Errors
    ///
    /// [`ExecError`] when the underlying machine executes a malformed
    /// program; a trace cursor never errors.
    fn next_record(&mut self) -> Result<Option<ExecRecord>, ExecError>;

    /// After `next_record` returned `Ok(None)`: whether the stream ended
    /// because the program halted (as opposed to an exhausted capture
    /// budget).
    fn ended_halted(&self) -> bool;

    /// The static code image behind this stream, indexed by slot, when
    /// the source has one (`record.insn` always equals
    /// `code()[record.slot]` for every record the source yields). The
    /// timing model precomputes per-slot decode tables from it; sources
    /// without a fixed image (the default) return an empty slice and fall
    /// back to on-demand classification.
    fn code(&self) -> &[Insn] {
        &[]
    }
}

impl InsnSource for Machine {
    fn next_record(&mut self) -> Result<Option<ExecRecord>, ExecError> {
        self.step()
    }

    fn ended_halted(&self) -> bool {
        self.is_halted()
    }

    fn code(&self) -> &[Insn] {
        self.code()
    }
}

/// A sequential reader over a shared [`TraceBuffer`], optionally bounded
/// to a record window (sampled simulation replays `[start, start+len)`
/// slices of one capture).
///
/// Cheap to construct (an `Arc` clone plus three indices), so every
/// timing cell in a sweep gets its own cursor over the same capture.
#[derive(Clone, Debug)]
pub struct TraceCursor {
    buf: Arc<TraceBuffer>,
    idx: usize,
    addr_idx: usize,
    /// One past the last record this cursor yields.
    end: usize,
}

impl TraceCursor {
    /// A cursor positioned at the start of `buf`, reading to its end.
    pub fn new(buf: Arc<TraceBuffer>) -> Self {
        let end = buf.slots.len();
        TraceCursor {
            buf,
            idx: 0,
            addr_idx: 0,
            end,
        }
    }

    /// A cursor over the record window `[start, start + len)` of `buf`
    /// (clamped to the capture's length).
    ///
    /// Positioning is O(start): the dense memory-address side array is
    /// consumed sequentially, so a mid-stream cursor must know how many
    /// `Mem` records precede its window — one pass over the flag bytes,
    /// with no record reconstruction.
    pub fn window(buf: Arc<TraceBuffer>, start: u64, len: u64) -> Self {
        let total = buf.slots.len();
        let start = usize::try_from(start).unwrap_or(usize::MAX).min(total);
        let end = start
            .saturating_add(usize::try_from(len).unwrap_or(usize::MAX))
            .min(total);
        let addr_idx = buf.flags[..start]
            .iter()
            .filter(|&&f| (f >> KIND_SHIFT) & KIND_MASK == KIND_MEM)
            .count();
        TraceCursor {
            buf,
            idx: start,
            addr_idx,
            end,
        }
    }

    /// The shared buffer this cursor reads.
    pub fn trace(&self) -> &TraceBuffer {
        &self.buf
    }

    /// Records remaining until the window (or capture) end.
    pub fn remaining(&self) -> u64 {
        (self.end - self.idx) as u64
    }
}

impl InsnSource for TraceCursor {
    #[inline]
    fn next_record(&mut self) -> Result<Option<ExecRecord>, ExecError> {
        if self.idx >= self.end {
            return Ok(None);
        }
        let rec = self.buf.record_at(self.idx, &mut self.addr_idx);
        self.idx += 1;
        Ok(Some(rec))
    }

    fn ended_halted(&self) -> bool {
        // A window that stops short of the capture's end is a budget
        // exhaustion, not a halt, even on a halted capture.
        self.buf.halted && self.idx == self.buf.slots.len()
    }

    fn code(&self) -> &[Insn] {
        self.buf.code()
    }
}

/// A program exercising every [`ExecInfo`] variant: compares (both
/// targets, one target, nullified), float compares, taken and
/// not-taken branches, loads/stores (nullified and not), and halt.
/// Shared by the trace and [`crate::pptrace`] codec tests.
#[cfg(test)]
pub(crate) fn kitchen_sink_program() -> Program {
    use crate::asm::Asm;
    use crate::insn::{CmpRel, CmpType, Operand};
    use crate::program::DataSegment;
    use crate::reg::{Fr, Gr, Pr};

    let mut a = Asm::new();
    let skip = a.new_label();
    a.data(DataSegment::from_words(0x2000, &[11, 22, 33]));
    a.init_gr(Gr::new(1), 0x2000);
    a.movi(Gr::new(2), 5);
    a.cmp(
        CmpType::Unc,
        CmpRel::Eq,
        Pr::new(1),
        Pr::new(2),
        Gr::new(2),
        Operand::imm(5),
    );
    a.pred(Pr::new(2)).movi(Gr::new(3), 99); // nullified
    a.pred(Pr::new(2)).ld(Gr::new(4), Gr::new(1), 0); // nullified load
    a.pred(Pr::new(1)).br(skip); // taken
    a.movi(Gr::new(5), 1); // skipped
    a.bind(skip);
    a.pred(Pr::new(2)).br(skip); // not taken
    a.ld(Gr::new(6), Gr::new(1), 8);
    a.st(Gr::new(6), Gr::new(1), 16);
    a.init_fr(Fr::new(1), 2.5);
    a.fcmp(
        CmpType::And,
        CmpRel::Gt,
        Pr::new(3),
        Pr::ZERO,
        Fr::new(1),
        Fr::new(0),
    );
    a.stf(Fr::new(1), Gr::new(1), 24);
    a.halt();
    a.assemble().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::Gr;

    fn kitchen_sink() -> Program {
        kitchen_sink_program()
    }

    #[test]
    fn replay_reconstructs_the_live_record_stream_exactly() {
        let prog = kitchen_sink();
        let mut m = Machine::new(&prog);
        let live: Vec<ExecRecord> = std::iter::from_fn(|| m.step().unwrap()).collect();

        let buf = TraceBuffer::capture(&prog, u64::MAX).unwrap();
        assert!(buf.halted());
        assert_eq!(buf.len(), live.len() as u64);
        let replayed: Vec<ExecRecord> = buf.iter().collect();
        assert_eq!(replayed, live);

        // Make sure the program actually exercised every ExecInfo kind.
        let has = |f: &dyn Fn(&ExecRecord) -> bool| live.iter().any(f);
        assert!(has(&|r| matches!(r.info, ExecInfo::Cmp { .. })));
        assert!(has(&|r| matches!(r.info, ExecInfo::Br { taken: true, .. })));
        assert!(has(&|r| matches!(
            r.info,
            ExecInfo::Br { taken: false, .. }
        )));
        assert!(has(&|r| matches!(r.info, ExecInfo::Mem { .. })));
        assert!(has(&|r| r.info == ExecInfo::None && !r.qp));
    }

    #[test]
    fn cursor_yields_the_stream_then_reports_halt() {
        let prog = kitchen_sink();
        let buf = Arc::new(TraceBuffer::capture(&prog, u64::MAX).unwrap());
        let mut cursor = TraceCursor::new(Arc::clone(&buf));
        let mut n = 0u64;
        while let Some(rec) = cursor.next_record().unwrap() {
            assert_eq!(rec.seq, n);
            n += 1;
        }
        assert_eq!(n, buf.len());
        assert!(cursor.ended_halted());

        // A second cursor over the same Arc starts from the beginning.
        let mut fresh = TraceCursor::new(buf);
        assert!(!fresh.ended_halted());
        assert_eq!(fresh.next_record().unwrap().unwrap().seq, 0);
    }

    #[test]
    fn budget_capped_capture_is_not_halted() {
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.addi(Gr::new(1), Gr::new(1), 1);
        a.br(top);
        let prog = a.assemble().unwrap();
        let buf = Arc::new(TraceBuffer::capture(&prog, 10).unwrap());
        assert_eq!(buf.len(), 10);
        assert!(!buf.halted());
        let mut cursor = TraceCursor::new(buf);
        let mut n = 0;
        while cursor.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        assert!(
            !cursor.ended_halted(),
            "exhausted budget is not a halt: the stream just ends"
        );
    }

    #[test]
    fn incremental_push_matches_one_shot_capture() {
        let prog = kitchen_sink();
        let mut machine = Machine::new(&prog);
        let mut incremental = TraceBuffer::new(&prog);
        while let Some(rec) = machine.step().unwrap() {
            incremental.push(&rec);
        }
        incremental.mark_halted();

        let oneshot = TraceBuffer::capture(&prog, u64::MAX).unwrap();
        assert_eq!(incremental.halted(), oneshot.halted());
        assert_eq!(
            incremental.iter().collect::<Vec<_>>(),
            oneshot.iter().collect::<Vec<_>>()
        );
        assert!(incremental.bytes() > 0);
        assert!(!incremental.is_empty());
    }

    #[test]
    fn window_cursor_matches_the_corresponding_stream_slice() {
        let prog = kitchen_sink();
        let buf = Arc::new(TraceBuffer::capture(&prog, u64::MAX).unwrap());
        let all: Vec<ExecRecord> = buf.iter().collect();
        // Every (start, len) window must yield exactly the matching slice
        // of the full stream — including windows starting after `Mem`
        // records, which exercise the dense-address repositioning.
        for start in 0..all.len() {
            for len in [0usize, 1, 3, all.len()] {
                let mut cur = TraceCursor::window(Arc::clone(&buf), start as u64, len as u64);
                let want = &all[start..(start + len).min(all.len())];
                assert_eq!(cur.remaining(), want.len() as u64);
                let got: Vec<ExecRecord> =
                    std::iter::from_fn(|| cur.next_record().unwrap()).collect();
                assert_eq!(got, want, "window [{start}, {start}+{len})");
            }
        }
    }

    #[test]
    fn window_halt_semantics() {
        let prog = kitchen_sink();
        let buf = Arc::new(TraceBuffer::capture(&prog, u64::MAX).unwrap());
        let n = buf.len();

        // A window ending before the capture's end is budget exhaustion.
        let mut short = TraceCursor::window(Arc::clone(&buf), 0, n - 1);
        while short.next_record().unwrap().is_some() {}
        assert!(!short.ended_halted());

        // A window reaching the end of a halted capture is a halt.
        let mut tail = TraceCursor::window(Arc::clone(&buf), n - 2, 1000);
        while tail.next_record().unwrap().is_some() {}
        assert!(tail.ended_halted());

        // Windows past the end are empty, and clamp instead of panicking.
        let mut past = TraceCursor::window(Arc::clone(&buf), n + 50, 10);
        assert_eq!(past.remaining(), 0);
        assert!(past.next_record().unwrap().is_none());
    }

    #[test]
    fn capture_reports_malformed_programs() {
        let prog = Program::from_insns(vec![Insn::new(Op::Nop)]);
        let err = TraceBuffer::capture(&prog, 100).unwrap_err();
        assert_eq!(err, ExecError::FellOffEnd { slot: 1 });
    }
}
