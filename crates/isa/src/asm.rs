//! An assembler-style [`Program`] builder with forward-reference labels.

use std::fmt;

use crate::insn::{AluKind, CmpRel, CmpType, FpuKind, Insn, Op, Operand};
use crate::program::{DataSegment, Program, ProgramError};
use crate::reg::{Fr, Gr, Pr};

/// A branch-target label handed out by [`Asm::new_label`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Errors produced by [`Asm::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced by a branch but never [`Asm::bind`]-ed.
    UnboundLabel(Label),
    /// The finished program failed [`Program::validate`].
    Invalid(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {:?} was never bound", l),
            AsmError::Invalid(e) => write!(f, "assembled program is invalid: {e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Invalid(e) => Some(e),
            AsmError::UnboundLabel(_) => None,
        }
    }
}

impl From<ProgramError> for AsmError {
    fn from(e: ProgramError) -> Self {
        AsmError::Invalid(e)
    }
}

/// Incremental program builder.
///
/// Emission methods append one instruction each and return `&mut self` for
/// chaining. A guard for the *next* emitted instruction is set with
/// [`Asm::pred`]:
///
/// ```
/// use ppsim_isa::{Asm, Gr, Pr};
/// let mut a = Asm::new();
/// a.pred(Pr::new(1)).movi(Gr::new(32), 0); // (p1) movl r32 = 0
/// a.movi(Gr::new(33), 1);                  //      movl r33 = 1
/// ```
#[derive(Clone, Debug, Default)]
pub struct Asm {
    insns: Vec<Insn>,
    /// `(slot, label)` pairs awaiting target resolution.
    patches: Vec<(u32, Label)>,
    labels: Vec<Option<u32>>,
    data: Vec<DataSegment>,
    gr_init: Vec<i64>,
    fr_init: Vec<f64>,
    pending_qp: Option<Pr>,
}

impl Asm {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Index of the next slot to be emitted.
    pub fn here(&self) -> u32 {
        self.insns.len() as u32
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (labels bind exactly once).
    pub fn bind(&mut self, label: Label) {
        let slot = self.here();
        let entry = &mut self.labels[label.0 as usize];
        assert!(entry.is_none(), "label {label:?} bound twice");
        *entry = Some(slot);
    }

    /// Sets the qualifying predicate for the next emitted instruction.
    pub fn pred(&mut self, qp: Pr) -> &mut Self {
        self.pending_qp = Some(qp);
        self
    }

    /// Appends a raw instruction (consuming any pending guard).
    pub fn emit(&mut self, op: Op) -> &mut Self {
        let qp = self.pending_qp.take().unwrap_or(Pr::ZERO);
        self.insns.push(Insn::guarded(qp, op));
        self
    }

    /// Appends an initialized data segment.
    pub fn data(&mut self, segment: DataSegment) -> &mut Self {
        self.data.push(segment);
        self
    }

    /// Sets the initial value of an integer register.
    pub fn init_gr(&mut self, r: Gr, value: i64) -> &mut Self {
        if self.gr_init.len() <= r.index() {
            self.gr_init.resize(r.index() + 1, 0);
        }
        self.gr_init[r.index()] = value;
        self
    }

    /// Sets the initial value of a floating-point register.
    pub fn init_fr(&mut self, r: Fr, value: f64) -> &mut Self {
        if self.fr_init.len() <= r.index() {
            self.fr_init.resize(r.index() + 1, 0.0);
        }
        self.fr_init[r.index()] = value;
        self
    }

    // ---- integer ALU ----

    /// `dst = src1 <kind> src2`.
    pub fn alu(&mut self, kind: AluKind, dst: Gr, src1: Gr, src2: impl Into<Operand>) -> &mut Self {
        self.emit(Op::Alu {
            kind,
            dst,
            src1,
            src2: src2.into(),
        })
    }

    /// `dst = src1 + src2` (register form).
    pub fn add(&mut self, dst: Gr, src1: Gr, src2: Gr) -> &mut Self {
        self.alu(AluKind::Add, dst, src1, src2)
    }

    /// `dst = src + imm`.
    pub fn addi(&mut self, dst: Gr, src: Gr, imm: i64) -> &mut Self {
        self.alu(AluKind::Add, dst, src, imm)
    }

    /// `dst = src1 - src2`.
    pub fn sub(&mut self, dst: Gr, src1: Gr, src2: Gr) -> &mut Self {
        self.alu(AluKind::Sub, dst, src1, src2)
    }

    /// `dst = src1 * src2`.
    pub fn mul(&mut self, dst: Gr, src1: Gr, src2: Gr) -> &mut Self {
        self.alu(AluKind::Mul, dst, src1, src2)
    }

    /// Register move (`dst = src`), encoded as `add dst = src, 0`.
    pub fn mov(&mut self, dst: Gr, src: Gr) -> &mut Self {
        self.alu(AluKind::Add, dst, src, 0i64)
    }

    /// `dst = imm`.
    pub fn movi(&mut self, dst: Gr, imm: i64) -> &mut Self {
        self.emit(Op::Movi { dst, imm })
    }

    // ---- compares ----

    /// Integer compare producing two predicates.
    pub fn cmp(
        &mut self,
        ctype: CmpType,
        rel: CmpRel,
        pt: Pr,
        pf: Pr,
        src1: Gr,
        src2: impl Into<Operand>,
    ) -> &mut Self {
        self.emit(Op::Cmp {
            ctype,
            rel,
            pt,
            pf,
            src1,
            src2: src2.into(),
        })
    }

    /// Floating-point compare producing two predicates.
    pub fn fcmp(
        &mut self,
        ctype: CmpType,
        rel: CmpRel,
        pt: Pr,
        pf: Pr,
        src1: Fr,
        src2: Fr,
    ) -> &mut Self {
        self.emit(Op::Fcmp {
            ctype,
            rel,
            pt,
            pf,
            src1,
            src2,
        })
    }

    // ---- floating point ----

    /// `dst = src1 <kind> src2` on floats.
    pub fn fpu(&mut self, kind: FpuKind, dst: Fr, src1: Fr, src2: Fr) -> &mut Self {
        self.emit(Op::Fpu {
            kind,
            dst,
            src1,
            src2,
        })
    }

    /// Float addition.
    pub fn fadd(&mut self, dst: Fr, src1: Fr, src2: Fr) -> &mut Self {
        self.fpu(FpuKind::Fadd, dst, src1, src2)
    }

    /// Float multiplication.
    pub fn fmul(&mut self, dst: Fr, src1: Fr, src2: Fr) -> &mut Self {
        self.fpu(FpuKind::Fmul, dst, src1, src2)
    }

    /// Integer → float conversion.
    pub fn itof(&mut self, dst: Fr, src: Gr) -> &mut Self {
        self.emit(Op::Itof { dst, src })
    }

    /// Float → integer conversion (truncating).
    pub fn ftoi(&mut self, dst: Gr, src: Fr) -> &mut Self {
        self.emit(Op::Ftoi { dst, src })
    }

    // ---- memory ----

    /// 8-byte integer load.
    pub fn ld(&mut self, dst: Gr, base: Gr, offset: i64) -> &mut Self {
        self.emit(Op::Load { dst, base, offset })
    }

    /// 8-byte integer store.
    pub fn st(&mut self, src: Gr, base: Gr, offset: i64) -> &mut Self {
        self.emit(Op::Store { src, base, offset })
    }

    /// 8-byte float load.
    pub fn ldf(&mut self, dst: Fr, base: Gr, offset: i64) -> &mut Self {
        self.emit(Op::Loadf { dst, base, offset })
    }

    /// 8-byte float store.
    pub fn stf(&mut self, src: Fr, base: Gr, offset: i64) -> &mut Self {
        self.emit(Op::Storef { src, base, offset })
    }

    // ---- control ----

    /// Branch to `label`; conditional when guarded with [`Asm::pred`].
    pub fn br(&mut self, label: Label) -> &mut Self {
        let slot = self.here();
        self.patches.push((slot, label));
        self.emit(Op::Br { target: u32::MAX })
    }

    /// Branch to an already-known slot index.
    pub fn br_slot(&mut self, target: u32) -> &mut Self {
        self.emit(Op::Br { target })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Op::Nop)
    }

    /// Stop the machine.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Op::Halt)
    }

    /// Resolves labels and validates the finished program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if a referenced label was never
    /// bound, or [`AsmError::Invalid`] if the program fails validation.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        for &(slot, label) in &self.patches {
            let target = self.labels[label.0 as usize].ok_or(AsmError::UnboundLabel(label))?;
            match &mut self.insns[slot as usize].op {
                Op::Br { target: t } => *t = target,
                other => unreachable!("patch slot {slot} holds non-branch {other:?}"),
            }
        }
        let program = Program {
            insns: self.insns,
            data: self.data,
            gr_init: self.gr_init,
            fr_init: self.fr_init,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u8) -> Gr {
        Gr::new(i)
    }
    fn p(i: u8) -> Pr {
        Pr::new(i)
    }

    #[test]
    fn forward_label_is_patched() {
        let mut a = Asm::new();
        let end = a.new_label();
        a.pred(p(1)).br(end);
        a.nop();
        a.bind(end);
        a.halt();
        let prog = a.assemble().unwrap();
        assert_eq!(prog.insns[0].branch_target(), Some(2));
    }

    #[test]
    fn backward_label_is_patched() {
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.nop();
        a.pred(p(1)).br(top);
        a.halt();
        let prog = a.assemble().unwrap();
        assert_eq!(prog.insns[1].branch_target(), Some(0));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.br(l);
        a.halt();
        assert_eq!(a.assemble().unwrap_err(), AsmError::UnboundLabel(l));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.bind(l);
        a.nop();
        a.bind(l);
    }

    #[test]
    fn pred_applies_to_next_instruction_only() {
        let mut a = Asm::new();
        a.pred(p(4)).movi(g(1), 1);
        a.movi(g(2), 2);
        a.halt();
        let prog = a.assemble().unwrap();
        assert_eq!(prog.insns[0].qp, p(4));
        assert_eq!(prog.insns[1].qp, Pr::ZERO);
    }

    #[test]
    fn init_registers_resize_sparsely() {
        let mut a = Asm::new();
        a.init_gr(g(10), 77);
        a.halt();
        let prog = a.assemble().unwrap();
        assert_eq!(prog.gr_init.len(), 11);
        assert_eq!(prog.gr_init[10], 77);
        assert_eq!(prog.gr_init[3], 0);
    }

    #[test]
    fn mov_is_add_zero_imm() {
        let mut a = Asm::new();
        a.mov(g(2), g(1));
        a.halt();
        let prog = a.assemble().unwrap();
        assert_eq!(
            prog.insns[0].op,
            Op::Alu {
                kind: AluKind::Add,
                dst: g(2),
                src1: g(1),
                src2: Operand::Imm(0)
            }
        );
    }

    #[test]
    fn assemble_runs_validation() {
        let mut a = Asm::new();
        a.br_slot(99);
        a.halt();
        assert!(matches!(a.assemble(), Err(AsmError::Invalid(_))));
    }
}
