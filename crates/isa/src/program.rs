//! Program container: instruction slots plus initialized data segments.

use std::fmt;

use crate::insn::{Insn, Op};
use crate::reg::{NUM_FR, NUM_GR};
use crate::SLOT_BYTES;

/// Base address assigned to instruction slot 0 when deriving synthetic
/// instruction addresses.
pub const CODE_BASE: u64 = 0x4000_0000;

/// An initialized region of data memory.
#[derive(Clone, Debug, PartialEq)]
pub struct DataSegment {
    /// Start byte address.
    pub addr: u64,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

impl DataSegment {
    /// Builds a segment of packed little-endian `i64` words.
    pub fn from_words(addr: u64, words: &[i64]) -> Self {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        DataSegment { addr, bytes }
    }

    /// Builds a segment of packed little-endian `f64` words.
    pub fn from_f64s(addr: u64, words: &[f64]) -> Self {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        DataSegment { addr, bytes }
    }

    /// Exclusive end address of the segment.
    pub fn end(&self) -> u64 {
        self.addr + self.bytes.len() as u64
    }
}

/// Errors detected by [`Program::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch targets a slot outside the program.
    BranchOutOfRange {
        /// Slot of the offending branch.
        slot: u32,
        /// Its target.
        target: u32,
    },
    /// A compare names the same register for both predicate targets.
    DuplicateCmpTargets {
        /// Slot of the offending compare.
        slot: u32,
    },
    /// The program is empty.
    Empty,
    /// Initial values vector has the wrong length.
    BadInitLen {
        /// What was being initialized.
        what: &'static str,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BranchOutOfRange { slot, target } => {
                write!(
                    f,
                    "branch at slot {slot} targets out-of-range slot {target}"
                )
            }
            ProgramError::DuplicateCmpTargets { slot } => {
                write!(f, "compare at slot {slot} writes the same predicate twice")
            }
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::BadInitLen { what } => {
                write!(f, "initial {what} values have the wrong length")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A fully assembled program: code, initialized data and initial register
/// values.
///
/// Instruction "addresses" are synthetic: slot `i` lives at
/// `CODE_BASE + i * SLOT_BYTES` (see [`Program::pc_of`]); predictors hash on
/// these addresses.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Instruction slots.
    pub insns: Vec<Insn>,
    /// Initialized data memory.
    pub data: Vec<DataSegment>,
    /// Initial integer register values (`gr_init[i]` → `r<i>`); `r0` is
    /// forced to zero regardless.
    pub gr_init: Vec<i64>,
    /// Initial floating-point register values.
    pub fr_init: Vec<f64>,
}

impl Program {
    /// Wraps a list of instructions with no data and zeroed registers.
    pub fn from_insns(insns: Vec<Insn>) -> Self {
        Program {
            insns,
            ..Program::default()
        }
    }

    /// Number of instruction slots.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Synthetic byte address of an instruction slot.
    pub fn pc_of(slot: u32) -> u64 {
        CODE_BASE + u64::from(slot) * SLOT_BYTES
    }

    /// Checks structural invariants; returns the first violation found.
    ///
    /// # Errors
    ///
    /// See [`ProgramError`] for the conditions checked.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.insns.is_empty() {
            return Err(ProgramError::Empty);
        }
        if self.gr_init.len() > NUM_GR {
            return Err(ProgramError::BadInitLen {
                what: "integer register",
            });
        }
        if self.fr_init.len() > NUM_FR {
            return Err(ProgramError::BadInitLen {
                what: "float register",
            });
        }
        for (slot, insn) in self.insns.iter().enumerate() {
            let slot = slot as u32;
            if let Op::Br { target } = insn.op {
                if target as usize >= self.insns.len() {
                    return Err(ProgramError::BranchOutOfRange { slot, target });
                }
            }
            if let Op::Cmp { pt, pf, .. } | Op::Fcmp { pt, pf, .. } = insn.op {
                if pt == pf && !pt.is_zero() {
                    return Err(ProgramError::DuplicateCmpTargets { slot });
                }
            }
        }
        Ok(())
    }

    /// Counts static instructions satisfying a predicate.
    pub fn count_insns(&self, mut f: impl FnMut(&Insn) -> bool) -> usize {
        self.insns.iter().filter(|i| f(i)).count()
    }

    /// Renders the program as an assembly listing with slot labels.
    ///
    /// The listing is a *complete* serialization: initial register values
    /// and data segments are emitted as `.greg`/`.freg`/`.data` directives
    /// ahead of the code, so `crate::parse_program` reconstructs an
    /// equivalent program — the format the differential-check shrinker
    /// uses for its minimized repro dumps.
    pub fn listing(&self) -> String {
        use std::collections::BTreeSet;
        let mut out = String::new();
        for (i, &v) in self.gr_init.iter().enumerate() {
            if v != 0 {
                out.push_str(&format!(".greg r{i} = {v}\n"));
            }
        }
        for (i, v) in self.fr_init.iter().enumerate() {
            if v.to_bits() != 0 {
                // Bit-exact (decimal text would lose NaN payloads and
                // signed zeros).
                out.push_str(&format!(".freg f{i} = 0x{:016x}\n", v.to_bits()));
            }
        }
        for seg in &self.data {
            for (k, chunk) in seg.bytes.chunks(32).enumerate() {
                let addr = seg.addr + (k * 32) as u64;
                out.push_str(&format!(".data 0x{addr:x} = "));
                for b in chunk {
                    out.push_str(&format!("{b:02x}"));
                }
                out.push('\n');
            }
        }
        let mut targets: BTreeSet<u32> = BTreeSet::new();
        for insn in &self.insns {
            if let Some(t) = insn.branch_target() {
                targets.insert(t);
            }
        }
        for (i, insn) in self.insns.iter().enumerate() {
            if targets.contains(&(i as u32)) {
                out.push_str(&format!(".L{i}:\n"));
            }
            out.push_str(&format!("    {insn}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{CmpRel, CmpType, Operand};
    use crate::reg::{Gr, Pr};

    #[test]
    fn data_segment_word_packing() {
        let seg = DataSegment::from_words(0x1000, &[1, -1]);
        assert_eq!(seg.bytes.len(), 16);
        assert_eq!(&seg.bytes[0..8], &1i64.to_le_bytes());
        assert_eq!(&seg.bytes[8..16], &(-1i64).to_le_bytes());
        assert_eq!(seg.end(), 0x1010);
    }

    #[test]
    fn data_segment_f64_packing() {
        let seg = DataSegment::from_f64s(0, &[1.5]);
        assert_eq!(seg.bytes, 1.5f64.to_bits().to_le_bytes().to_vec());
    }

    #[test]
    fn pc_of_is_spaced_by_slot_bytes() {
        assert_eq!(Program::pc_of(0), CODE_BASE);
        assert_eq!(Program::pc_of(2) - Program::pc_of(1), crate::SLOT_BYTES);
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(Program::default().validate(), Err(ProgramError::Empty));
    }

    #[test]
    fn validate_rejects_wild_branch() {
        let p = Program::from_insns(vec![Insn::new(Op::Br { target: 9 })]);
        assert_eq!(
            p.validate(),
            Err(ProgramError::BranchOutOfRange { slot: 0, target: 9 })
        );
    }

    #[test]
    fn validate_rejects_duplicate_cmp_targets() {
        let p = Program::from_insns(vec![
            Insn::new(Op::Cmp {
                ctype: CmpType::Unc,
                rel: CmpRel::Eq,
                pt: Pr::new(3),
                pf: Pr::new(3),
                src1: Gr::new(1),
                src2: Operand::imm(0),
            }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(
            p.validate(),
            Err(ProgramError::DuplicateCmpTargets { slot: 0 })
        );
    }

    #[test]
    fn validate_accepts_p0_p0_cmp() {
        // Both targets p0 is pointless but architecturally legal (discarded).
        let p = Program::from_insns(vec![
            Insn::new(Op::Cmp {
                ctype: CmpType::Unc,
                rel: CmpRel::Eq,
                pt: Pr::ZERO,
                pf: Pr::ZERO,
                src1: Gr::new(1),
                src2: Operand::imm(0),
            }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn listing_emits_labels() {
        let p = Program::from_insns(vec![
            Insn::new(Op::Nop),
            Insn::new(Op::Br { target: 0 }),
            Insn::new(Op::Halt),
        ]);
        let l = p.listing();
        assert!(l.contains(".L0:"), "{l}");
        assert!(l.contains("br.cond .L0"), "{l}");
    }
}
