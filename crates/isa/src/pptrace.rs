//! `.pptrace` — the versioned on-disk trace format, plus an importer
//! for CBP-style external branch traces.
//!
//! [`TraceBuffer`] is the in-memory capture-once/replay-many structure;
//! this module gives it a durable, documented file form so traces can
//! be exported once and replayed across processes, machines and
//! simulator versions, and so *external* workload streams (not produced
//! by our own functional machine) can drive the timing model.
//!
//! # File layout (version 1)
//!
//! ```text
//! magic     8 bytes   "PPTRACE\0"
//! version   u32 LE    1
//! header    flags byte (bit 0 halted, bit 1 branches-only)
//!           name:  varint length + UTF-8 bytes
//!           note:  varint length + UTF-8 bytes (free-form metadata)
//!           varint n_insns, n_records, n_addrs
//!           varint insn_len, slot_len, addr_len (section byte sizes)
//! body      insn section   (n_insns instructions, opcode-byte codec)
//!           slot section   (n_records slots, delta + zigzag varint)
//!           flag section   (n_records raw flag bytes)
//!           addr section   (n_addrs addresses, delta + zigzag varint)
//! checksum  u64 LE    FNV-1a over every preceding byte
//! ```
//!
//! All varints are LEB128 over `u64`; signed values are zigzag-mapped
//! first. The header is self-delimiting, so [`peek_meta`] reads it from
//! a file *prefix* without loading the body — that is what
//! `ppsim trace info` does. Slots are stored as deltas because the
//! stream revisits the same small slot range every loop iteration;
//! addresses as deltas because accesses walk arrays. The trailing
//! checksum covers magic, version, header and body, so any truncation
//! or corruption that survives the structural checks is still caught.
//!
//! # Degraded branches-only mode
//!
//! CBP-style traces carry only `{ip, taken}` conditional-branch
//! records — no register values, no memory addresses, no non-branch
//! instructions. [`import_cbp`] synthesizes a minimal compare-and-branch
//! skeleton: each distinct branch IP becomes a two-slot static pair
//! (an unguarded `cmp.unc.eq p1, p2 = r1, 0` producer at slot `2k`, a
//! `(p1) br.cond` consumer at slot `2k+1`), and each dynamic record
//! becomes a compare record whose condition equals the branch outcome
//! followed by the branch record itself. The synthesized stream is
//! architecturally meaningless but *timing-faithful for branch
//! prediction studies*: every scheme sees the real dynamic
//! taken/not-taken sequence keyed by per-IP PCs, predicate schemes see
//! the producing compare, and MPKI / per-PC H2P numbers are exact.
//! Memory behavior, data dependences and ILP are not represented —
//! reports over such traces label the mode "branches-only".

use std::collections::BTreeMap;
use std::fmt;

use crate::exec::{ExecInfo, ExecRecord};
use crate::insn::{AluKind, CmpRel, CmpType, FpuKind, Insn, Op, Operand};
use crate::reg::{Fr, Gr, Pr};
use crate::trace::{TraceBuffer, KIND_BR, KIND_MASK, KIND_MEM, KIND_SHIFT};

/// File magic: identifies a `.pptrace` stream.
pub const MAGIC: [u8; 8] = *b"PPTRACE\0";

/// Current (and only) format version.
pub const VERSION: u32 = 1;

const FLAG_HALTED: u8 = 1;
const FLAG_BRANCHES_ONLY: u8 = 1 << 1;

/// Why a `.pptrace` byte stream was rejected.
///
/// Every malformed input maps to one of these — the decoder never
/// panics, whatever the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The stream ends before the structure it promises.
    Truncated,
    /// A structural invariant is violated (with a human-readable why).
    Corrupt(String),
    /// The trailing checksum does not match the stream contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::BadMagic => write!(f, "not a .pptrace file (bad magic)"),
            TraceFileError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .pptrace version {v} (this build reads {VERSION})"
                )
            }
            TraceFileError::Truncated => write!(f, "truncated .pptrace file"),
            TraceFileError::Corrupt(why) => write!(f, "corrupt .pptrace file: {why}"),
            TraceFileError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file says {stored:#018x}, contents hash to {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for TraceFileError {}

/// Header metadata of a `.pptrace` stream (readable from a prefix via
/// [`peek_meta`], without decoding the body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Workload name (benchmark name, or the import source).
    pub name: String,
    /// Free-form provenance note (compile flags, import options, ...).
    pub note: String,
    /// Whether the captured stream ended in a `halt`.
    pub halted: bool,
    /// Whether this is a degraded branches-only import (see module docs).
    pub branches_only: bool,
    /// Dynamic records in the stream.
    pub records: u64,
    /// Static instructions in the code image.
    pub static_insns: u64,
    /// Memory-address side-array entries.
    pub addrs: u64,
}

// ---------------------------------------------------------------------------
// Primitives: FNV-1a, varint, zigzag.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `state` (seed with
/// [`FNV_OFFSET`] via [`fnv1a`]).
fn fnv1a_continue(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_svarint(out: &mut Vec<u8>, v: i64) {
    put_varint(out, zigzag(v));
}

/// A bounds-checked sequential reader; every read can fail with
/// [`TraceFileError::Truncated`] instead of panicking.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceFileError> {
        let end = self.pos.checked_add(n).ok_or(TraceFileError::Truncated)?;
        if end > self.bytes.len() {
            return Err(TraceFileError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TraceFileError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, TraceFileError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(TraceFileError::Corrupt("varint overflows u64".into()));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn svarint(&mut self) -> Result<i64, TraceFileError> {
        Ok(unzigzag(self.varint()?))
    }
}

// ---------------------------------------------------------------------------
// Instruction codec.

const OP_ALU: u8 = 0;
const OP_MOVI: u8 = 1;
const OP_CMP: u8 = 2;
const OP_FCMP: u8 = 3;
const OP_FPU: u8 = 4;
const OP_ITOF: u8 = 5;
const OP_FTOI: u8 = 6;
const OP_LOAD: u8 = 7;
const OP_STORE: u8 = 8;
const OP_LOADF: u8 = 9;
const OP_STOREF: u8 = 10;
const OP_BR: u8 = 11;
const OP_NOP: u8 = 12;
const OP_HALT: u8 = 13;

fn alu_kind_code(k: AluKind) -> u8 {
    match k {
        AluKind::Add => 0,
        AluKind::Sub => 1,
        AluKind::And => 2,
        AluKind::Or => 3,
        AluKind::Xor => 4,
        AluKind::Shl => 5,
        AluKind::Shr => 6,
        AluKind::Mul => 7,
    }
}

fn alu_kind(b: u8) -> Result<AluKind, TraceFileError> {
    Ok(match b {
        0 => AluKind::Add,
        1 => AluKind::Sub,
        2 => AluKind::And,
        3 => AluKind::Or,
        4 => AluKind::Xor,
        5 => AluKind::Shl,
        6 => AluKind::Shr,
        7 => AluKind::Mul,
        _ => return Err(TraceFileError::Corrupt(format!("bad ALU kind {b}"))),
    })
}

fn fpu_kind_code(k: FpuKind) -> u8 {
    match k {
        FpuKind::Fadd => 0,
        FpuKind::Fsub => 1,
        FpuKind::Fmul => 2,
        FpuKind::Fdiv => 3,
    }
}

fn fpu_kind(b: u8) -> Result<FpuKind, TraceFileError> {
    Ok(match b {
        0 => FpuKind::Fadd,
        1 => FpuKind::Fsub,
        2 => FpuKind::Fmul,
        3 => FpuKind::Fdiv,
        _ => return Err(TraceFileError::Corrupt(format!("bad FPU kind {b}"))),
    })
}

fn cmp_type_code(t: CmpType) -> u8 {
    match t {
        CmpType::None => 0,
        CmpType::Unc => 1,
        CmpType::And => 2,
        CmpType::Or => 3,
    }
}

fn cmp_type(b: u8) -> Result<CmpType, TraceFileError> {
    Ok(match b {
        0 => CmpType::None,
        1 => CmpType::Unc,
        2 => CmpType::And,
        3 => CmpType::Or,
        _ => return Err(TraceFileError::Corrupt(format!("bad compare type {b}"))),
    })
}

fn cmp_rel_code(r: CmpRel) -> u8 {
    match r {
        CmpRel::Eq => 0,
        CmpRel::Ne => 1,
        CmpRel::Lt => 2,
        CmpRel::Le => 3,
        CmpRel::Gt => 4,
        CmpRel::Ge => 5,
    }
}

fn cmp_rel(b: u8) -> Result<CmpRel, TraceFileError> {
    Ok(match b {
        0 => CmpRel::Eq,
        1 => CmpRel::Ne,
        2 => CmpRel::Lt,
        3 => CmpRel::Le,
        4 => CmpRel::Gt,
        5 => CmpRel::Ge,
        _ => return Err(TraceFileError::Corrupt(format!("bad compare relation {b}"))),
    })
}

fn gr(b: u8) -> Result<Gr, TraceFileError> {
    Gr::try_new(b).ok_or_else(|| TraceFileError::Corrupt(format!("bad integer register r{b}")))
}

fn fr(b: u8) -> Result<Fr, TraceFileError> {
    Fr::try_new(b).ok_or_else(|| TraceFileError::Corrupt(format!("bad float register f{b}")))
}

fn pr(b: u8) -> Result<Pr, TraceFileError> {
    Pr::try_new(b).ok_or_else(|| TraceFileError::Corrupt(format!("bad predicate register p{b}")))
}

fn put_operand(out: &mut Vec<u8>, operand: Operand) {
    match operand {
        Operand::Reg(r) => {
            out.push(0);
            out.push(r.index() as u8);
        }
        Operand::Imm(v) => {
            out.push(1);
            put_svarint(out, v);
        }
    }
}

fn get_operand(r: &mut Reader<'_>) -> Result<Operand, TraceFileError> {
    match r.u8()? {
        0 => Ok(Operand::Reg(gr(r.u8()?)?)),
        1 => Ok(Operand::Imm(r.svarint()?)),
        t => Err(TraceFileError::Corrupt(format!("bad operand tag {t}"))),
    }
}

fn put_insn(out: &mut Vec<u8>, insn: &Insn) {
    out.push(insn.qp.index() as u8);
    match insn.op {
        Op::Alu {
            kind,
            dst,
            src1,
            src2,
        } => {
            out.push(OP_ALU);
            out.push(alu_kind_code(kind));
            out.push(dst.index() as u8);
            out.push(src1.index() as u8);
            put_operand(out, src2);
        }
        Op::Movi { dst, imm } => {
            out.push(OP_MOVI);
            out.push(dst.index() as u8);
            put_svarint(out, imm);
        }
        Op::Cmp {
            ctype,
            rel,
            pt,
            pf,
            src1,
            src2,
        } => {
            out.push(OP_CMP);
            out.push(cmp_type_code(ctype));
            out.push(cmp_rel_code(rel));
            out.push(pt.index() as u8);
            out.push(pf.index() as u8);
            out.push(src1.index() as u8);
            put_operand(out, src2);
        }
        Op::Fcmp {
            ctype,
            rel,
            pt,
            pf,
            src1,
            src2,
        } => {
            out.push(OP_FCMP);
            out.push(cmp_type_code(ctype));
            out.push(cmp_rel_code(rel));
            out.push(pt.index() as u8);
            out.push(pf.index() as u8);
            out.push(src1.index() as u8);
            out.push(src2.index() as u8);
        }
        Op::Fpu {
            kind,
            dst,
            src1,
            src2,
        } => {
            out.push(OP_FPU);
            out.push(fpu_kind_code(kind));
            out.push(dst.index() as u8);
            out.push(src1.index() as u8);
            out.push(src2.index() as u8);
        }
        Op::Itof { dst, src } => {
            out.push(OP_ITOF);
            out.push(dst.index() as u8);
            out.push(src.index() as u8);
        }
        Op::Ftoi { dst, src } => {
            out.push(OP_FTOI);
            out.push(dst.index() as u8);
            out.push(src.index() as u8);
        }
        Op::Load { dst, base, offset } => {
            out.push(OP_LOAD);
            out.push(dst.index() as u8);
            out.push(base.index() as u8);
            put_svarint(out, offset);
        }
        Op::Store { src, base, offset } => {
            out.push(OP_STORE);
            out.push(src.index() as u8);
            out.push(base.index() as u8);
            put_svarint(out, offset);
        }
        Op::Loadf { dst, base, offset } => {
            out.push(OP_LOADF);
            out.push(dst.index() as u8);
            out.push(base.index() as u8);
            put_svarint(out, offset);
        }
        Op::Storef { src, base, offset } => {
            out.push(OP_STOREF);
            out.push(src.index() as u8);
            out.push(base.index() as u8);
            put_svarint(out, offset);
        }
        Op::Br { target } => {
            out.push(OP_BR);
            put_varint(out, u64::from(target));
        }
        Op::Nop => out.push(OP_NOP),
        Op::Halt => out.push(OP_HALT),
    }
}

fn get_insn(r: &mut Reader<'_>) -> Result<Insn, TraceFileError> {
    let qp = pr(r.u8()?)?;
    let opcode = r.u8()?;
    let op = match opcode {
        OP_ALU => Op::Alu {
            kind: alu_kind(r.u8()?)?,
            dst: gr(r.u8()?)?,
            src1: gr(r.u8()?)?,
            src2: get_operand(r)?,
        },
        OP_MOVI => Op::Movi {
            dst: gr(r.u8()?)?,
            imm: r.svarint()?,
        },
        OP_CMP => Op::Cmp {
            ctype: cmp_type(r.u8()?)?,
            rel: cmp_rel(r.u8()?)?,
            pt: pr(r.u8()?)?,
            pf: pr(r.u8()?)?,
            src1: gr(r.u8()?)?,
            src2: get_operand(r)?,
        },
        OP_FCMP => Op::Fcmp {
            ctype: cmp_type(r.u8()?)?,
            rel: cmp_rel(r.u8()?)?,
            pt: pr(r.u8()?)?,
            pf: pr(r.u8()?)?,
            src1: fr(r.u8()?)?,
            src2: fr(r.u8()?)?,
        },
        OP_FPU => Op::Fpu {
            kind: fpu_kind(r.u8()?)?,
            dst: fr(r.u8()?)?,
            src1: fr(r.u8()?)?,
            src2: fr(r.u8()?)?,
        },
        OP_ITOF => Op::Itof {
            dst: fr(r.u8()?)?,
            src: gr(r.u8()?)?,
        },
        OP_FTOI => Op::Ftoi {
            dst: gr(r.u8()?)?,
            src: fr(r.u8()?)?,
        },
        OP_LOAD => Op::Load {
            dst: gr(r.u8()?)?,
            base: gr(r.u8()?)?,
            offset: r.svarint()?,
        },
        OP_STORE => Op::Store {
            src: gr(r.u8()?)?,
            base: gr(r.u8()?)?,
            offset: r.svarint()?,
        },
        OP_LOADF => Op::Loadf {
            dst: fr(r.u8()?)?,
            base: gr(r.u8()?)?,
            offset: r.svarint()?,
        },
        OP_STOREF => Op::Storef {
            src: fr(r.u8()?)?,
            base: gr(r.u8()?)?,
            offset: r.svarint()?,
        },
        OP_BR => {
            let target = r.varint()?;
            let target = u32::try_from(target)
                .map_err(|_| TraceFileError::Corrupt(format!("branch target {target} > u32")))?;
            Op::Br { target }
        }
        OP_NOP => Op::Nop,
        OP_HALT => Op::Halt,
        _ => return Err(TraceFileError::Corrupt(format!("unknown opcode {opcode}"))),
    };
    Ok(Insn::guarded(qp, op))
}

// ---------------------------------------------------------------------------
// Sections.

fn encode_sections(buf: &TraceBuffer) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let (insns, slots, _flags, addrs, _halted) = buf.parts();
    let mut insn_sec = Vec::new();
    for insn in insns {
        put_insn(&mut insn_sec, insn);
    }
    let mut slot_sec = Vec::new();
    let mut prev = 0i64;
    for &slot in slots {
        put_svarint(&mut slot_sec, i64::from(slot) - prev);
        prev = i64::from(slot);
    }
    let mut addr_sec = Vec::new();
    let mut prev = 0u64;
    for &addr in addrs {
        put_svarint(&mut addr_sec, addr.wrapping_sub(prev) as i64);
        prev = addr;
    }
    (insn_sec, slot_sec, addr_sec)
}

/// Content identity of a trace stream: an FNV-1a hash over the encoded
/// instruction/slot/flag/address sections plus the halted marker —
/// everything that affects replay, and nothing that doesn't (the name
/// and note are excluded, so a renamed export keeps its cache identity).
pub fn content_hash(buf: &TraceBuffer) -> u64 {
    let (_, _, flags, _, halted) = buf.parts();
    let (insn_sec, slot_sec, addr_sec) = encode_sections(buf);
    let mut h = fnv1a(&insn_sec);
    h = fnv1a_continue(h, &slot_sec);
    h = fnv1a_continue(h, flags);
    h = fnv1a_continue(h, &addr_sec);
    fnv1a_continue(h, &[u8::from(halted)])
}

/// Encodes `buf` into `.pptrace` bytes (see the module docs for the
/// layout). `name` and `note` are stored as provenance metadata only;
/// they do not affect [`content_hash`].
pub fn encode(buf: &TraceBuffer, name: &str, note: &str, branches_only: bool) -> Vec<u8> {
    let (insns, slots, flags, addrs, halted) = buf.parts();
    let (insn_sec, slot_sec, addr_sec) = encode_sections(buf);

    let mut out = Vec::with_capacity(
        64 + name.len()
            + note.len()
            + insn_sec.len()
            + slot_sec.len()
            + flags.len()
            + addr_sec.len(),
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let mut header_flags = 0u8;
    if halted {
        header_flags |= FLAG_HALTED;
    }
    if branches_only {
        header_flags |= FLAG_BRANCHES_ONLY;
    }
    out.push(header_flags);
    put_varint(&mut out, name.len() as u64);
    out.extend_from_slice(name.as_bytes());
    put_varint(&mut out, note.len() as u64);
    out.extend_from_slice(note.as_bytes());
    put_varint(&mut out, insns.len() as u64);
    put_varint(&mut out, slots.len() as u64);
    put_varint(&mut out, addrs.len() as u64);
    put_varint(&mut out, insn_sec.len() as u64);
    put_varint(&mut out, slot_sec.len() as u64);
    put_varint(&mut out, addr_sec.len() as u64);
    out.extend_from_slice(&insn_sec);
    out.extend_from_slice(&slot_sec);
    out.extend_from_slice(flags);
    out.extend_from_slice(&addr_sec);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

struct Header {
    meta: TraceMeta,
    insn_len: usize,
    slot_len: usize,
    addr_len: usize,
    /// Byte offset just past the header (start of the insn section).
    body_start: usize,
}

fn parse_header(bytes: &[u8]) -> Result<Header, TraceFileError> {
    let mut r = Reader::new(bytes);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let version = u32::from_le_bytes(r.take(4)?.try_into().expect("4-byte slice"));
    if version != VERSION {
        return Err(TraceFileError::UnsupportedVersion(version));
    }
    let header_flags = r.u8()?;
    let name_len = usize::try_from(r.varint()?)
        .map_err(|_| TraceFileError::Corrupt("name length > usize".into()))?;
    let name = String::from_utf8(r.take(name_len)?.to_vec())
        .map_err(|_| TraceFileError::Corrupt("name is not UTF-8".into()))?;
    let note_len = usize::try_from(r.varint()?)
        .map_err(|_| TraceFileError::Corrupt("note length > usize".into()))?;
    let note = String::from_utf8(r.take(note_len)?.to_vec())
        .map_err(|_| TraceFileError::Corrupt("note is not UTF-8".into()))?;
    let static_insns = r.varint()?;
    let records = r.varint()?;
    let addrs = r.varint()?;
    let sec = |r: &mut Reader<'_>, what: &str| -> Result<usize, TraceFileError> {
        usize::try_from(r.varint()?)
            .map_err(|_| TraceFileError::Corrupt(format!("{what} section length > usize")))
    };
    let insn_len = sec(&mut r, "instruction")?;
    let slot_len = sec(&mut r, "slot")?;
    let addr_len = sec(&mut r, "address")?;
    Ok(Header {
        meta: TraceMeta {
            name,
            note,
            halted: header_flags & FLAG_HALTED != 0,
            branches_only: header_flags & FLAG_BRANCHES_ONLY != 0,
            records,
            static_insns,
            addrs,
        },
        insn_len,
        slot_len,
        addr_len,
        body_start: r.pos,
    })
}

/// Reads the header metadata from a `.pptrace` prefix (the body and
/// checksum need not be present). Used by `ppsim trace info` to
/// describe a file without loading it.
///
/// # Errors
///
/// Structural [`TraceFileError`]s; the checksum is *not* verified (it
/// sits at the end of the stream).
pub fn peek_meta(bytes: &[u8]) -> Result<TraceMeta, TraceFileError> {
    Ok(parse_header(bytes)?.meta)
}

/// Decodes a complete `.pptrace` byte stream back into a
/// [`TraceBuffer`] and its metadata.
///
/// The decode is strict: length bookkeeping must be exact, the
/// checksum must match, every register/opcode must be valid, every
/// record's slot must index the code image, branch records must sit on
/// branch slots, and the memory-record count must equal the address
/// side-array length. A buffer that decodes successfully can be
/// replayed without panicking.
///
/// # Errors
///
/// A [`TraceFileError`] describing the first violation found.
pub fn decode(bytes: &[u8]) -> Result<(TraceBuffer, TraceMeta), TraceFileError> {
    let header = parse_header(bytes)?;
    let n_records = usize::try_from(header.meta.records)
        .map_err(|_| TraceFileError::Corrupt("record count > usize".into()))?;
    let n_insns = usize::try_from(header.meta.static_insns)
        .map_err(|_| TraceFileError::Corrupt("instruction count > usize".into()))?;
    let n_addrs = usize::try_from(header.meta.addrs)
        .map_err(|_| TraceFileError::Corrupt("address count > usize".into()))?;

    let body_len = header
        .insn_len
        .checked_add(header.slot_len)
        .and_then(|n| n.checked_add(n_records))
        .and_then(|n| n.checked_add(header.addr_len))
        .ok_or_else(|| TraceFileError::Corrupt("section lengths overflow".into()))?;
    let total = header
        .body_start
        .checked_add(body_len)
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| TraceFileError::Corrupt("file length overflows".into()))?;
    if bytes.len() < total {
        return Err(TraceFileError::Truncated);
    }
    if bytes.len() > total {
        return Err(TraceFileError::Corrupt(format!(
            "{} trailing bytes after checksum",
            bytes.len() - total
        )));
    }
    let stored = u64::from_le_bytes(bytes[total - 8..].try_into().expect("8-byte slice"));
    let computed = fnv1a(&bytes[..total - 8]);
    if stored != computed {
        return Err(TraceFileError::ChecksumMismatch { stored, computed });
    }

    let mut r = Reader::new(&bytes[header.body_start..total - 8]);
    let insn_sec = Reader::new(r.take(header.insn_len)?);
    let slot_sec = Reader::new(r.take(header.slot_len)?);
    let flags = r.take(n_records)?.to_vec();
    let addr_sec = Reader::new(r.take(header.addr_len)?);

    let mut insns = Vec::with_capacity(n_insns.min(1 << 20));
    let mut ir = insn_sec;
    for _ in 0..n_insns {
        insns.push(get_insn(&mut ir)?);
    }
    if ir.pos != ir.bytes.len() {
        return Err(TraceFileError::Corrupt(
            "instruction section has trailing bytes".into(),
        ));
    }

    let mut slots = Vec::with_capacity(n_records.min(1 << 24));
    let mut sr = slot_sec;
    let mut prev = 0i64;
    for i in 0..n_records {
        let slot = prev + sr.svarint()?;
        let slot = u32::try_from(slot).map_err(|_| {
            TraceFileError::Corrupt(format!("record {i}: slot {slot} out of range"))
        })?;
        if slot as usize >= n_insns {
            return Err(TraceFileError::Corrupt(format!(
                "record {i}: slot {slot} >= {n_insns} static instructions"
            )));
        }
        slots.push(slot);
        prev = i64::from(slot);
    }
    if sr.pos != sr.bytes.len() {
        return Err(TraceFileError::Corrupt(
            "slot section has trailing bytes".into(),
        ));
    }

    let mut addrs = Vec::with_capacity(n_addrs.min(1 << 24));
    let mut ar = addr_sec;
    let mut prev = 0u64;
    for _ in 0..n_addrs {
        let addr = prev.wrapping_add(ar.svarint()? as u64);
        addrs.push(addr);
        prev = addr;
    }
    if ar.pos != ar.bytes.len() {
        return Err(TraceFileError::Corrupt(
            "address section has trailing bytes".into(),
        ));
    }

    // Replay-safety invariants: branch flag bytes must sit on branch
    // slots (record reconstruction reads the target from the static
    // image) and the mem-record count must match the side array.
    let mut mem_records = 0usize;
    for (i, (&flag, &slot)) in flags.iter().zip(&slots).enumerate() {
        match (flag >> KIND_SHIFT) & KIND_MASK {
            KIND_BR if !matches!(insns[slot as usize].op, Op::Br { .. }) => {
                return Err(TraceFileError::Corrupt(format!(
                    "record {i}: branch record on non-branch slot {slot}"
                )));
            }
            KIND_MEM => mem_records += 1,
            _ => {}
        }
    }
    if mem_records != n_addrs {
        return Err(TraceFileError::Corrupt(format!(
            "{mem_records} memory records but {n_addrs} side-array addresses"
        )));
    }

    let buf = TraceBuffer::from_parts(insns, slots, flags, addrs, header.meta.halted);
    Ok((buf, header.meta))
}

// ---------------------------------------------------------------------------
// CBP-style branch-trace import.

/// What [`import_cbp`] synthesized (for reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbpSummary {
    /// Dynamic conditional-branch records in the input.
    pub branches: u64,
    /// Of those, how many were taken.
    pub taken: u64,
    /// Distinct static branch IPs.
    pub static_branches: u64,
    /// The distinct IPs in ascending order: IP `ips[k]` became the
    /// static slot pair `(2k, 2k+1)`, so reports can translate
    /// synthesized slots back to the source trace's addresses.
    pub ips: Vec<u64>,
}

/// Imports a CBP-style textual branch trace into a [`TraceBuffer`]
/// (degraded branches-only mode — see the module docs).
///
/// Input format, one record per line: `<ip> <taken>`, where `ip` is a
/// hex (`0x…`) or decimal instruction address and `taken` is one of
/// `1/0/T/N/t/n`. Blank lines and `#` comments are ignored.
///
/// # Errors
///
/// [`TraceFileError::Corrupt`] naming the offending line for malformed
/// input, or if the input contains no records.
pub fn import_cbp(text: &str) -> Result<(TraceBuffer, CbpSummary), TraceFileError> {
    let mut parsed: Vec<(u64, bool)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(ip), Some(taken), None) = (fields.next(), fields.next(), fields.next()) else {
            return Err(TraceFileError::Corrupt(format!(
                "line {}: expected `<ip> <taken>`, got `{line}`",
                lineno + 1
            )));
        };
        let ip = if let Some(hex) = ip.strip_prefix("0x").or_else(|| ip.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16)
        } else {
            ip.parse()
        }
        .map_err(|_| {
            TraceFileError::Corrupt(format!("line {}: bad branch address `{ip}`", lineno + 1))
        })?;
        let taken = match taken {
            "1" | "T" | "t" => true,
            "0" | "N" | "n" => false,
            other => {
                return Err(TraceFileError::Corrupt(format!(
                    "line {}: bad taken flag `{other}` (want 1/0/T/N)",
                    lineno + 1
                )))
            }
        };
        parsed.push((ip, taken));
    }
    if parsed.is_empty() {
        return Err(TraceFileError::Corrupt("no branch records in input".into()));
    }

    // Deterministic static skeleton: distinct IPs in ascending order,
    // each a (compare producer, guarded branch consumer) slot pair.
    let mut index: BTreeMap<u64, u32> = parsed.iter().map(|&(ip, _)| (ip, 0)).collect();
    for (k, slot) in index.values_mut().enumerate() {
        *slot = k as u32;
    }
    let mut insns = Vec::with_capacity(index.len() * 2);
    for k in 0..index.len() as u32 {
        insns.push(Insn::new(Op::Cmp {
            ctype: CmpType::Unc,
            rel: CmpRel::Eq,
            pt: Pr::new(1),
            pf: Pr::new(2),
            src1: Gr::new(1),
            src2: Operand::imm(0),
        }));
        // Loop back to the producing compare: gives each static branch a
        // stable, in-range target without inventing control flow the
        // source trace doesn't describe.
        insns.push(Insn::guarded(Pr::new(1), Op::Br { target: 2 * k }));
    }

    let mut buf = TraceBuffer::from_parts(insns, Vec::new(), Vec::new(), Vec::new(), false);
    let mut taken_count = 0u64;
    let mut seq = 0u64;
    for &(ip, taken) in &parsed {
        let k = index[&ip];
        let cmp_slot = 2 * k;
        let br_slot = 2 * k + 1;
        taken_count += u64::from(taken);
        buf.push(&ExecRecord {
            seq,
            slot: cmp_slot,
            insn: buf.code()[cmp_slot as usize],
            qp: true,
            info: ExecInfo::Cmp {
                cond: taken,
                pt_write: Some(taken),
                pf_write: Some(!taken),
            },
            next_slot: br_slot,
        });
        seq += 1;
        buf.push(&ExecRecord {
            seq,
            slot: br_slot,
            insn: buf.code()[br_slot as usize],
            qp: taken,
            info: ExecInfo::Br {
                taken,
                target: cmp_slot,
            },
            next_slot: cmp_slot,
        });
        seq += 1;
    }

    let summary = CbpSummary {
        branches: parsed.len() as u64,
        taken: taken_count,
        static_branches: index.len() as u64,
        ips: index.keys().copied().collect(),
    };
    Ok((buf, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::trace::{kitchen_sink_program, TraceCursor};
    use crate::InsnSource;
    use std::sync::Arc;

    fn sink_trace() -> TraceBuffer {
        TraceBuffer::capture(&kitchen_sink_program(), u64::MAX).unwrap()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let buf = sink_trace();
        let bytes = encode(&buf, "kitchen-sink", "unit test", false);
        let (decoded, meta) = decode(&bytes).unwrap();

        assert_eq!(meta.name, "kitchen-sink");
        assert_eq!(meta.note, "unit test");
        assert!(meta.halted);
        assert!(!meta.branches_only);
        assert_eq!(meta.records, buf.len());
        assert_eq!(meta.static_insns, buf.code().len() as u64);

        assert_eq!(decoded.halted(), buf.halted());
        assert_eq!(decoded.code(), buf.code());
        assert_eq!(
            decoded.iter().collect::<Vec<_>>(),
            buf.iter().collect::<Vec<_>>()
        );
        assert_eq!(content_hash(&decoded), content_hash(&buf));

        // Re-encoding the decoded buffer reproduces the file exactly.
        assert_eq!(encode(&decoded, "kitchen-sink", "unit test", false), bytes);
    }

    #[test]
    fn peek_meta_reads_a_prefix() {
        let buf = sink_trace();
        let bytes = encode(&buf, "sink", "prefix", false);
        let full = peek_meta(&bytes).unwrap();
        // The header is a small prefix; chop the body off entirely.
        let prefix = &bytes[..64.min(bytes.len())];
        assert_eq!(peek_meta(prefix).unwrap(), full);
        assert_eq!(full.records, buf.len());
    }

    #[test]
    fn name_and_note_do_not_change_content_identity() {
        let buf = sink_trace();
        let a = decode(&encode(&buf, "a", "", false)).unwrap().0;
        let b = decode(&encode(&buf, "b", "different note", false))
            .unwrap()
            .0;
        assert_eq!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let bytes = encode(&sink_trace(), "sink", "", false);
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceFileError::Truncated | TraceFileError::BadMagic),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sink_trace(), "sink", "", false);
        bytes[0] ^= 0xff;
        assert_eq!(decode(&bytes).unwrap_err(), TraceFileError::BadMagic);
        assert_eq!(peek_meta(&bytes).unwrap_err(), TraceFileError::BadMagic);
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode(&sink_trace(), "sink", "", false);
        bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
        assert_eq!(
            decode(&bytes).unwrap_err(),
            TraceFileError::UnsupportedVersion(VERSION + 1)
        );
    }

    #[test]
    fn corrupted_body_fails_the_checksum() {
        let bytes = encode(&sink_trace(), "sink", "", false);
        // Flip one bit in every body byte position in turn; each flip
        // must be caught by the checksum (never a panic, never Ok).
        let body_start = bytes.len() - 9;
        let mut copy = bytes.clone();
        copy[body_start] ^= 1;
        assert!(matches!(
            decode(&copy).unwrap_err(),
            TraceFileError::ChecksumMismatch { .. }
        ));
        // And a flipped checksum byte is also a mismatch.
        let mut copy = bytes.clone();
        let last = copy.len() - 1;
        copy[last] ^= 1;
        assert!(matches!(
            decode(&copy).unwrap_err(),
            TraceFileError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&sink_trace(), "sink", "", false);
        bytes.push(0);
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            TraceFileError::Corrupt(_)
        ));
    }

    #[test]
    fn page_straddling_addresses_round_trip() {
        // Stores walking backwards and forwards across a 4 KiB page
        // boundary: deltas are negative, positive and large.
        let mut a = Asm::new();
        a.init_gr(crate::Gr::new(1), 0xfff0);
        a.movi(crate::Gr::new(2), 7);
        a.st(crate::Gr::new(2), crate::Gr::new(1), 0); // 0xfff0
        a.st(crate::Gr::new(2), crate::Gr::new(1), 0x20); // 0x10010 (next page)
        a.st(crate::Gr::new(2), crate::Gr::new(1), 8); // 0xfff8 (back)
        a.ld(crate::Gr::new(3), crate::Gr::new(1), 0x20); // 0x10010
        a.halt();
        let prog = a.assemble().unwrap();
        let buf = TraceBuffer::capture(&prog, u64::MAX).unwrap();
        let (decoded, _) = decode(&encode(&buf, "straddle", "", false)).unwrap();
        let addrs: Vec<u64> = decoded
            .iter()
            .filter_map(|r| match r.info {
                ExecInfo::Mem { addr } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(addrs, vec![0xfff0, 0x10010, 0xfff8, 0x10010]);
        assert_eq!(
            decoded.iter().collect::<Vec<_>>(),
            buf.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn cbp_import_synthesizes_a_replayable_stream() {
        let text = "\
# ip taken
0x400100 T
0x400200 N
0x400100 t
4194560 1   # same as 0x400200, decimal
0x400100 0
";
        let (buf, summary) = import_cbp(text).unwrap();
        assert_eq!(
            summary,
            CbpSummary {
                branches: 5,
                taken: 3,
                static_branches: 2,
                ips: vec![0x400100, 0x400200],
            }
        );
        // Two records (compare + branch) per input branch.
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.code().len(), 4);
        assert!(!buf.halted());

        let recs: Vec<ExecRecord> = buf.iter().collect();
        // First input branch: ip 0x400100 -> static pair 0 (lowest IP).
        assert_eq!(recs[0].slot, 0);
        assert_eq!(
            recs[0].info,
            ExecInfo::Cmp {
                cond: true,
                pt_write: Some(true),
                pf_write: Some(false),
            }
        );
        assert_eq!(recs[1].slot, 1);
        assert!(recs[1].qp);
        assert_eq!(
            recs[1].info,
            ExecInfo::Br {
                taken: true,
                target: 0
            }
        );
        // Second input branch: ip 0x400200 -> static pair 1, not taken.
        assert_eq!(recs[2].slot, 2);
        assert_eq!(recs[3].slot, 3);
        assert!(!recs[3].qp);
        assert_eq!(
            recs[3].info,
            ExecInfo::Br {
                taken: false,
                target: 2
            }
        );

        // A cursor replays the whole stream; the end is not a halt.
        let mut cur = TraceCursor::new(Arc::new(buf.clone()));
        let mut n = 0;
        while cur.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        assert!(!cur.ended_halted());

        // And the import round-trips through the file format.
        let bytes = encode(&buf, "cbp", "", true);
        let (decoded, meta) = decode(&bytes).unwrap();
        assert!(meta.branches_only);
        assert_eq!(decoded.iter().collect::<Vec<_>>(), recs);
    }

    #[test]
    fn cbp_import_rejects_malformed_lines() {
        for (text, needle) in [
            ("", "no branch records"),
            ("0x10", "expected `<ip> <taken>`"),
            ("0x10 T extra", "expected `<ip> <taken>`"),
            ("zzz T", "bad branch address"),
            ("0x10 maybe", "bad taken flag"),
        ] {
            let err = import_cbp(text).unwrap_err();
            let TraceFileError::Corrupt(msg) = &err else {
                panic!("expected Corrupt, got {err:?}");
            };
            assert!(msg.contains(needle), "`{msg}` missing `{needle}`");
        }
    }

    #[test]
    fn import_is_deterministic() {
        let text = "0x9 T\n0x5 N\n0x9 N\n";
        let (a, _) = import_cbp(text).unwrap();
        let (b, _) = import_cbp(text).unwrap();
        assert_eq!(content_hash(&a), content_hash(&b));
        assert_eq!(encode(&a, "x", "", true), encode(&b, "x", "", true));
        // Lowest IP gets the first static pair regardless of stream order.
        assert_eq!(a.iter().next().unwrap().slot, 2, "0x9 maps to pair 1");
    }
}
