//! # ppsim-isa — a predicated compare-and-branch ISA ("PISA")
//!
//! This crate defines the instruction set simulated by the rest of the
//! workspace, together with an assembler-style program builder and a
//! functional (architecturally correct) emulator.
//!
//! The ISA is modelled on IA-64 as assumed by Quiñones, Parcerisa and
//! González, *"Improving Branch Prediction and Predicated Execution in
//! Out-of-Order Processors"* (HPCA 2007):
//!
//! * 128 integer registers `r0..r127` (`r0` is hardwired to zero),
//! * 128 floating-point registers `f0..f127`,
//! * 64 one-bit **predicate registers** `p0..p63`, with `p0` hardwired to
//!   `true`,
//! * every instruction carries a **qualifying predicate** (guard); when the
//!   guard evaluates to `false` the instruction behaves as a no-op,
//! * **compare** instructions produce *two* predicates (the condition and,
//!   depending on the compare type, its complement),
//! * conditional branches are taken iff their qualifying predicate is true
//!   (the *compare-and-branch* model: the branch consumes a predicate that a
//!   previous compare produced).
//!
//! # Example
//!
//! ```
//! use ppsim_isa::{Asm, CmpRel, CmpType, Gr, Machine, Operand, Pr, StopReason};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! let done = a.new_label();
//! a.movi(Gr::new(1), 41);
//! // p1 = (r1 < 100), p2 = !(r1 < 100)
//! a.cmp(CmpType::Unc, CmpRel::Lt, Pr::new(1), Pr::new(2), Gr::new(1), Operand::imm(100));
//! // guarded add: only runs because p1 is true
//! a.pred(Pr::new(1)).addi(Gr::new(2), Gr::new(1), 1);
//! a.pred(Pr::new(2)).br(done);
//! a.bind(done);
//! a.halt();
//! let program = a.assemble()?;
//!
//! let mut m = Machine::new(&program);
//! let outcome = m.run(1_000)?;
//! assert_eq!(outcome.reason, StopReason::Halted);
//! assert_eq!(m.gr(Gr::new(2)), 42);
//! # Ok(())
//! # }
//! ```

mod asm;
mod exec;
mod insn;
mod parse;
pub mod pptrace;
mod program;
mod reg;
mod trace;

pub use asm::{Asm, AsmError, Label};
pub use exec::{
    Checkpoint, ExecError, ExecInfo, ExecRecord, Machine, MemSnapshot, RunOutcome, SparseMem,
    StopReason,
};
pub use insn::{AluKind, CmpRel, CmpType, FpuKind, Insn, Op, Operand};
pub use parse::{parse_program, ParseError};
pub use pptrace::{CbpSummary, TraceFileError, TraceMeta};
pub use program::{DataSegment, Program, ProgramError};
pub use reg::{Fr, Gr, Pr};
pub use trace::{InsnSource, TraceBuffer, TraceCursor};

/// Byte distance between consecutive instruction slots when deriving
/// synthetic instruction addresses (see [`Program::pc_of`]).
///
/// Predictors hash on instruction addresses; spacing slots 16 bytes apart
/// keeps the low bits varied like a real instruction stream.
pub const SLOT_BYTES: u64 = 16;

/// Number of instruction slots per fetch bundle (IA-64 packs three).
pub const BUNDLE_SLOTS: usize = 3;
