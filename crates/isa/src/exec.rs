//! Functional (architecturally correct) emulator.
//!
//! [`Machine`] interprets a [`Program`] one instruction at a time, producing
//! an [`ExecRecord`] per dynamic instruction. The timing simulator in
//! `ppsim-pipeline` is *execution-driven*: it replays this record stream
//! through a detailed out-of-order pipeline model, so the architectural
//! semantics live here, in exactly one place.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::insn::{AluKind, FpuKind, Insn, Op};
use crate::program::Program;
use crate::reg::{Fr, Gr, Pr, NUM_FR, NUM_GR, NUM_PR};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

type Page = [u8; PAGE_SIZE];

/// A sparse, page-granular byte-addressable memory.
///
/// The most-recently-written page is held in a dedicated hot slot
/// outside the page map, so the sequential access runs that dominate
/// the benchmarks skip the hash lookup entirely.
///
/// Pages are reference-counted so a [`MemSnapshot`] shares them
/// copy-on-write: taking a snapshot clones only the page *map*; a page's
/// 4 KiB body is copied lazily, the first time either side writes it
/// after the snapshot ([`Arc::make_mut`] in the private `page_mut`).
#[derive(Clone, Debug, Default)]
pub struct SparseMem {
    pages: HashMap<u64, Arc<Page>>,
    /// Last-page memo: (page number, page), not present in `pages`.
    hot: Option<(u64, Arc<Page>)>,
}

impl SparseMem {
    /// Creates an empty memory (all bytes read as zero).
    pub fn new() -> Self {
        SparseMem::default()
    }

    /// Number of materialized pages (for footprint diagnostics).
    pub fn page_count(&self) -> usize {
        self.pages.len() + usize::from(self.hot.is_some())
    }

    /// Shared access to page `pno`, if materialized.
    fn page(&self, pno: u64) -> Option<&Page> {
        if let Some((hot_no, page)) = &self.hot {
            if *hot_no == pno {
                return Some(page);
            }
        }
        self.pages.get(&pno).map(|p| &**p)
    }

    /// Moves page `pno` into the hot slot, materializing it only when
    /// `create` is set; a read of an absent page must stay free (all-zero,
    /// no allocation). Promotion moves the `Arc`, so it never copies a
    /// snapshot-shared page body.
    fn promote(&mut self, pno: u64, create: bool) -> Option<&Arc<Page>> {
        let hot_hit = matches!(&self.hot, Some((hot_no, _)) if *hot_no == pno);
        if !hot_hit {
            let page = match self.pages.remove(&pno) {
                Some(p) => p,
                None if create => Arc::new([0u8; PAGE_SIZE]),
                None => return None,
            };
            if let Some((old_no, old)) = self.hot.replace((pno, page)) {
                self.pages.insert(old_no, old);
            }
        }
        self.hot.as_ref().map(|(_, p)| p)
    }

    /// Mutable access to page `pno`, promoting it to the hot slot. A page
    /// still shared with a [`MemSnapshot`] is copied here, on first write.
    fn page_mut(&mut self, pno: u64, create: bool) -> Option<&mut Page> {
        self.promote(pno, create)?;
        self.hot.as_mut().map(|(_, p)| Arc::make_mut(p))
    }

    /// Takes a copy-on-write snapshot of the current memory image: O(pages)
    /// reference bumps, no page bodies copied. The hot-page memo is folded
    /// into the snapshot's map, so it round-trips regardless of which page
    /// happened to be hot.
    pub fn snapshot(&self) -> MemSnapshot {
        let mut pages = self.pages.clone();
        if let Some((no, p)) = &self.hot {
            pages.insert(*no, Arc::clone(p));
        }
        MemSnapshot { pages }
    }

    /// Resets this memory to a snapshot's image. Pages become shared with
    /// the snapshot again; later writes on either side copy on demand.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        self.pages = snap.pages.clone();
        self.hot = None;
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr >> PAGE_SHIFT) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .page_mut(addr >> PAGE_SHIFT, true)
            .expect("created page");
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian `u64` (any alignment).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 8 {
            match self.page(addr >> PAGE_SHIFT) {
                Some(page) => u64::from_le_bytes(page[off..off + 8].try_into().unwrap()),
                None => 0,
            }
        } else {
            // Page-straddling access: byte-by-byte across the boundary.
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u64));
            }
            u64::from_le_bytes(bytes)
        }
    }

    /// Reads a little-endian `u64` and promotes its page to the hot
    /// slot, so a sequential run of loads pays one hash lookup total.
    /// Never materializes a page, and never copies a snapshot-shared one.
    pub fn load_u64(&mut self, addr: u64) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 8 {
            match self.promote(addr >> PAGE_SHIFT, false) {
                Some(page) => u64::from_le_bytes(page[off..off + 8].try_into().unwrap()),
                None => 0,
            }
        } else {
            self.read_u64(addr)
        }
    }

    /// Writes a little-endian `u64` (any alignment).
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 8 {
            let page = self
                .page_mut(addr >> PAGE_SHIFT, true)
                .expect("created page");
            page[off..off + 8].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u64), *b);
            }
        }
    }

    /// Copies a byte slice into memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }
}

/// A copy-on-write snapshot of a [`SparseMem`] image.
///
/// Holds shared references to every materialized page at snapshot time;
/// neither side copies a page until one of them writes it. Cloning a
/// snapshot is O(pages) reference bumps.
#[derive(Clone, Debug, Default)]
pub struct MemSnapshot {
    pages: HashMap<u64, Arc<Page>>,
}

impl MemSnapshot {
    /// Number of pages captured.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Per-instruction execution facts recorded for the timing model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExecInfo {
    /// Nothing beyond the guard outcome (ALU results, nullified ops, ...).
    None,
    /// A compare resolved; `pt_write`/`pf_write` are `Some(v)` when the
    /// corresponding architectural predicate was written with `v`.
    Cmp {
        /// The raw condition value (before the compare-type discipline).
        cond: bool,
        /// Write to the first target, if any.
        pt_write: Option<bool>,
        /// Write to the second target, if any.
        pf_write: Option<bool>,
    },
    /// A branch resolved.
    Br {
        /// Whether it was taken.
        taken: bool,
        /// Its (static) target slot.
        target: u32,
    },
    /// A memory access with its effective address.
    Mem {
        /// Effective byte address.
        addr: u64,
    },
}

/// One committed dynamic instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecRecord {
    /// Dynamic sequence number (0-based, counts every executed slot,
    /// including nullified ones).
    pub seq: u64,
    /// Static slot index.
    pub slot: u32,
    /// The instruction (copied; [`Insn`] is `Copy`).
    pub insn: Insn,
    /// Value of the qualifying predicate when the instruction executed.
    pub qp: bool,
    /// Resolved execution facts.
    pub info: ExecInfo,
    /// Slot control flow proceeds to after this instruction.
    pub next_slot: u32,
}

impl ExecRecord {
    /// Whether this record is a *taken* branch.
    pub fn is_taken_branch(&self) -> bool {
        matches!(self.info, ExecInfo::Br { taken: true, .. })
    }
}

/// Emulation errors (all indicate a malformed program).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Control flow ran past the last instruction without `halt`.
    FellOffEnd {
        /// The out-of-range slot reached.
        slot: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::FellOffEnd { slot } => {
                write!(
                    f,
                    "control flow reached slot {slot}, past the end of the program"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Why [`Machine::run`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction executed.
    Halted,
    /// The step budget was exhausted first.
    BudgetExhausted,
}

/// Result of [`Machine::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Dynamic instructions executed.
    pub steps: u64,
    /// Why the run stopped.
    pub reason: StopReason,
}

/// A cheap checkpoint of the full architectural state of a [`Machine`]:
/// registers, predicates, control state and a copy-on-write
/// [`MemSnapshot`] of its memory. The code image is *not* captured —
/// a checkpoint must be restored onto a machine built from the same
/// [`Program`] (sampled simulation restores many timing cells from one
/// fast-forwarded functional run).
#[derive(Clone, Debug)]
pub struct Checkpoint {
    grs: [i64; NUM_GR],
    frs: [f64; NUM_FR],
    prs: [bool; NUM_PR],
    mem: MemSnapshot,
    pc: u32,
    seq: u64,
    halted: bool,
}

impl Checkpoint {
    /// Dynamic instructions the machine had executed when captured.
    pub fn steps(&self) -> u64 {
        self.seq
    }

    /// Whether the machine had already halted when captured.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Pages captured in the memory snapshot.
    pub fn page_count(&self) -> usize {
        self.mem.page_count()
    }
}

/// The functional machine: architectural registers, predicates and memory.
#[derive(Clone, Debug)]
pub struct Machine {
    insns: Vec<Insn>,
    grs: [i64; NUM_GR],
    frs: [f64; NUM_FR],
    prs: [bool; NUM_PR],
    mem: SparseMem,
    pc: u32,
    seq: u64,
    halted: bool,
}

impl Machine {
    /// Builds a machine with the program loaded: code installed, data
    /// segments copied to memory, initial register values applied, `p0`
    /// set, all other predicates false.
    pub fn new(program: &Program) -> Self {
        let mut grs = [0i64; NUM_GR];
        for (i, v) in program.gr_init.iter().enumerate().take(NUM_GR) {
            grs[i] = *v;
        }
        grs[0] = 0;
        let mut frs = [0f64; NUM_FR];
        for (i, v) in program.fr_init.iter().enumerate().take(NUM_FR) {
            frs[i] = *v;
        }
        frs[0] = 0.0;
        let mut prs = [false; NUM_PR];
        prs[0] = true;
        let mut mem = SparseMem::new();
        for seg in &program.data {
            mem.write_bytes(seg.addr, &seg.bytes);
        }
        Machine {
            insns: program.insns.clone(),
            grs,
            frs,
            prs,
            mem,
            pc: 0,
            seq: 0,
            halted: false,
        }
    }

    /// Current program counter (slot index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Dynamic instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.seq
    }

    /// Whether a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The loaded code image, indexed by slot.
    pub fn code(&self) -> &[Insn] {
        &self.insns
    }

    /// Reads an integer register.
    pub fn gr(&self, r: Gr) -> i64 {
        self.grs[r.index()]
    }

    /// Reads a floating-point register.
    pub fn fr(&self, r: Fr) -> f64 {
        self.frs[r.index()]
    }

    /// Reads a predicate register.
    pub fn pr(&self, r: Pr) -> bool {
        self.prs[r.index()]
    }

    /// Writes an integer register (ignored for `r0`); for tests and
    /// harnesses.
    pub fn set_gr(&mut self, r: Gr, value: i64) {
        if !r.is_zero() {
            self.grs[r.index()] = value;
        }
    }

    /// Shared access to memory, for tests and harnesses.
    pub fn mem(&self) -> &SparseMem {
        &self.mem
    }

    /// Mutable access to memory, for tests and harnesses.
    pub fn mem_mut(&mut self) -> &mut SparseMem {
        &mut self.mem
    }

    /// Captures the full architectural state as a cheap [`Checkpoint`]:
    /// registers and control state by value, memory copy-on-write.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            grs: self.grs,
            frs: self.frs,
            prs: self.prs,
            mem: self.mem.snapshot(),
            pc: self.pc,
            seq: self.seq,
            halted: self.halted,
        }
    }

    /// Resets this machine to a [`Checkpoint`] taken from a machine
    /// running the same program. Execution resumes exactly where the
    /// checkpointed machine stood: same pc, step count and memory image.
    pub fn restore(&mut self, ckpt: &Checkpoint) {
        self.grs = ckpt.grs;
        self.frs = ckpt.frs;
        self.prs = ckpt.prs;
        self.mem.restore(&ckpt.mem);
        self.pc = ckpt.pc;
        self.seq = ckpt.seq;
        self.halted = ckpt.halted;
    }

    fn write_gr(&mut self, r: Gr, value: i64) {
        if !r.is_zero() {
            self.grs[r.index()] = value;
        }
    }

    fn write_fr(&mut self, r: Fr, value: f64) {
        if !r.is_zero() {
            self.frs[r.index()] = value;
        }
    }

    fn write_pr(&mut self, r: Pr, value: bool) {
        if !r.is_zero() {
            self.prs[r.index()] = value;
        }
    }

    fn operand(&self, op: crate::insn::Operand) -> i64 {
        match op {
            crate::insn::Operand::Reg(r) => self.gr(r),
            crate::insn::Operand::Imm(v) => v,
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` once the machine has halted.
    ///
    /// # Errors
    ///
    /// [`ExecError::FellOffEnd`] if control flow leaves the program without
    /// executing `halt`.
    pub fn step(&mut self) -> Result<Option<ExecRecord>, ExecError> {
        if self.halted {
            return Ok(None);
        }
        let slot = self.pc;
        let insn = *self
            .insns
            .get(slot as usize)
            .ok_or(ExecError::FellOffEnd { slot })?;
        let qp = self.prs[insn.qp.index()];
        let mut next_slot = slot + 1;
        let mut info = ExecInfo::None;

        match insn.op {
            Op::Alu {
                kind,
                dst,
                src1,
                src2,
            } => {
                if qp {
                    let a = self.gr(src1);
                    let b = self.operand(src2);
                    let v = match kind {
                        AluKind::Add => a.wrapping_add(b),
                        AluKind::Sub => a.wrapping_sub(b),
                        AluKind::And => a & b,
                        AluKind::Or => a | b,
                        AluKind::Xor => a ^ b,
                        AluKind::Shl => a.wrapping_shl((b & 63) as u32),
                        AluKind::Shr => a.wrapping_shr((b & 63) as u32),
                        AluKind::Mul => a.wrapping_mul(b),
                    };
                    self.write_gr(dst, v);
                }
            }
            Op::Movi { dst, imm } => {
                if qp {
                    self.write_gr(dst, imm);
                }
            }
            Op::Cmp {
                ctype,
                rel,
                pt,
                pf,
                src1,
                src2,
            } => {
                let cond = rel.eval(self.gr(src1), self.operand(src2));
                let (ptw, pfw) = ctype.resolve(qp, cond);
                if let Some(v) = ptw {
                    self.write_pr(pt, v);
                }
                if let Some(v) = pfw {
                    self.write_pr(pf, v);
                }
                info = ExecInfo::Cmp {
                    cond,
                    pt_write: ptw,
                    pf_write: pfw,
                };
            }
            Op::Fcmp {
                ctype,
                rel,
                pt,
                pf,
                src1,
                src2,
            } => {
                let cond = rel.eval_f(self.fr(src1), self.fr(src2));
                let (ptw, pfw) = ctype.resolve(qp, cond);
                if let Some(v) = ptw {
                    self.write_pr(pt, v);
                }
                if let Some(v) = pfw {
                    self.write_pr(pf, v);
                }
                info = ExecInfo::Cmp {
                    cond,
                    pt_write: ptw,
                    pf_write: pfw,
                };
            }
            Op::Fpu {
                kind,
                dst,
                src1,
                src2,
            } => {
                if qp {
                    let a = self.fr(src1);
                    let b = self.fr(src2);
                    let v = match kind {
                        FpuKind::Fadd => a + b,
                        FpuKind::Fsub => a - b,
                        FpuKind::Fmul => a * b,
                        FpuKind::Fdiv => a / b,
                    };
                    self.write_fr(dst, v);
                }
            }
            Op::Itof { dst, src } => {
                if qp {
                    let v = self.gr(src) as f64;
                    self.write_fr(dst, v);
                }
            }
            Op::Ftoi { dst, src } => {
                if qp {
                    let f = self.fr(src);
                    let v = if f.is_nan() { 0 } else { f as i64 };
                    self.write_gr(dst, v);
                }
            }
            Op::Load { dst, base, offset } => {
                if qp {
                    let addr = (self.gr(base) as u64).wrapping_add(offset as u64);
                    let v = self.mem.load_u64(addr) as i64;
                    self.write_gr(dst, v);
                    info = ExecInfo::Mem { addr };
                }
            }
            Op::Store { src, base, offset } => {
                if qp {
                    let addr = (self.gr(base) as u64).wrapping_add(offset as u64);
                    self.mem.write_u64(addr, self.gr(src) as u64);
                    info = ExecInfo::Mem { addr };
                }
            }
            Op::Loadf { dst, base, offset } => {
                if qp {
                    let addr = (self.gr(base) as u64).wrapping_add(offset as u64);
                    let v = f64::from_bits(self.mem.load_u64(addr));
                    self.write_fr(dst, v);
                    info = ExecInfo::Mem { addr };
                }
            }
            Op::Storef { src, base, offset } => {
                if qp {
                    let addr = (self.gr(base) as u64).wrapping_add(offset as u64);
                    self.mem.write_u64(addr, self.fr(src).to_bits());
                    info = ExecInfo::Mem { addr };
                }
            }
            Op::Br { target } => {
                if qp {
                    next_slot = target;
                }
                info = ExecInfo::Br { taken: qp, target };
            }
            Op::Nop => {}
            Op::Halt => {
                self.halted = true;
                next_slot = slot;
            }
        }

        let record = ExecRecord {
            seq: self.seq,
            slot,
            insn,
            qp,
            info,
            next_slot,
        };
        self.seq += 1;
        self.pc = next_slot;
        Ok(Some(record))
    }

    /// Runs until `halt` or until `max_steps` instructions have executed.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from [`Machine::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<RunOutcome, ExecError> {
        let start = self.seq;
        while self.seq - start < max_steps {
            if self.step()?.is_none() {
                return Ok(RunOutcome {
                    steps: self.seq - start,
                    reason: StopReason::Halted,
                });
            }
        }
        Ok(RunOutcome {
            steps: self.seq - start,
            reason: StopReason::BudgetExhausted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::insn::{CmpRel, CmpType, Operand};
    use crate::program::DataSegment;

    fn g(i: u8) -> Gr {
        Gr::new(i)
    }
    fn f(i: u8) -> Fr {
        Fr::new(i)
    }
    fn p(i: u8) -> Pr {
        Pr::new(i)
    }

    #[test]
    fn sparse_mem_default_zero_and_round_trip() {
        let mut m = SparseMem::new();
        assert_eq!(m.read_u64(0xdead_beef), 0);
        m.write_u64(0x1000, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x1000), 0x0123_4567_89ab_cdef);
        // Unaligned, page-crossing access.
        m.write_u64(0x1fff, u64::MAX);
        assert_eq!(m.read_u64(0x1fff), u64::MAX);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn hot_page_memo_preserves_straddling_and_promotion_semantics() {
        let mut m = SparseMem::new();
        // Write straddling the 0x1000 boundary: both pages materialize,
        // one of them living in the hot slot.
        m.write_u64(0xffc, 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
        assert_eq!(m.read_u64(0xffc), 0x1122_3344_5566_7788);
        assert_eq!(m.load_u64(0xffc), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u8(0xfff), 0x55);
        assert_eq!(m.read_u8(0x1000), 0x44);

        // Bounce writes between pages: promotion must swap pages through
        // the hot slot without losing data, and the count stays stable.
        m.write_u64(0x0, 1);
        m.write_u64(0x2000, 2);
        m.write_u64(0x8, 3);
        assert_eq!(m.page_count(), 3);
        assert_eq!(m.read_u64(0x0), 1);
        assert_eq!(m.read_u64(0x2000), 2);
        assert_eq!(m.read_u64(0x8), 3);
        assert_eq!(m.read_u64(0xffc), 0x1122_3344_5566_7788);

        // Promoting reads never materialize pages...
        assert_eq!(m.load_u64(0x9000), 0);
        assert_eq!(m.read_u64(0x9ffc), 0, "straddling read of absent pages");
        assert_eq!(m.page_count(), 3);
        // ...but do promote an existing cold page into the hot slot.
        assert_eq!(m.load_u64(0x2000), 2);
        assert_eq!(m.page_count(), 3);
    }

    #[test]
    fn straddling_u64_with_one_half_materialized() {
        let mut m = SparseMem::new();
        m.write_u8(0xfff, 0xaa);
        assert_eq!(m.page_count(), 1);
        // Low byte comes from the materialized page, the rest reads zero.
        assert_eq!(m.read_u64(0xfff), 0xaa);
        // A straddling write starting on the existing page materializes
        // only the second page on demand.
        m.write_u64(0xffd, u64::MAX);
        assert_eq!(m.page_count(), 2);
        assert_eq!(m.read_u64(0xffd), u64::MAX);
    }

    #[test]
    fn alu_ops_compute() {
        let mut a = Asm::new();
        a.movi(g(1), 10);
        a.movi(g(2), 3);
        a.add(g(3), g(1), g(2));
        a.sub(g(4), g(1), g(2));
        a.mul(g(5), g(1), g(2));
        a.alu(AluKind::Xor, g(6), g(1), Operand::reg(g(2)));
        a.alu(AluKind::Shl, g(7), g(1), 2i64);
        a.alu(AluKind::Shr, g(8), g(1), 1i64);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(100).unwrap();
        assert_eq!(m.gr(g(3)), 13);
        assert_eq!(m.gr(g(4)), 7);
        assert_eq!(m.gr(g(5)), 30);
        assert_eq!(m.gr(g(6)), 9);
        assert_eq!(m.gr(g(7)), 40);
        assert_eq!(m.gr(g(8)), 5);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut a = Asm::new();
        a.movi(Gr::ZERO, 42);
        a.addi(g(1), Gr::ZERO, 1);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert_eq!(m.gr(Gr::ZERO), 0);
        assert_eq!(m.gr(g(1)), 1);
    }

    #[test]
    fn guard_nullifies_ops() {
        let mut a = Asm::new();
        // p1 = false (1 < 0 is false with unc type writes pf=true into p2)
        a.movi(g(1), 1);
        a.cmp(CmpType::Unc, CmpRel::Lt, p(1), p(2), g(1), 0i64);
        a.pred(p(1)).movi(g(2), 111); // nullified
        a.pred(p(2)).movi(g(3), 222); // executes
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert!(!m.pr(p(1)));
        assert!(m.pr(p(2)));
        assert_eq!(m.gr(g(2)), 0);
        assert_eq!(m.gr(g(3)), 222);
    }

    #[test]
    fn unc_compare_under_false_guard_clears_both() {
        let mut a = Asm::new();
        // p3 starts false; (p3) cmp.unc writes 0,0 even though cond true.
        a.movi(g(1), 5);
        // make p1=true first so we can seed p4,p5 true via another compare
        a.cmp(CmpType::Unc, CmpRel::Eq, p(4), p(5), g(1), 5i64); // p4=1,p5=0
        a.pred(p(5))
            .cmp(CmpType::Unc, CmpRel::Eq, p(6), p(7), g(1), 5i64);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert!(m.pr(p(4)));
        assert!(!m.pr(p(5)));
        // guard p5 false → unc clears both targets
        assert!(!m.pr(p(6)));
        assert!(!m.pr(p(7)));
    }

    #[test]
    fn and_or_parallel_compares() {
        let mut a = Asm::new();
        a.movi(g(1), 1);
        // seed p1 = true via or-init idiom: normal compare
        a.cmp(CmpType::Unc, CmpRel::Eq, p(1), p(0), g(1), 1i64); // p1 = 1
                                                                 // and-chain: p1 &= (r1 == 2)  → false clears it
        a.cmp(CmpType::And, CmpRel::Eq, p(1), p(0), g(1), 2i64);
        // or-chain into p2 (initially false)
        a.cmp(CmpType::Or, CmpRel::Eq, p(2), p(0), g(1), 1i64); // sets p2
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert!(
            !m.pr(p(1)),
            "and-type compare with false condition clears target"
        );
        assert!(
            m.pr(p(2)),
            "or-type compare with true condition sets target"
        );
    }

    #[test]
    fn p0_writes_are_discarded() {
        let mut a = Asm::new();
        a.movi(g(1), 1);
        a.cmp(CmpType::Unc, CmpRel::Ne, p(0), p(1), g(1), 1i64); // pt=p0 ← 0 discarded
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert!(m.pr(Pr::ZERO), "p0 stays true");
        assert!(m.pr(p(1)), "pf got !cond = true");
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let mut a = Asm::new();
        let skip = a.new_label();
        a.movi(g(1), 0);
        a.cmp(CmpType::Unc, CmpRel::Eq, p(1), p(2), g(1), 0i64); // p1=1
        a.pred(p(1)).br(skip);
        a.movi(g(2), 99); // skipped
        a.bind(skip);
        a.pred(p(2)).br(skip); // not taken (p2=0)
        a.movi(g(3), 7);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        let recs: Vec<ExecRecord> = std::iter::from_fn(|| m.step().unwrap()).collect();
        assert_eq!(m.gr(g(2)), 0);
        assert_eq!(m.gr(g(3)), 7);
        let branches: Vec<_> = recs.iter().filter(|r| r.insn.is_branch()).collect();
        assert_eq!(branches.len(), 2);
        assert!(branches[0].is_taken_branch());
        assert!(!branches[1].is_taken_branch());
    }

    #[test]
    fn loads_and_stores_round_trip_via_data_segment() {
        let mut a = Asm::new();
        a.data(DataSegment::from_words(0x2000, &[11, 22, 33]));
        a.init_gr(g(1), 0x2000);
        a.ld(g(2), g(1), 8); // 22
        a.addi(g(3), g(2), 1);
        a.st(g(3), g(1), 16);
        a.ld(g(4), g(1), 16); // 23
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert_eq!(m.gr(g(2)), 22);
        assert_eq!(m.gr(g(4)), 23);
        assert_eq!(m.mem().read_u64(0x2010), 23);
    }

    #[test]
    fn float_pipeline_and_conversions() {
        let mut a = Asm::new();
        a.data(DataSegment::from_f64s(0x3000, &[2.5, 4.0]));
        a.init_gr(g(1), 0x3000);
        a.ldf(f(1), g(1), 0);
        a.ldf(f(2), g(1), 8);
        a.fmul(f(3), f(1), f(2)); // 10.0
        a.ftoi(g(2), f(3));
        a.itof(f(4), g(2));
        a.fcmp(CmpType::Unc, CmpRel::Gt, p(1), p(2), f(3), f(1));
        a.stf(f(3), g(1), 16);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(20).unwrap();
        assert_eq!(m.fr(f(3)), 10.0);
        assert_eq!(m.gr(g(2)), 10);
        assert_eq!(m.fr(f(4)), 10.0);
        assert!(m.pr(p(1)));
        assert!(!m.pr(p(2)));
        assert_eq!(f64::from_bits(m.mem().read_u64(0x3010)), 10.0);
    }

    #[test]
    fn nullified_load_does_not_touch_memory_record() {
        let mut a = Asm::new();
        a.movi(g(1), 1);
        a.cmp(CmpType::Unc, CmpRel::Lt, p(1), p(2), g(1), 0i64); // p1 = false
        a.pred(p(1)).ld(g(2), g(1), 0);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        let recs: Vec<ExecRecord> = std::iter::from_fn(|| m.step().unwrap()).collect();
        let nulled = recs.iter().find(|r| r.insn.is_load()).unwrap();
        assert!(!nulled.qp);
        assert_eq!(nulled.info, ExecInfo::None);
    }

    #[test]
    fn remaining_fpu_kinds_and_edge_values() {
        let mut a = Asm::new();
        a.init_fr(f(1), 10.0);
        a.init_fr(f(2), 4.0);
        a.fpu(FpuKind::Fsub, f(3), f(1), f(2));
        a.fpu(FpuKind::Fdiv, f(4), f(1), f(2));
        a.fpu(FpuKind::Fdiv, f(5), f(1), f(0)); // divide by zero → inf
        a.ftoi(g(2), f(5)); // inf as i64 saturates
        a.fpu(FpuKind::Fdiv, f(6), f(0), f(0)); // 0/0 → NaN
        a.ftoi(g(3), f(6)); // NaN → 0 by definition
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(20).unwrap();
        assert_eq!(m.fr(f(3)), 6.0);
        assert_eq!(m.fr(f(4)), 2.5);
        assert!(m.fr(f(5)).is_infinite());
        assert_eq!(m.gr(g(2)), i64::MAX, "inf saturates on conversion");
        assert_eq!(m.gr(g(3)), 0, "NaN converts to 0");
    }

    #[test]
    fn shifts_mask_their_amount() {
        let mut a = Asm::new();
        a.movi(g(1), 1);
        a.alu(AluKind::Shl, g(2), g(1), 64i64); // 64 & 63 == 0 → unchanged
        a.alu(AluKind::Shl, g(3), g(1), 65i64); // 65 & 63 == 1 → 2
        a.movi(g(4), -8);
        a.alu(AluKind::Shr, g(5), g(4), 1i64); // arithmetic → -4
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert_eq!(m.gr(g(2)), 1);
        assert_eq!(m.gr(g(3)), 2);
        assert_eq!(m.gr(g(5)), -4);
    }

    #[test]
    fn wrapping_integer_arithmetic() {
        let mut a = Asm::new();
        a.movi(g(1), i64::MAX);
        a.addi(g(2), g(1), 1); // wraps to i64::MIN
        a.movi(g(3), i64::MIN);
        a.alu(AluKind::Sub, g(4), g(3), Operand::imm(1)); // wraps to MAX
        a.mul(g(5), g(1), g(1)); // wraps silently
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert_eq!(m.gr(g(2)), i64::MIN);
        assert_eq!(m.gr(g(4)), i64::MAX);
        assert_eq!(m.gr(g(5)), i64::MAX.wrapping_mul(i64::MAX));
    }

    #[test]
    fn run_budget_and_halt() {
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.br(top); // infinite loop
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        let out = m.run(100).unwrap();
        assert_eq!(out.reason, StopReason::BudgetExhausted);
        assert_eq!(out.steps, 100);
        assert!(!m.is_halted());

        let mut a = Asm::new();
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        let out = m.run(100).unwrap();
        assert_eq!(out.reason, StopReason::Halted);
        assert_eq!(out.steps, 1);
        assert!(
            m.step().unwrap().is_none(),
            "stepping after halt yields None"
        );
    }

    #[test]
    fn fell_off_end_is_reported() {
        let prog = Program::from_insns(vec![Insn::new(Op::Nop)]);
        let mut m = Machine::new(&prog);
        m.step().unwrap();
        assert_eq!(m.step(), Err(ExecError::FellOffEnd { slot: 1 }));
    }

    #[test]
    fn u64_load_store_crossing_a_page_boundary() {
        // Program-level (not raw SparseMem) page-straddling access: the
        // store writes 8 bytes starting 4 bytes before a page boundary;
        // the load reads them back across the same boundary, and byte
        // reads confirm each half landed on its own page.
        let boundary = 1u64 << PAGE_SHIFT;
        let mut a = Asm::new();
        a.init_gr(g(1), (boundary - 4) as i64);
        a.movi(g(2), 0x0102_0304_0506_0708);
        a.st(g(2), g(1), 0);
        a.ld(g(3), g(1), 0);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert_eq!(m.gr(g(3)), 0x0102_0304_0506_0708);
        assert_eq!(m.mem().page_count(), 2, "write touched both pages");
        // Little-endian: low half below the boundary, high half above.
        assert_eq!(m.mem().read_u8(boundary - 1), 0x05);
        assert_eq!(m.mem().read_u8(boundary), 0x04);
    }

    #[test]
    fn run_budget_exhaustion_mid_bundle_resumes_exactly() {
        // Ten single-slot instructions; a budget of 4 stops mid-bundle
        // (slot 4 of a 3-slot bundle machine) and a later `run` picks up
        // at the very next slot with no skipped or repeated work.
        let mut a = Asm::new();
        for i in 0..9 {
            a.addi(g(1), g(1), i + 1);
        }
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        let out = m.run(4).unwrap();
        assert_eq!(out.reason, StopReason::BudgetExhausted);
        assert_eq!(out.steps, 4);
        assert_eq!(m.pc(), 4, "stopped between bundle boundaries");
        assert_eq!(m.gr(g(1)), 1 + 2 + 3 + 4);
        assert!(!m.is_halted());

        let out = m.run(100).unwrap();
        assert_eq!(out.reason, StopReason::Halted);
        assert_eq!(out.steps, 6, "remaining five adds plus the halt");
        assert_eq!(m.gr(g(1)), 45);
        assert_eq!(m.steps(), 10);
    }

    #[test]
    fn predicated_memory_ops_under_false_guard_touch_nothing() {
        // p1 stays false: the guarded store must not write memory, the
        // guarded load must not clobber its destination, and both must
        // record ExecInfo::None (no Mem info) in the trace.
        let mut a = Asm::new();
        a.init_gr(g(1), 0x3000);
        a.movi(g(2), 77);
        a.movi(g(3), -1);
        a.cmp(CmpType::Unc, CmpRel::Eq, p(1), p(2), g(2), Operand::imm(0));
        a.pred(p(1));
        a.st(g(2), g(1), 0);
        a.pred(p(1));
        a.ld(g(3), g(1), 8);
        a.pred(p(1));
        a.stf(f(1), g(1), 16);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        let mut nullified_mem_infos = 0;
        while let Some(rec) = m.step().unwrap() {
            if !rec.qp && matches!(rec.info, ExecInfo::Mem { .. }) {
                nullified_mem_infos += 1;
            }
        }
        assert_eq!(nullified_mem_infos, 0, "false-guard ops record no Mem info");
        assert_eq!(m.mem().read_u64(0x3000), 0, "store was nullified");
        assert_eq!(m.gr(g(3)), -1, "load destination untouched");
        assert_eq!(m.mem().page_count(), 0, "no page was materialized");
    }

    /// A looping program that keeps writing memory, including a store
    /// that straddles a page boundary each iteration — the worst case for
    /// the copy-on-write snapshot machinery.
    fn straddling_loop() -> Program {
        let boundary = 1u64 << PAGE_SHIFT;
        let mut a = Asm::new();
        let top = a.new_label();
        a.init_gr(g(1), (boundary - 4) as i64); // straddling base
        a.init_gr(g(4), 0x5000); // in-page base
        a.movi(g(2), 0);
        a.bind(top);
        a.addi(g(2), g(2), 1);
        a.st(g(2), g(1), 0); // straddles the page boundary
        a.st(g(2), g(4), 0);
        a.ld(g(3), g(1), 0);
        a.cmp(CmpType::Unc, CmpRel::Lt, p(1), p(2), g(2), 40i64);
        a.pred(p(1)).br(top);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn checkpoint_restore_replays_the_identical_committed_stream() {
        let prog = straddling_loop();
        let mut m = Machine::new(&prog);
        // Stop mid-loop, right after a straddling store left a dirty
        // straddling page pair and the hot-page memo populated.
        m.run(23).unwrap();
        let ckpt = m.checkpoint();
        assert_eq!(ckpt.steps(), 23);
        assert!(!ckpt.is_halted());
        assert!(ckpt.page_count() >= 3, "straddling pair + in-page base");

        // Uninterrupted continuation: record the committed stream.
        let uninterrupted: Vec<ExecRecord> = std::iter::from_fn(|| m.step().unwrap()).collect();
        assert!(m.is_halted());
        let final_r3 = m.gr(g(3));

        // Restore onto a *fresh* machine for the same program and replay.
        let mut fresh = Machine::new(&prog);
        fresh.restore(&ckpt);
        assert_eq!(fresh.steps(), 23);
        let replayed: Vec<ExecRecord> = std::iter::from_fn(|| fresh.step().unwrap()).collect();
        assert_eq!(replayed, uninterrupted, "committed streams must match");
        assert_eq!(fresh.gr(g(3)), final_r3);
        assert_eq!(
            fresh.mem().read_u64((1u64 << PAGE_SHIFT) - 4),
            m.mem().read_u64((1u64 << PAGE_SHIFT) - 4)
        );
    }

    #[test]
    fn checkpoint_is_isolated_from_later_writes() {
        let prog = straddling_loop();
        let mut m = Machine::new(&prog);
        m.run(23).unwrap();
        let ckpt = m.checkpoint();
        let boundary = 1u64 << PAGE_SHIFT;
        let at_ckpt = m.mem().read_u64(boundary - 4);

        // Keep running: the machine writes the same (shared) pages; the
        // snapshot must keep the old bytes (copy-on-write isolation).
        m.run(u64::MAX).unwrap();
        assert_ne!(m.mem().read_u64(boundary - 4), at_ckpt);

        m.restore(&ckpt);
        assert_eq!(m.mem().read_u64(boundary - 4), at_ckpt);
        assert_eq!(m.steps(), 23);
        assert!(!m.is_halted());

        // And the restored machine diverges from the snapshot again
        // without corrupting it: restore twice, same state both times.
        m.run(7).unwrap();
        m.restore(&ckpt);
        assert_eq!(m.mem().read_u64(boundary - 4), at_ckpt);
        assert_eq!(m.steps(), 23);
    }

    #[test]
    fn checkpoint_captures_the_hot_page_memo() {
        // The hot slot lives outside the page map; a snapshot must fold
        // it in or lose the most recently written page.
        let mut m = SparseMem::new();
        m.write_u64(0x1000, 111); // cold after next write
        m.write_u64(0x2000, 222); // ends up in the hot slot
        let snap = m.snapshot();
        assert_eq!(snap.page_count(), 2);
        m.write_u64(0x2000, 999);
        m.write_u64(0x1000, 888);
        m.restore(&snap);
        assert_eq!(m.read_u64(0x2000), 222, "hot page was captured");
        assert_eq!(m.read_u64(0x1000), 111);
        // Reads after restore never re-materialize or copy pages.
        assert_eq!(m.load_u64(0x2000), 222);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn seq_numbers_are_dense() {
        let mut a = Asm::new();
        a.nop();
        a.nop();
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(&prog);
        let recs: Vec<ExecRecord> = std::iter::from_fn(|| m.step().unwrap()).collect();
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
