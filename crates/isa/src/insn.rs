//! Instruction definitions.
//!
//! Every instruction is an [`Op`] guarded by a qualifying predicate
//! ([`Insn::qp`]). The operand-extraction helpers on [`Insn`] expose the
//! read/write sets per register class; the rename stage of the pipeline is
//! built on them.

use std::fmt;

use crate::reg::{Fr, Gr, Pr};

/// Integer ALU operation kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluKind {
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Shl,
    /// Arithmetic shift right (shift amount masked to 6 bits).
    Shr,
    /// Multiplication (wrapping). Longer latency in the timing model.
    Mul,
}

/// Floating-point operation kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpuKind {
    /// Addition.
    Fadd,
    /// Subtraction.
    Fsub,
    /// Multiplication.
    Fmul,
    /// Division. Longest latency in the timing model.
    Fdiv,
}

/// Compare *types*, following the IA-64 parallel-compare taxonomy.
///
/// The type controls how the two predicate targets are written as a function
/// of the qualifying predicate `qp` and the computed condition `c`:
///
/// | type   | qp = 1                    | qp = 0            |
/// |--------|---------------------------|-------------------|
/// | `None` | `pt ← c`, `pf ← !c`       | no write          |
/// | `Unc`  | `pt ← c`, `pf ← !c`       | `pt ← 0`, `pf ← 0`|
/// | `And`  | if `!c`: `pt ← 0, pf ← 0` | no write          |
/// | `Or`   | if `c`: `pt ← 1, pf ← 1`  | no write          |
///
/// `Unc` ("unconditional") is the workhorse of if-conversion: it always
/// defines both targets, so consumers have an unambiguous producer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpType {
    /// Normal compare: writes both targets only when qualified.
    None,
    /// Unconditional compare: clears both targets when disqualified.
    Unc,
    /// And-type parallel compare.
    And,
    /// Or-type parallel compare.
    Or,
}

impl CmpType {
    /// Resolves the architectural effect of a compare of this type.
    ///
    /// Returns `(pt_write, pf_write)` where each entry is `Some(value)` when
    /// the corresponding target predicate is written.
    #[inline]
    pub fn resolve(self, qp: bool, cond: bool) -> (Option<bool>, Option<bool>) {
        match (self, qp, cond) {
            (CmpType::None, true, c) => (Some(c), Some(!c)),
            (CmpType::None, false, _) => (None, None),
            (CmpType::Unc, true, c) => (Some(c), Some(!c)),
            (CmpType::Unc, false, _) => (Some(false), Some(false)),
            (CmpType::And, true, false) => (Some(false), Some(false)),
            (CmpType::And, _, _) => (None, None),
            (CmpType::Or, true, true) => (Some(true), Some(true)),
            (CmpType::Or, _, _) => (None, None),
        }
    }

    fn mnemonic_suffix(self) -> &'static str {
        match self {
            CmpType::None => "",
            CmpType::Unc => ".unc",
            CmpType::And => ".and",
            CmpType::Or => ".or",
        }
    }
}

/// Compare relations on integer values (signed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpRel {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpRel {
    /// Evaluates the relation on two signed integers.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpRel::Eq => a == b,
            CmpRel::Ne => a != b,
            CmpRel::Lt => a < b,
            CmpRel::Le => a <= b,
            CmpRel::Gt => a > b,
            CmpRel::Ge => a >= b,
        }
    }

    /// Evaluates the relation on two floats (IEEE ordered comparison).
    #[inline]
    pub fn eval_f(self, a: f64, b: f64) -> bool {
        match self {
            CmpRel::Eq => a == b,
            CmpRel::Ne => a != b,
            CmpRel::Lt => a < b,
            CmpRel::Le => a <= b,
            CmpRel::Gt => a > b,
            CmpRel::Ge => a >= b,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            CmpRel::Eq => "eq",
            CmpRel::Ne => "ne",
            CmpRel::Lt => "lt",
            CmpRel::Le => "le",
            CmpRel::Gt => "gt",
            CmpRel::Ge => "ge",
        }
    }
}

/// The second source of an integer ALU or compare instruction: a register or
/// a (sign-extended) immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Gr),
    /// Immediate operand.
    Imm(i64),
}

impl Operand {
    /// Shorthand immediate constructor.
    #[inline]
    pub fn imm(v: i64) -> Self {
        Operand::Imm(v)
    }

    /// Shorthand register constructor.
    #[inline]
    pub fn reg(r: Gr) -> Self {
        Operand::Reg(r)
    }

    /// The register read by this operand, if any.
    #[inline]
    pub fn as_reg(self) -> Option<Gr> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Gr> for Operand {
    fn from(r: Gr) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// An operation (the part of an instruction below the qualifying predicate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Integer ALU: `dst = src1 <kind> src2`.
    Alu {
        /// Operation kind.
        kind: AluKind,
        /// Destination register.
        dst: Gr,
        /// First source register.
        src1: Gr,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// Load immediate: `dst = imm` (IA-64 `movl`).
    Movi {
        /// Destination register.
        dst: Gr,
        /// Immediate value.
        imm: i64,
    },
    /// Integer compare: `pt, pf = src1 <rel> src2` under compare type
    /// `ctype`.
    Cmp {
        /// Compare type (write discipline of the two targets).
        ctype: CmpType,
        /// Compare relation.
        rel: CmpRel,
        /// First (true) predicate target.
        pt: Pr,
        /// Second (false) predicate target.
        pf: Pr,
        /// First source register.
        src1: Gr,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// Floating-point compare, same discipline as [`Op::Cmp`].
    Fcmp {
        /// Compare type.
        ctype: CmpType,
        /// Compare relation.
        rel: CmpRel,
        /// First (true) predicate target.
        pt: Pr,
        /// Second (false) predicate target.
        pf: Pr,
        /// First source register.
        src1: Fr,
        /// Second source register.
        src2: Fr,
    },
    /// Floating-point arithmetic: `dst = src1 <kind> src2`.
    Fpu {
        /// Operation kind.
        kind: FpuKind,
        /// Destination register.
        dst: Fr,
        /// First source register.
        src1: Fr,
        /// Second source register.
        src2: Fr,
    },
    /// Integer → float conversion (`setf` + `fcvt`): `dst = src as f64`.
    Itof {
        /// Destination float register.
        dst: Fr,
        /// Source integer register.
        src: Gr,
    },
    /// Float → integer conversion (truncating): `dst = src as i64`.
    Ftoi {
        /// Destination integer register.
        dst: Gr,
        /// Source float register.
        src: Fr,
    },
    /// Integer load: `dst = mem[base + offset]` (8 bytes).
    Load {
        /// Destination register.
        dst: Gr,
        /// Base address register.
        base: Gr,
        /// Byte offset.
        offset: i64,
    },
    /// Integer store: `mem[base + offset] = src` (8 bytes).
    Store {
        /// Source register.
        src: Gr,
        /// Base address register.
        base: Gr,
        /// Byte offset.
        offset: i64,
    },
    /// Float load: `dst = mem[base + offset]` (8 bytes, f64 bits).
    Loadf {
        /// Destination float register.
        dst: Fr,
        /// Base address register.
        base: Gr,
        /// Byte offset.
        offset: i64,
    },
    /// Float store: `mem[base + offset] = src` (8 bytes, f64 bits).
    Storef {
        /// Source float register.
        src: Fr,
        /// Base address register.
        base: Gr,
        /// Byte offset.
        offset: i64,
    },
    /// Branch to `target` (an instruction slot index). Taken iff the
    /// qualifying predicate is true — with `qp = p0` this is an
    /// unconditional branch.
    Br {
        /// Target slot index.
        target: u32,
    },
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,
}

/// A full instruction: a qualifying predicate plus an operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Insn {
    /// Qualifying predicate (guard). `p0` means "always execute".
    pub qp: Pr,
    /// The guarded operation.
    pub op: Op,
}

impl Insn {
    /// An unguarded instruction (`qp = p0`).
    #[inline]
    pub fn new(op: Op) -> Self {
        Insn { qp: Pr::ZERO, op }
    }

    /// A guarded instruction.
    #[inline]
    pub fn guarded(qp: Pr, op: Op) -> Self {
        Insn { qp, op }
    }

    /// Whether the instruction carries a real (non-`p0`) guard.
    #[inline]
    pub fn is_predicated(&self) -> bool {
        !self.qp.is_zero()
    }

    /// Whether this is a compare (integer or floating-point).
    #[inline]
    pub fn is_cmp(&self) -> bool {
        matches!(self.op, Op::Cmp { .. } | Op::Fcmp { .. })
    }

    /// Whether this is a branch.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self.op, Op::Br { .. })
    }

    /// Whether this is a conditional branch (guarded by a non-`p0`
    /// predicate). Unconditional branches (`qp = p0`) need no prediction.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        self.is_branch() && self.is_predicated()
    }

    /// Whether this is a memory access.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(
            self.op,
            Op::Load { .. } | Op::Store { .. } | Op::Loadf { .. } | Op::Storef { .. }
        )
    }

    /// Whether this is a load.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self.op, Op::Load { .. } | Op::Loadf { .. })
    }

    /// Whether this is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self.op, Op::Store { .. } | Op::Storef { .. })
    }

    /// Integer registers read by the operation (excluding the guard).
    ///
    /// Reads of the hardwired `r0` are included; renaming maps them to a
    /// constant-zero physical register.
    pub fn gr_srcs(&self) -> [Option<Gr>; 2] {
        match self.op {
            Op::Alu { src1, src2, .. } | Op::Cmp { src1, src2, .. } => [Some(src1), src2.as_reg()],
            Op::Itof { src, .. } => [Some(src), None],
            Op::Load { base, .. } | Op::Loadf { base, .. } => [Some(base), None],
            Op::Store { src, base, .. } => [Some(base), Some(src)],
            Op::Storef { base, .. } => [Some(base), None],
            _ => [None, None],
        }
    }

    /// Integer register written by the operation, if any.
    ///
    /// A write to the hardwired `r0` is reported as `None` (it is
    /// architecturally discarded).
    pub fn gr_dst(&self) -> Option<Gr> {
        let d = match self.op {
            Op::Alu { dst, .. } | Op::Movi { dst, .. } | Op::Ftoi { dst, .. } => Some(dst),
            Op::Load { dst, .. } => Some(dst),
            _ => None,
        };
        d.filter(|r| !r.is_zero())
    }

    /// Floating-point registers read by the operation.
    pub fn fr_srcs(&self) -> [Option<Fr>; 2] {
        match self.op {
            Op::Fpu { src1, src2, .. } | Op::Fcmp { src1, src2, .. } => [Some(src1), Some(src2)],
            Op::Ftoi { src, .. } => [Some(src), None],
            Op::Storef { src, .. } => [Some(src), None],
            _ => [None, None],
        }
    }

    /// Floating-point register written by the operation, if any (writes to
    /// `f0` are discarded).
    pub fn fr_dst(&self) -> Option<Fr> {
        let d = match self.op {
            Op::Fpu { dst, .. } | Op::Itof { dst, .. } | Op::Loadf { dst, .. } => Some(dst),
            _ => None,
        };
        d.filter(|r| !r.is_zero())
    }

    /// Predicate targets written by the operation (compares only).
    ///
    /// Writes to the hardwired `p0` are reported as `None` — the paper's
    /// predictor generates a single prediction for such compares (§3.3).
    pub fn pr_dsts(&self) -> [Option<Pr>; 2] {
        match self.op {
            Op::Cmp { pt, pf, .. } | Op::Fcmp { pt, pf, .. } => [
                Some(pt).filter(|p| !p.is_zero()),
                Some(pf).filter(|p| !p.is_zero()),
            ],
            _ => [None, None],
        }
    }

    /// Compare type, for compares.
    pub fn cmp_type(&self) -> Option<CmpType> {
        match self.op {
            Op::Cmp { ctype, .. } | Op::Fcmp { ctype, .. } => Some(ctype),
            _ => None,
        }
    }

    /// Branch target slot, for branches.
    pub fn branch_target(&self) -> Option<u32> {
        match self.op {
            Op::Br { target } => Some(target),
            _ => None,
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_predicated() {
            write!(f, "({}) ", self.qp)?;
        }
        match self.op {
            Op::Alu {
                kind,
                dst,
                src1,
                src2,
            } => {
                let m = match kind {
                    AluKind::Add => "add",
                    AluKind::Sub => "sub",
                    AluKind::And => "and",
                    AluKind::Or => "or",
                    AluKind::Xor => "xor",
                    AluKind::Shl => "shl",
                    AluKind::Shr => "shr",
                    AluKind::Mul => "mul",
                };
                write!(f, "{m} {dst} = {src1}, {src2}")
            }
            Op::Movi { dst, imm } => write!(f, "movl {dst} = {imm}"),
            Op::Cmp {
                ctype,
                rel,
                pt,
                pf,
                src1,
                src2,
            } => write!(
                f,
                "cmp{}.{} {pt}, {pf} = {src1}, {src2}",
                ctype.mnemonic_suffix(),
                rel.mnemonic()
            ),
            Op::Fcmp {
                ctype,
                rel,
                pt,
                pf,
                src1,
                src2,
            } => write!(
                f,
                "fcmp{}.{} {pt}, {pf} = {src1}, {src2}",
                ctype.mnemonic_suffix(),
                rel.mnemonic()
            ),
            Op::Fpu {
                kind,
                dst,
                src1,
                src2,
            } => {
                let m = match kind {
                    FpuKind::Fadd => "fadd",
                    FpuKind::Fsub => "fsub",
                    FpuKind::Fmul => "fmul",
                    FpuKind::Fdiv => "fdiv",
                };
                write!(f, "{m} {dst} = {src1}, {src2}")
            }
            Op::Itof { dst, src } => write!(f, "setf {dst} = {src}"),
            Op::Ftoi { dst, src } => write!(f, "getf {dst} = {src}"),
            Op::Load { dst, base, offset } => write!(f, "ld8 {dst} = [{base}+{offset}]"),
            Op::Store { src, base, offset } => write!(f, "st8 [{base}+{offset}] = {src}"),
            Op::Loadf { dst, base, offset } => write!(f, "ldf {dst} = [{base}+{offset}]"),
            Op::Storef { src, base, offset } => write!(f, "stf [{base}+{offset}] = {src}"),
            Op::Br { target } => write!(f, "br.cond .L{target}"),
            Op::Nop => write!(f, "nop"),
            Op::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u8) -> Gr {
        Gr::new(i)
    }
    fn p(i: u8) -> Pr {
        Pr::new(i)
    }

    #[test]
    fn cmp_type_truth_table_none() {
        assert_eq!(CmpType::None.resolve(true, true), (Some(true), Some(false)));
        assert_eq!(
            CmpType::None.resolve(true, false),
            (Some(false), Some(true))
        );
        assert_eq!(CmpType::None.resolve(false, true), (None, None));
        assert_eq!(CmpType::None.resolve(false, false), (None, None));
    }

    #[test]
    fn cmp_type_truth_table_unc() {
        assert_eq!(CmpType::Unc.resolve(true, true), (Some(true), Some(false)));
        assert_eq!(CmpType::Unc.resolve(true, false), (Some(false), Some(true)));
        // Disqualified unconditional compares clear both targets.
        assert_eq!(
            CmpType::Unc.resolve(false, true),
            (Some(false), Some(false))
        );
        assert_eq!(
            CmpType::Unc.resolve(false, false),
            (Some(false), Some(false))
        );
    }

    #[test]
    fn cmp_type_truth_table_and_or() {
        assert_eq!(
            CmpType::And.resolve(true, false),
            (Some(false), Some(false))
        );
        assert_eq!(CmpType::And.resolve(true, true), (None, None));
        assert_eq!(CmpType::And.resolve(false, false), (None, None));
        assert_eq!(CmpType::Or.resolve(true, true), (Some(true), Some(true)));
        assert_eq!(CmpType::Or.resolve(true, false), (None, None));
        assert_eq!(CmpType::Or.resolve(false, true), (None, None));
    }

    #[test]
    fn rel_eval_covers_all_relations() {
        assert!(CmpRel::Eq.eval(3, 3));
        assert!(CmpRel::Ne.eval(3, 4));
        assert!(CmpRel::Lt.eval(-1, 0));
        assert!(CmpRel::Le.eval(0, 0));
        assert!(CmpRel::Gt.eval(5, -5));
        assert!(CmpRel::Ge.eval(5, 5));
        assert!(!CmpRel::Lt.eval(1, 0));
        assert!(CmpRel::Lt.eval_f(1.0, 2.0));
        assert!(!CmpRel::Eq.eval_f(f64::NAN, f64::NAN));
    }

    #[test]
    fn gr_srcs_and_dst_extraction() {
        let i = Insn::new(Op::Alu {
            kind: AluKind::Add,
            dst: g(3),
            src1: g(1),
            src2: Operand::reg(g(2)),
        });
        assert_eq!(i.gr_srcs(), [Some(g(1)), Some(g(2))]);
        assert_eq!(i.gr_dst(), Some(g(3)));

        let i = Insn::new(Op::Alu {
            kind: AluKind::Add,
            dst: Gr::ZERO,
            src1: g(1),
            src2: Operand::imm(4),
        });
        assert_eq!(i.gr_srcs(), [Some(g(1)), None]);
        assert_eq!(i.gr_dst(), None, "writes to r0 are discarded");
    }

    #[test]
    fn store_reads_base_and_data() {
        let i = Insn::new(Op::Store {
            src: g(7),
            base: g(8),
            offset: 16,
        });
        assert_eq!(i.gr_srcs(), [Some(g(8)), Some(g(7))]);
        assert_eq!(i.gr_dst(), None);
        assert!(i.is_store() && i.is_mem() && !i.is_load());
    }

    #[test]
    fn pr_dsts_filter_p0() {
        let i = Insn::new(Op::Cmp {
            ctype: CmpType::Unc,
            rel: CmpRel::Lt,
            pt: p(1),
            pf: Pr::ZERO,
            src1: g(1),
            src2: Operand::imm(0),
        });
        assert_eq!(i.pr_dsts(), [Some(p(1)), None]);
        assert!(i.is_cmp());
    }

    #[test]
    fn branch_classification() {
        let uncond = Insn::new(Op::Br { target: 5 });
        let cond = Insn::guarded(p(3), Op::Br { target: 5 });
        assert!(uncond.is_branch() && !uncond.is_cond_branch());
        assert!(cond.is_cond_branch());
        assert_eq!(cond.branch_target(), Some(5));
    }

    #[test]
    fn display_matches_ia64_style() {
        let i = Insn::guarded(
            p(2),
            Op::Cmp {
                ctype: CmpType::Unc,
                rel: CmpRel::Eq,
                pt: p(3),
                pf: Pr::ZERO,
                src1: g(4),
                src2: Operand::imm(0),
            },
        );
        assert_eq!(i.to_string(), "(p2) cmp.unc.eq p3, p0 = r4, 0");
        let b = Insn::guarded(p(3), Op::Br { target: 12 });
        assert_eq!(b.to_string(), "(p3) br.cond .L12");
    }
}
