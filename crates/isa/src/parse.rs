//! Textual assembly parser: the inverse of [`crate::Program::listing`].
//!
//! Accepts the IA-64-flavoured syntax the disassembler prints, one
//! instruction per line, with `.L<name>:` labels:
//!
//! ```text
//!     movl r1 = 0
//! .Ltop:
//!     cmp.unc.lt p1, p2 = r1, 100
//!     (p1) add r2 = r2, r1
//!     (p1) br.cond .Ltop
//!     halt
//! ```
//!
//! Comments start with `//` or `#` and run to end of line.

use std::collections::HashMap;
use std::fmt;

use crate::asm::Asm;
use crate::insn::{AluKind, CmpRel, CmpType, FpuKind, Operand};
use crate::program::{DataSegment, Program};
use crate::reg::{Fr, Gr, Pr};

/// A parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_gr(tok: &str, line: usize) -> Result<Gr, ParseError> {
    tok.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Gr::try_new)
        .ok_or_else(|| err(line, format!("expected integer register, got `{tok}`")))
}

fn parse_fr(tok: &str, line: usize) -> Result<Fr, ParseError> {
    tok.strip_prefix('f')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Fr::try_new)
        .ok_or_else(|| err(line, format!("expected float register, got `{tok}`")))
}

fn parse_pr(tok: &str, line: usize) -> Result<Pr, ParseError> {
    tok.strip_prefix('p')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Pr::try_new)
        .ok_or_else(|| err(line, format!("expected predicate register, got `{tok}`")))
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if tok.starts_with('r') {
        parse_gr(tok, line).map(Operand::Reg)
    } else {
        tok.parse::<i64>()
            .map(Operand::Imm)
            .map_err(|_| err(line, format!("expected register or immediate, got `{tok}`")))
    }
}

fn parse_rel(tok: &str, line: usize) -> Result<CmpRel, ParseError> {
    Ok(match tok {
        "eq" => CmpRel::Eq,
        "ne" => CmpRel::Ne,
        "lt" => CmpRel::Lt,
        "le" => CmpRel::Le,
        "gt" => CmpRel::Gt,
        "ge" => CmpRel::Ge,
        other => return Err(err(line, format!("unknown compare relation `{other}`"))),
    })
}

fn parse_ctype(tok: &str, line: usize) -> Result<CmpType, ParseError> {
    Ok(match tok {
        "" => CmpType::None,
        "unc" => CmpType::Unc,
        "and" => CmpType::And,
        "or" => CmpType::Or,
        other => return Err(err(line, format!("unknown compare type `{other}`"))),
    })
}

/// `<lhs> = <rhs>` directive payload split.
fn split_directive(rest: &str, line: usize) -> Result<(&str, &str), ParseError> {
    rest.split_once('=')
        .map(|(l, r)| (l.trim(), r.trim()))
        .ok_or_else(|| err(line, "directive expects `<target> = <value>`"))
}

/// A decimal or `0x`-prefixed hexadecimal u64.
fn parse_u64(tok: &str, line: usize) -> Result<u64, ParseError> {
    match tok.strip_prefix("0x") {
        Some(h) => u64::from_str_radix(h, 16),
        None => tok.parse(),
    }
    .map_err(|_| err(line, format!("bad address `{tok}`")))
}

/// `[rB+off]` → (base, offset).
fn parse_mem(tok: &str, line: usize) -> Result<(Gr, i64), ParseError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [base+offset], got `{tok}`")))?;
    let (base, off) = match inner.split_once('+') {
        Some((b, o)) => (b, o.parse::<i64>().map_err(|_| err(line, "bad offset"))?),
        None => match inner.split_once('-') {
            Some((b, o)) => (b, -o.parse::<i64>().map_err(|_| err(line, "bad offset"))?),
            None => (inner, 0),
        },
    };
    Ok((parse_gr(base, line)?, off))
}

/// Parses a program in listing syntax.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, or an assembly error
/// (unknown label, invalid program) mapped to line 0.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let mut asm = Asm::new();
    let mut labels: HashMap<String, crate::asm::Label> = HashMap::new();
    let mut label_of = |asm: &mut Asm, name: &str| {
        *labels
            .entry(name.to_string())
            .or_insert_with(|| asm.new_label())
    };

    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let mut text = raw;
        if let Some(p) = text.find("//") {
            text = &text[..p];
        }
        if let Some(p) = text.find('#') {
            text = &text[..p];
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }

        // Directive? (`.greg`, `.freg`, `.data` — the listing's complete
        // serialization of initial state.)
        if let Some(rest) = text.strip_prefix(".greg") {
            let (reg, value) = split_directive(rest, line)?;
            let r = parse_gr(reg, line)?;
            let v = value
                .parse::<i64>()
                .map_err(|_| err(line, format!("bad .greg value `{value}`")))?;
            asm.init_gr(r, v);
            continue;
        }
        if let Some(rest) = text.strip_prefix(".freg") {
            let (reg, value) = split_directive(rest, line)?;
            let r = parse_fr(reg, line)?;
            let bits = value
                .strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(|| err(line, format!("bad .freg bits `{value}` (want 0x…)")))?;
            asm.init_fr(r, f64::from_bits(bits));
            continue;
        }
        if let Some(rest) = text.strip_prefix(".data") {
            let (addr, hex) = split_directive(rest, line)?;
            let addr = parse_u64(addr, line)?;
            if hex.len() % 2 != 0 {
                return Err(err(line, "odd number of hex digits in .data"));
            }
            let bytes: Option<Vec<u8>> = (0..hex.len() / 2)
                .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).ok())
                .collect();
            let bytes =
                bytes.ok_or_else(|| err(line, format!("bad hex bytes in .data `{hex}`")))?;
            asm.data(DataSegment { addr, bytes });
            continue;
        }

        // Label? Leading dots are stripped so a definition written
        // `.L3:` (the disassembler's style) matches a `.L3` reference —
        // branch references strip them too, and keying the label map on
        // the dotted form used to make every listing with a branch fail
        // to reparse with a bogus "label never bound" error.
        if let Some(name) = text.strip_suffix(':') {
            let l = label_of(&mut asm, name.trim_start_matches('.'));
            asm.bind(l);
            continue;
        }

        // Optional guard: `(pN) ...`
        let (guard, rest) = if let Some(r) = text.strip_prefix('(') {
            let (g, rest) = r
                .split_once(')')
                .ok_or_else(|| err(line, "unterminated guard"))?;
            (Some(parse_pr(g.trim(), line)?), rest.trim())
        } else {
            (None, text)
        };
        if let Some(g) = guard {
            asm.pred(g);
        }

        // Tokenize: mnemonic, then operands split on spaces/commas/equals.
        let (mnemonic, ops_text) = match rest.split_once(char::is_whitespace) {
            Some((m, o)) => (m, o.trim()),
            None => (rest, ""),
        };
        let ops: Vec<&str> = ops_text
            .split([',', '=', ' ', '\t'])
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect();
        let need = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        match mnemonic {
            "nop" => {
                asm.nop();
            }
            "halt" => {
                asm.halt();
            }
            "movl" | "movi" => {
                need(2)?;
                let dst = parse_gr(ops[0], line)?;
                let imm = ops[1]
                    .parse::<i64>()
                    .map_err(|_| err(line, "bad immediate"))?;
                asm.movi(dst, imm);
            }
            "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr" | "mul" => {
                need(3)?;
                let kind = match mnemonic {
                    "add" => AluKind::Add,
                    "sub" => AluKind::Sub,
                    "and" => AluKind::And,
                    "or" => AluKind::Or,
                    "xor" => AluKind::Xor,
                    "shl" => AluKind::Shl,
                    "shr" => AluKind::Shr,
                    _ => AluKind::Mul,
                };
                asm.alu(
                    kind,
                    parse_gr(ops[0], line)?,
                    parse_gr(ops[1], line)?,
                    parse_operand(ops[2], line)?,
                );
            }
            "fadd" | "fsub" | "fmul" | "fdiv" => {
                need(3)?;
                let kind = match mnemonic {
                    "fadd" => FpuKind::Fadd,
                    "fsub" => FpuKind::Fsub,
                    "fmul" => FpuKind::Fmul,
                    _ => FpuKind::Fdiv,
                };
                asm.fpu(
                    kind,
                    parse_fr(ops[0], line)?,
                    parse_fr(ops[1], line)?,
                    parse_fr(ops[2], line)?,
                );
            }
            "setf" => {
                need(2)?;
                asm.itof(parse_fr(ops[0], line)?, parse_gr(ops[1], line)?);
            }
            "getf" => {
                need(2)?;
                asm.ftoi(parse_gr(ops[0], line)?, parse_fr(ops[1], line)?);
            }
            "ld8" => {
                need(2)?;
                let (b, o) = parse_mem(ops[1], line)?;
                asm.ld(parse_gr(ops[0], line)?, b, o);
            }
            "st8" => {
                need(2)?;
                let (b, o) = parse_mem(ops[0], line)?;
                asm.st(parse_gr(ops[1], line)?, b, o);
            }
            "ldf" => {
                need(2)?;
                let (b, o) = parse_mem(ops[1], line)?;
                asm.ldf(parse_fr(ops[0], line)?, b, o);
            }
            "stf" => {
                need(2)?;
                let (b, o) = parse_mem(ops[0], line)?;
                asm.stf(parse_fr(ops[1], line)?, b, o);
            }
            m if m == "br" || m.starts_with("br.") => {
                need(1)?;
                let name = ops[0].trim_start_matches('.');
                let l = label_of(&mut asm, name);
                asm.br(l);
            }
            m if m.starts_with("cmp") || m.starts_with("fcmp") => {
                need(4)?;
                let fp = m.starts_with("fcmp");
                let suffix = m.trim_start_matches(if fp { "fcmp" } else { "cmp" });
                let parts: Vec<&str> = suffix.split('.').filter(|s| !s.is_empty()).collect();
                let (ctype, rel) = match parts.as_slice() {
                    [rel] => (CmpType::None, parse_rel(rel, line)?),
                    [ct, rel] => (parse_ctype(ct, line)?, parse_rel(rel, line)?),
                    _ => return Err(err(line, format!("malformed compare mnemonic `{m}`"))),
                };
                let pt = parse_pr(ops[0], line)?;
                let pf = parse_pr(ops[1], line)?;
                if fp {
                    asm.fcmp(
                        ctype,
                        rel,
                        pt,
                        pf,
                        parse_fr(ops[2], line)?,
                        parse_fr(ops[3], line)?,
                    );
                } else {
                    asm.cmp(
                        ctype,
                        rel,
                        pt,
                        pf,
                        parse_gr(ops[2], line)?,
                        parse_operand(ops[3], line)?,
                    );
                }
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
    }

    asm.assemble().map_err(|e| err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Machine, StopReason};

    #[test]
    fn parses_and_runs_a_loop() {
        let src = r"
            movl r1 = 0
            movl r2 = 0
        top:
            add r2 = r2, r1
            add r1 = r1, 1
            cmp.unc.lt p1, p2 = r1, 10
            (p1) br.cond .top
            halt
        ";
        let prog = parse_program(src).unwrap();
        let mut m = Machine::new(&prog);
        let out = m.run(1000).unwrap();
        assert_eq!(out.reason, StopReason::Halted);
        assert_eq!(m.gr(Gr::new(2)), 45);
    }

    #[test]
    fn round_trips_the_disassembler_output() {
        let src = r"
            movl r1 = 5
            cmp.unc.lt p1, p2 = r1, 10
            (p1) add r3 = r1, 2
            (p2) sub r3 = r1, r1
            st8 [r1+16] = r3
            ld8 r4 = [r1+16]
            setf f1 = r4
            fmul f2 = f1, f1
            getf r5 = f2
            halt
        ";
        let prog = parse_program(src).unwrap();
        let listing = prog.listing();
        let reparsed = parse_program(&listing).unwrap();
        assert_eq!(prog.insns, reparsed.insns, "listing → parse is a fixpoint");
        let mut m = Machine::new(&prog);
        m.run(100).unwrap();
        assert_eq!(m.gr(Gr::new(3)), 7);
        assert_eq!(m.gr(Gr::new(5)), 49);
    }

    #[test]
    fn listings_with_branches_reparse() {
        // Regression: the listing emits label definitions as `.L<slot>:`
        // and references as `.L<slot>`; the parser used to key the label
        // map on the dotted definition but the undotted reference, so
        // any listing containing a branch failed to reparse.
        let src = r"
            movl r1 = 3
        top:
            add r2 = r2, r1
            add r1 = r1, -1
            cmp.unc.gt p1, p2 = r1, 0
            (p1) br.cond .top
            halt
        ";
        let prog = parse_program(src).unwrap();
        let listing = prog.listing();
        assert!(listing.contains(".L1:"), "{listing}");
        let reparsed = parse_program(&listing).unwrap();
        assert_eq!(prog.insns, reparsed.insns);
        assert_eq!(listing, reparsed.listing(), "listing is a fixpoint");
    }

    #[test]
    fn directives_round_trip_data_and_register_state() {
        // A program whose behaviour depends on every directive kind:
        // initial integer/float registers and a data segment.
        let mut a = Asm::new();
        a.data(DataSegment::from_words(0x10000, &[7, -9, 1 << 40]));
        a.init_gr(Gr::new(2), 0x10000);
        a.init_gr(Gr::new(3), -5);
        a.init_fr(Fr::new(1), 2.5);
        a.ld(Gr::new(4), Gr::new(2), 8);
        a.add(Gr::new(5), Gr::new(4), Gr::new(3));
        a.halt();
        let prog = a.assemble().unwrap();

        let listing = prog.listing();
        assert!(listing.contains(".greg r2 = 65536"), "{listing}");
        assert!(listing.contains(".greg r3 = -5"), "{listing}");
        assert!(listing.contains(".freg f1 = 0x"), "{listing}");
        assert!(listing.contains(".data 0x10000 = "), "{listing}");

        let reparsed = parse_program(&listing).unwrap();
        assert_eq!(prog.insns, reparsed.insns);
        assert_eq!(prog.data, reparsed.data);
        assert_eq!(prog.gr_init, reparsed.gr_init);
        assert_eq!(prog.fr_init, reparsed.fr_init);

        // And the reparsed program computes the same result.
        let mut m = Machine::new(&reparsed);
        m.run(10).unwrap();
        assert_eq!(m.gr(Gr::new(4)), -9);
        assert_eq!(m.gr(Gr::new(5)), -14);
    }

    #[test]
    fn data_directive_chunks_long_segments() {
        // 80 bytes → three .data lines (32 + 32 + 16) at advancing
        // addresses, all reassembled into equivalent memory contents.
        let words: Vec<i64> = (0..10).map(|i| i * 1_000_003).collect();
        let mut a = Asm::new();
        a.data(DataSegment::from_words(0x2000, &words));
        a.init_gr(Gr::new(1), 0x2000);
        a.ld(Gr::new(2), Gr::new(1), 72);
        a.halt();
        let prog = a.assemble().unwrap();
        let listing = prog.listing();
        assert_eq!(listing.matches(".data ").count(), 3, "{listing}");

        let reparsed = parse_program(&listing).unwrap();
        let mut m = Machine::new(&reparsed);
        m.run(10).unwrap();
        assert_eq!(m.gr(Gr::new(2)), 9 * 1_000_003);
    }

    #[test]
    fn bad_directives_are_reported_with_lines() {
        let e = parse_program(".greg r1 = zzz\nhalt").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains(".greg"), "{e}");
        let e = parse_program("halt\n.data 0x10 = abc").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("odd number"), "{e}");
        let e = parse_program(".freg f1 = 1.5\nhalt").unwrap_err();
        assert!(e.message.contains("0x"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "
            // a comment
            movl r1 = 1  # trailing
            \t
            halt
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn forward_references_resolve() {
        let src = "
            br.cond .end
            movl r1 = 9
        end:
            halt
        ";
        let prog = parse_program(src).unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert_eq!(m.gr(Gr::new(1)), 0, "mov was skipped");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("movl r1 = 1\nbogus r1\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"), "{e}");

        let e = parse_program("movl r200 = 1").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse_program("add r1 = r2").unwrap_err();
        assert!(e.message.contains("expects 3"), "{e}");
    }

    #[test]
    fn unknown_label_is_reported() {
        let e = parse_program("br.cond .nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("never bound"), "{e}");
    }

    #[test]
    fn negative_offsets_and_plain_brackets() {
        let src = "
            movl r1 = 4096
            st8 [r1-8] = r1
            ld8 r2 = [r1-8]
            halt
        ";
        let prog = parse_program(src).unwrap();
        let mut m = Machine::new(&prog);
        m.run(10).unwrap();
        assert_eq!(m.gr(Gr::new(2)), 4096);
    }
}
