//! Architectural register names.
//!
//! All three register files use cheap copyable newtypes so that integer,
//! floating-point and predicate registers cannot be confused at compile
//! time.

use std::fmt;

/// Number of architectural integer registers.
pub const NUM_GR: usize = 128;
/// Number of architectural floating-point registers.
pub const NUM_FR: usize = 128;
/// Number of architectural predicate registers.
pub const NUM_PR: usize = 64;

/// An integer (general) register name, `r0..r127`.
///
/// `r0` reads as zero and writes to it are discarded.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gr(u8);

/// A floating-point register name, `f0..f127`.
///
/// `f0` reads as `0.0` and writes to it are discarded.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fr(u8);

/// A predicate register name, `p0..p63`.
///
/// `p0` reads as `true` and writes to it are discarded — compares that only
/// need one useful output name `p0` as their second target, which the
/// predicate predictor exploits to generate a single prediction
/// (paper §3.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pr(u8);

macro_rules! reg_impl {
    ($ty:ident, $max:expr, $prefix:literal, $doc_zero:literal) => {
        impl $ty {
            /// The hardwired register (index 0).
            #[doc = $doc_zero]
            pub const ZERO: $ty = $ty(0);

            /// Creates a register name.
            ///
            /// # Panics
            ///
            /// Panics if `index` is out of range for this register file.
            #[inline]
            pub fn new(index: u8) -> Self {
                assert!(
                    (index as usize) < $max,
                    concat!($prefix, "{} out of range (max {})"),
                    index,
                    $max - 1
                );
                $ty(index)
            }

            /// Creates a register name, returning `None` if out of range.
            #[inline]
            pub fn try_new(index: u8) -> Option<Self> {
                if (index as usize) < $max {
                    Some($ty(index))
                } else {
                    None
                }
            }

            /// The register's index within its file.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Whether this is the hardwired register (index 0).
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }
    };
}

reg_impl!(Gr, NUM_GR, "r", "`r0` always reads as `0`.");
reg_impl!(Fr, NUM_FR, "f", "`f0` always reads as `0.0`.");
reg_impl!(Pr, NUM_PR, "p", "`p0` always reads as `true`.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_index_round_trip() {
        for i in 0..NUM_GR as u8 {
            assert_eq!(Gr::new(i).index(), i as usize);
        }
        for i in 0..NUM_PR as u8 {
            assert_eq!(Pr::new(i).index(), i as usize);
        }
    }

    #[test]
    fn zero_registers_are_flagged() {
        assert!(Gr::ZERO.is_zero());
        assert!(Fr::ZERO.is_zero());
        assert!(Pr::ZERO.is_zero());
        assert!(!Gr::new(5).is_zero());
    }

    #[test]
    fn try_new_range_checks() {
        assert!(Pr::try_new(63).is_some());
        assert!(Pr::try_new(64).is_none());
        assert!(Gr::try_new(127).is_some());
        assert!(Gr::try_new(128).is_none());
        assert!(Fr::try_new(128).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Pr::new(64);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gr::new(32).to_string(), "r32");
        assert_eq!(Fr::new(7).to_string(), "f7");
        assert_eq!(Pr::new(1).to_string(), "p1");
        assert_eq!(format!("{:?}", Pr::new(1)), "p1");
    }
}
