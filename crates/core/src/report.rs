//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should match the header count).
    pub rows: Vec<Vec<String>>,
    /// Optional title printed above the table.
    pub title: String,
}

impl Table {
    /// Creates a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders as comma-separated values (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "{}", self.title)?;
        }
        let line = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for w in &widths {
                write!(f, "+{}", "-".repeat(w + 2))?;
            }
            writeln!(f, "+")
        };
        line(f)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "| {:<width$} ", h, width = widths[i])?;
        }
        writeln!(f, "|")?;
        line(f)?;
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                write!(f, "| {:<width$} ", c, width = widths[i])?;
            }
            writeln!(f, "|")?;
        }
        line(f)
    }
}

/// Formats a rate as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Formats a count with thousands separators (`1234567` → `1,234,567`).
pub fn count(x: u64) -> String {
    let digits = x.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_everything() {
        let mut t = Table::new("Demo", &["name", "rate"]);
        t.row(vec!["gzip".into(), pct(0.0423)]);
        t.row(vec!["swim".into(), pct(0.001)]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("gzip"));
        assert!(s.contains("4.23"));
        assert!(s.contains("0.10"));
        assert!(s
            .lines()
            .all(|l| l.is_empty() || l.starts_with('+') || l.starts_with('|') || l == "Demo"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.5), "50.00");
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1_000), "1,000");
        assert_eq!(count(1_234_567), "1,234,567");
    }
}
