//! `ppsim bench` — wall-clock benchmark of the simulation engine itself.
//!
//! Unlike the experiments (which measure the *modelled* machine), this
//! module measures the *simulator*: committed instructions per host
//! second for every cell of a fig-6a-style grid, run twice — once
//! through the inline functional machine and once through the
//! capture-once/replay-many trace engine — plus the one-off capture
//! cost. The result quantifies the trace engine's speedup and proves
//! bit-identity of the statistics on the same grid that motivated it.
//!
//! Everything here is dependency-free and cache-free on purpose: no
//! runner, no disk cache, no memoization — each timing is one honest
//! `Instant` around one `Simulator::run`. Timings are host-dependent
//! and excluded from the deterministic report surface; only the
//! `identical` flags and committed counts are stable across machines.

use std::sync::Arc;
use std::time::Instant;

use ppsim_compiler::{compile, spec2000_suite, CompileOptions};
use ppsim_isa::Machine;
use ppsim_pipeline::{
    phases, LaneSet, PhaseReport, PredicationModel, SampleSpec, SchemeSpec, SimOptions, SimStats,
    TraceBuffer, TraceCursor,
};

use crate::Json;

/// The benchmarked grid: the paper's Figure-6a schemes on if-converted
/// binaries, plus the selective-predication headline cell and a TAGE
/// lane (the frontier scheme with the heaviest per-prediction work) —
/// the cells a default suite sweep spends its time in.
pub const CELLS: [(SchemeSpec, PredicationModel); 5] = [
    (SchemeSpec::PepPa, PredicationModel::Cmov),
    (SchemeSpec::Conventional, PredicationModel::Cmov),
    (SchemeSpec::Predicate, PredicationModel::Cmov),
    (SchemeSpec::Predicate, PredicationModel::Selective),
    (SchemeSpec::Tage, PredicationModel::Cmov),
];

/// Configuration for one [`run`].
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Committed instructions per cell.
    pub commits: u64,
    /// Restrict to benchmarks whose name appears here (empty = all).
    pub only: Vec<String>,
    /// Timed repetitions per measurement; the report carries the median
    /// (lower median on even counts) and the minimum, so one noisy host
    /// scheduling event cannot masquerade as a regression.
    pub repeat: u32,
    /// Also run one phase-profiled fused pass per benchmark and attach
    /// the `process()` time attribution (see [`ppsim_pipeline::phases`]).
    pub phases: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            commits: 500_000,
            only: Vec::new(),
            repeat: 1,
            phases: false,
        }
    }
}

/// Lower median of a timing sample: `sorted[(n-1)/2]`, deterministic on
/// integer inputs.
fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[(samples.len() - 1) / 2]
}

/// The commit hash stamped into benchmark artifacts so a checked-in
/// `BENCH_sim.json` records which code produced it; `"unknown"` outside a
/// git checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// One (scheme, predication) cell timed both ways.
#[derive(Clone, Debug)]
pub struct CellBench {
    /// Branch-prediction organization.
    pub scheme: SchemeSpec,
    /// Predication model.
    pub predication: PredicationModel,
    /// Instructions committed (equal on both paths when `identical`).
    pub committed: u64,
    /// Median wall time of the inline-machine runs.
    pub inline_micros: u64,
    /// Median wall time of the trace-replay runs (capture excluded; it
    /// is amortized once per benchmark, see [`BenchRow::capture_micros`]).
    pub replay_micros: u64,
    /// Fastest inline-machine repetition.
    pub inline_min_micros: u64,
    /// Fastest trace-replay repetition.
    pub replay_min_micros: u64,
    /// Whether every repetition of both paths produced equal statistics.
    pub identical: bool,
}

impl CellBench {
    fn label(&self) -> String {
        let model = match self.predication {
            PredicationModel::Cmov => "cmov",
            PredicationModel::Selective => "selective",
        };
        format!("{}/{model}", self.scheme.name())
    }
}

/// One benchmark: its capture cost and the timed cells.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Benchmark name.
    pub benchmark: String,
    /// One-off trace-capture wall time, shared by every cell.
    pub capture_micros: u64,
    /// Records in the capture.
    pub records: u64,
    /// Heap footprint of the capture in bytes.
    pub trace_bytes: usize,
    /// Median wall time of one fused [`LaneSet`] pass running every cell
    /// over a single decode of the capture (capture excluded, as for
    /// replay).
    pub fused_micros: u64,
    /// Fastest fused repetition.
    pub fused_min_micros: u64,
    /// Whether every fused lane's statistics matched its solo replay, on
    /// every repetition.
    pub fused_identical: bool,
    /// Per-cell timings.
    pub cells: Vec<CellBench>,
    /// Phase-profiled fused pass, when [`BenchConfig::phases`] is set.
    pub phases: Option<PhasesBench>,
}

/// One phase-profiled fused pass: where `process()` time went, plus the
/// proof that profiling did not perturb the simulated statistics.
#[derive(Clone, Debug)]
pub struct PhasesBench {
    /// Accumulated per-section attribution, merged across all lanes.
    pub report: PhaseReport,
    /// Wall time of the whole profiled pass (decode + `process()`).
    pub wall_nanos: u64,
    /// Whether every profiled lane's statistics matched its unprofiled
    /// solo replay bit for bit.
    pub identical: bool,
}

impl PhasesBench {
    fn merge(&mut self, other: &PhasesBench) {
        self.report.merge(&other.report);
        self.wall_nanos += other.wall_nanos;
        self.identical &= other.identical;
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj().field("records", self.report.records);
        for (name, nanos) in phases::NAMES.iter().zip(self.report.nanos) {
            j = j.field(format!("{name}_nanos").as_str(), nanos);
        }
        j.field("process_nanos", self.report.total_nanos())
            .field("wall_nanos", self.wall_nanos)
            .field("reports_identical", self.identical)
    }
}

/// The full benchmark outcome.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Committed-instruction budget per cell.
    pub commits: u64,
    /// Timed repetitions behind every median/min pair.
    pub repeat: u32,
    /// Per-benchmark rows.
    pub rows: Vec<BenchRow>,
}

/// Instructions per host second, safe on sub-microsecond timings.
fn insns_per_sec(committed: u64, micros: u64) -> f64 {
    committed as f64 / (micros.max(1) as f64 / 1_000_000.0)
}

impl BenchReport {
    /// Total inline-machine simulation time.
    pub fn inline_micros(&self) -> u64 {
        self.rows
            .iter()
            .flat_map(|r| &r.cells)
            .map(|c| c.inline_micros)
            .sum()
    }

    /// Total replay simulation time, *including* each benchmark's one-off
    /// capture — the honest cost of the replay path.
    pub fn replay_micros(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.capture_micros + r.cells.iter().map(|c| c.replay_micros).sum::<u64>())
            .sum()
    }

    /// Aggregate throughput ratio of replay (capture amortized across the
    /// grid) over the inline path. Committed counts are equal on both
    /// paths, so this is simply inline time over replay time.
    pub fn speedup(&self) -> f64 {
        self.inline_micros() as f64 / self.replay_micros().max(1) as f64
    }

    /// Whether every cell produced bit-identical statistics on both paths.
    pub fn reports_identical(&self) -> bool {
        self.rows.iter().flat_map(|r| &r.cells).all(|c| c.identical)
    }

    /// Total fused simulation time, *including* each benchmark's one-off
    /// capture — directly comparable to [`BenchReport::replay_micros`],
    /// which pays the same captures but decodes once per cell.
    pub fn fused_micros(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.capture_micros + r.fused_micros)
            .sum()
    }

    /// Wall-clock speedup of the fused grid pass over per-cell replay.
    pub fn fused_speedup(&self) -> f64 {
        self.replay_micros() as f64 / self.fused_micros().max(1) as f64
    }

    /// Whether every fused lane matched its solo replay bit for bit.
    pub fn fused_identical(&self) -> bool {
        self.rows.iter().all(|r| r.fused_identical)
    }

    /// Merged phase attribution across every benchmark's profiled pass,
    /// `None` when the bench ran without [`BenchConfig::phases`].
    pub fn phases(&self) -> Option<PhasesBench> {
        let mut merged: Option<PhasesBench> = None;
        for p in self.rows.iter().filter_map(|r| r.phases.as_ref()) {
            match merged.as_mut() {
                Some(m) => m.merge(p),
                None => merged = Some(p.clone()),
            }
        }
        merged
    }

    /// The machine-readable artifact (`BENCH_sim.json`).
    pub fn to_json(&self) -> Json {
        let mut rows = Vec::new();
        for r in &self.rows {
            let mut cells = Vec::new();
            for c in &r.cells {
                cells.push(
                    Json::obj()
                        .field("cell", c.label())
                        .field("committed", c.committed)
                        .field("inline_micros", c.inline_micros)
                        .field("replay_micros", c.replay_micros)
                        .field("inline_min_micros", c.inline_min_micros)
                        .field("replay_min_micros", c.replay_min_micros)
                        .field(
                            "inline_insns_per_sec",
                            insns_per_sec(c.committed, c.inline_micros),
                        )
                        .field(
                            "replay_insns_per_sec",
                            insns_per_sec(c.committed, c.replay_micros),
                        )
                        .field("identical", c.identical),
                );
            }
            let mut row = Json::obj()
                .field("name", r.benchmark.as_str())
                .field("capture_micros", r.capture_micros)
                .field("records", r.records)
                .field("trace_bytes", r.trace_bytes)
                .field("fused_micros", r.fused_micros)
                .field("fused_min_micros", r.fused_min_micros)
                .field("fused_identical", r.fused_identical)
                .field("cells", cells);
            if let Some(p) = &r.phases {
                row = row.field("phases", p.to_json());
            }
            rows.push(row);
        }
        let mut j = Json::obj()
            .field("experiment", "bench")
            .field("commits", self.commits)
            .field("repeat", u64::from(self.repeat))
            .field("commit", git_commit().as_str())
            // `bench` deliberately times cells one at a time on one
            // thread, so host timings are not fighting sibling workers.
            .field("jobs", 1u64)
            .field("benchmarks", rows)
            .field(
                "aggregate",
                Json::obj()
                    .field("inline_micros", self.inline_micros())
                    .field("replay_micros", self.replay_micros())
                    .field("speedup", self.speedup())
                    .field("reports_identical", self.reports_identical()),
            )
            .field(
                "fused",
                Json::obj()
                    .field("fused_micros", self.fused_micros())
                    .field("per_cell_micros", self.replay_micros())
                    .field("speedup", self.fused_speedup())
                    .field("reports_identical", self.fused_identical()),
            );
        if let Some(p) = self.phases() {
            j = j.field("phases", p.to_json());
        }
        j
    }

    /// Human-readable summary for stderr.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} benchmarks x {} cells: inline {:.2}s, replay {:.2}s (capture incl.), speedup {:.2}x, \
             fused {:.2}s (speedup {:.2}x), reports {}",
            self.rows.len(),
            CELLS.len(),
            self.inline_micros() as f64 / 1e6,
            self.replay_micros() as f64 / 1e6,
            self.speedup(),
            self.fused_micros() as f64 / 1e6,
            self.fused_speedup(),
            if self.reports_identical() && self.fused_identical() {
                "identical"
            } else {
                "DIVERGED"
            }
        );
        if self.repeat > 1 {
            s.push_str(&format!(" (median of {})", self.repeat));
        }
        if let Some(p) = self.phases() {
            let total = p.report.total_nanos().max(1);
            let pct: Vec<String> = phases::NAMES
                .iter()
                .zip(p.report.nanos)
                .map(|(name, nanos)| format!("{name} {:.0}%", nanos as f64 * 100.0 / total as f64))
                .collect();
            s.push_str(&format!("; phases: {}", pct.join(", ")));
        }
        s
    }
}

fn run_inline(opts: SimOptions, program: &ppsim_isa::Program, commits: u64) -> (SimStats, u64) {
    let mut sim = opts
        .build_source(Machine::new(program))
        .expect("bench cells carry no overrides");
    let started = Instant::now();
    let run = sim.run(commits);
    (run.stats, started.elapsed().as_micros() as u64)
}

fn run_replay(opts: SimOptions, trace: Arc<TraceBuffer>, commits: u64) -> (SimStats, u64) {
    let mut sim = opts
        .build_source(TraceCursor::new(trace))
        .expect("bench cells carry no overrides");
    let started = Instant::now();
    let run = sim.run(commits);
    (run.stats, started.elapsed().as_micros() as u64)
}

/// Times every selected benchmark across [`CELLS`], both ways.
pub fn run(cfg: &BenchConfig) -> BenchReport {
    let mut rows = Vec::new();
    for spec in spec2000_suite() {
        if !cfg.only.is_empty() && !cfg.only.iter().any(|n| n == spec.name) {
            continue;
        }
        let compiled =
            compile(&spec, &CompileOptions::with_ifconv()).expect("suite benchmarks compile");
        let started = Instant::now();
        let trace = Arc::new(
            TraceBuffer::capture(&compiled.program, cfg.commits)
                .unwrap_or_else(|e| panic!("functional machine died: {e}")),
        );
        let capture_micros = started.elapsed().as_micros() as u64;

        let repeat = cfg.repeat.max(1);
        let mut cells = Vec::new();
        let mut replay_stats_all = Vec::new();
        for (scheme, predication) in CELLS {
            let opts = SimOptions::new(scheme, predication);
            let mut inline_times = Vec::with_capacity(repeat as usize);
            let mut replay_times = Vec::with_capacity(repeat as usize);
            let mut identical = true;
            let mut committed = 0;
            let mut last_replay_stats = None;
            for _ in 0..repeat {
                let (inline_stats, inline_micros) =
                    run_inline(opts, &compiled.program, cfg.commits);
                let (replay_stats, replay_micros) =
                    run_replay(opts, Arc::clone(&trace), cfg.commits);
                identical &= inline_stats == replay_stats;
                // Repetitions must also agree with each other — the
                // simulator is deterministic, so any drift is a bug.
                if let Some(prev) = &last_replay_stats {
                    identical &= *prev == replay_stats;
                }
                committed = inline_stats.committed;
                last_replay_stats = Some(replay_stats);
                inline_times.push(inline_micros);
                replay_times.push(replay_micros);
            }
            cells.push(CellBench {
                scheme,
                predication,
                committed,
                inline_micros: median(&mut inline_times),
                replay_micros: median(&mut replay_times),
                inline_min_micros: inline_times[0],
                replay_min_micros: replay_times[0],
                identical,
            });
            replay_stats_all.push(last_replay_stats.expect("repeat >= 1"));
        }

        // One fused pass running every cell as a lane over a single
        // decode of the same capture.
        let lane_opts: Vec<SimOptions> = CELLS
            .iter()
            .map(|&(scheme, predication)| SimOptions::new(scheme, predication))
            .collect();
        let mut fused_times = Vec::with_capacity(repeat as usize);
        let mut fused_identical = true;
        for _ in 0..repeat {
            let started = Instant::now();
            let fused_runs = LaneSet::new(TraceCursor::new(Arc::clone(&trace)), &lane_opts)
                .expect("bench cells carry no overrides")
                .run(cfg.commits);
            fused_times.push(started.elapsed().as_micros() as u64);
            fused_identical &= fused_runs
                .iter()
                .zip(&replay_stats_all)
                .all(|(lane, solo)| lane.stats == *solo);
        }

        // Optional phase-profiled fused pass: same cells, profiling on.
        // Identity against the unprofiled solo runs proves the profiler
        // is observation-only.
        let phases_bench = cfg.phases.then(|| {
            let profiled_opts: Vec<SimOptions> = CELLS
                .iter()
                .map(|&(scheme, predication)| {
                    SimOptions::new(scheme, predication).profile_phases(true)
                })
                .collect();
            let started = Instant::now();
            let mut set = LaneSet::new(TraceCursor::new(Arc::clone(&trace)), &profiled_opts)
                .expect("bench cells carry no overrides");
            let runs = set.run(cfg.commits);
            let wall_nanos = started.elapsed().as_nanos() as u64;
            let identical = runs
                .iter()
                .zip(&replay_stats_all)
                .all(|(lane, solo)| lane.stats == *solo);
            let mut report = PhaseReport {
                nanos: [0; phases::COUNT],
                records: 0,
            };
            for lane in set.phase_reports().into_iter().flatten() {
                report.merge(&lane);
            }
            PhasesBench {
                report,
                wall_nanos,
                identical,
            }
        });

        rows.push(BenchRow {
            benchmark: spec.name.to_string(),
            capture_micros,
            records: trace.len(),
            trace_bytes: trace.bytes(),
            fused_micros: median(&mut fused_times),
            fused_min_micros: fused_times[0],
            fused_identical,
            cells,
            phases: phases_bench,
        });
    }
    BenchReport {
        commits: cfg.commits,
        repeat: cfg.repeat.max(1),
        rows,
    }
}

/// One cell of an imported-trace benchmark: replay-only, since no
/// functional machine exists behind an external stream.
#[derive(Clone, Debug)]
pub struct TraceCellBench {
    /// Branch-prediction organization.
    pub scheme: SchemeSpec,
    /// Predication model.
    pub predication: PredicationModel,
    /// Instructions committed.
    pub committed: u64,
    /// Wall time of the solo replay run.
    pub replay_micros: u64,
}

impl TraceCellBench {
    fn label(&self) -> String {
        let model = match self.predication {
            PredicationModel::Cmov => "cmov",
            PredicationModel::Selective => "selective",
        };
        format!("{}/{model}", self.scheme.name())
    }
}

/// The outcome of `ppsim bench` over an imported trace: per-cell solo
/// replay timings plus one fused [`LaneSet`] pass, with bit-identity of
/// the fused lanes against their solo runs. The inline-machine column of
/// the synthetic bench has no analogue here — identity of fused vs solo
/// replay is the checkable invariant an external stream offers.
#[derive(Clone, Debug)]
pub struct TraceBenchReport {
    /// Workload display name.
    pub name: String,
    /// Committed-instruction budget per cell.
    pub commits: u64,
    /// Records in the stream.
    pub records: u64,
    /// Heap footprint of the stream in bytes.
    pub trace_bytes: usize,
    /// Per-cell solo replay timings.
    pub cells: Vec<TraceCellBench>,
    /// Wall time of the fused pass running every cell over one decode.
    pub fused_micros: u64,
    /// Whether every fused lane's statistics matched its solo replay.
    pub fused_identical: bool,
}

impl TraceBenchReport {
    /// Total solo replay time.
    pub fn replay_micros(&self) -> u64 {
        self.cells.iter().map(|c| c.replay_micros).sum()
    }

    /// Wall-clock speedup of the fused pass over per-cell replay.
    pub fn fused_speedup(&self) -> f64 {
        self.replay_micros() as f64 / self.fused_micros.max(1) as f64
    }

    /// The machine-readable artifact (`BENCH_trace.json`).
    pub fn to_json(&self) -> Json {
        let mut cells = Vec::new();
        for c in &self.cells {
            cells.push(
                Json::obj()
                    .field("cell", c.label())
                    .field("committed", c.committed)
                    .field("replay_micros", c.replay_micros)
                    .field(
                        "replay_insns_per_sec",
                        insns_per_sec(c.committed, c.replay_micros),
                    ),
            );
        }
        Json::obj()
            .field("experiment", "bench-trace")
            .field("workload", self.name.as_str())
            .field("commits", self.commits)
            .field("records", self.records)
            .field("trace_bytes", self.trace_bytes)
            .field("cells", cells)
            .field(
                "fused",
                Json::obj()
                    .field("fused_micros", self.fused_micros)
                    .field("per_cell_micros", self.replay_micros())
                    .field("speedup", self.fused_speedup())
                    .field("reports_identical", self.fused_identical),
            )
    }

    /// Human-readable summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "trace '{}' x {} cells: replay {:.2}s, fused {:.2}s (speedup {:.2}x), lanes {}",
            self.name,
            self.cells.len(),
            self.replay_micros() as f64 / 1e6,
            self.fused_micros as f64 / 1e6,
            self.fused_speedup(),
            if self.fused_identical {
                "identical"
            } else {
                "DIVERGED"
            }
        )
    }
}

/// Times an imported stream across [`CELLS`] solo and as one fused
/// lane-parallel pass, proving bit-identity between the two paths.
pub fn run_trace(name: &str, trace: Arc<TraceBuffer>, commits: u64) -> TraceBenchReport {
    let mut cells = Vec::new();
    let mut solo_stats = Vec::new();
    for (scheme, predication) in CELLS {
        let opts = SimOptions::new(scheme, predication);
        let (stats, replay_micros) = run_replay(opts, Arc::clone(&trace), commits);
        cells.push(TraceCellBench {
            scheme,
            predication,
            committed: stats.committed,
            replay_micros,
        });
        solo_stats.push(stats);
    }
    let lane_opts: Vec<SimOptions> = CELLS
        .iter()
        .map(|&(scheme, predication)| SimOptions::new(scheme, predication))
        .collect();
    let started = Instant::now();
    let fused_runs = LaneSet::new(TraceCursor::new(Arc::clone(&trace)), &lane_opts)
        .expect("bench cells carry no overrides")
        .run(commits);
    let fused_micros = started.elapsed().as_micros() as u64;
    let fused_identical = fused_runs
        .iter()
        .zip(&solo_stats)
        .all(|(lane, solo)| lane.stats == *solo);
    TraceBenchReport {
        name: name.to_string(),
        commits,
        records: trace.len(),
        trace_bytes: trace.bytes(),
        cells,
        fused_micros,
        fused_identical,
    }
}

/// One cell timed as a full run and as a sampled run (`ppsim bench
/// --sample`): how much accuracy the sampling schedule gives up and how
/// much wall time it saves.
#[derive(Clone, Debug)]
pub struct SampleCellBench {
    /// Branch-prediction organization.
    pub scheme: SchemeSpec,
    /// Predication model.
    pub predication: PredicationModel,
    /// Full-run misprediction rate (the ground truth).
    pub full_rate: f64,
    /// Window-aggregate misprediction rate (`Σ misp / Σ branches`).
    pub sampled_rate: f64,
    /// Instructions the full run committed.
    pub full_committed: u64,
    /// Instructions the sampled run measured (`count * measure`).
    pub sampled_committed: u64,
    /// Wall time of the full timing run.
    pub full_micros: u64,
    /// Wall time of the sampled timing runs (all windows; checkpoint
    /// fast-forward excluded — it is amortized once per benchmark, see
    /// [`SampleBenchRow::ff_micros`]).
    pub sampled_micros: u64,
}

impl SampleCellBench {
    fn label(&self) -> String {
        let model = match self.predication {
            PredicationModel::Cmov => "cmov",
            PredicationModel::Selective => "selective",
        };
        format!("{}/{model}", self.scheme.name())
    }

    /// Absolute misprediction-rate error in percentage points.
    pub fn error_pp(&self) -> f64 {
        (self.sampled_rate - self.full_rate).abs() * 100.0
    }
}

/// One benchmark of the sampled-vs-full comparison.
#[derive(Clone, Debug)]
pub struct SampleBenchRow {
    /// Benchmark name.
    pub benchmark: String,
    /// One-off cost of walking the functional machine to every window
    /// start and snapshotting it, shared by every cell.
    pub ff_micros: u64,
    /// Per-cell timings and rates.
    pub cells: Vec<SampleCellBench>,
}

/// The sampled-vs-full benchmark outcome.
#[derive(Clone, Debug)]
pub struct SampleBenchReport {
    /// Committed-instruction budget of the full runs.
    pub commits: u64,
    /// The sampling schedule under test.
    pub spec: SampleSpec,
    /// Per-benchmark rows.
    pub rows: Vec<SampleBenchRow>,
}

impl SampleBenchReport {
    /// Total full-run simulation time.
    pub fn full_micros(&self) -> u64 {
        self.rows
            .iter()
            .flat_map(|r| &r.cells)
            .map(|c| c.full_micros)
            .sum()
    }

    /// Total sampled simulation time, *including* each benchmark's
    /// one-off checkpoint fast-forward — the honest cost of sampling.
    pub fn sampled_micros(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.ff_micros + r.cells.iter().map(|c| c.sampled_micros).sum::<u64>())
            .sum()
    }

    /// Wall-clock speedup of the sampled sweep over the full sweep.
    pub fn speedup(&self) -> f64 {
        self.full_micros() as f64 / self.sampled_micros().max(1) as f64
    }

    /// Largest per-cell misprediction-rate error (percentage points).
    pub fn max_error_pp(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| &r.cells)
            .map(SampleCellBench::error_pp)
            .fold(0.0, f64::max)
    }

    /// Mean per-cell misprediction-rate error (percentage points).
    pub fn mean_error_pp(&self) -> f64 {
        let cells: Vec<f64> = self
            .rows
            .iter()
            .flat_map(|r| &r.cells)
            .map(SampleCellBench::error_pp)
            .collect();
        if cells.is_empty() {
            return 0.0;
        }
        cells.iter().sum::<f64>() / cells.len() as f64
    }

    /// The machine-readable artifact (`BENCH_sample.json`).
    pub fn to_json(&self) -> Json {
        let mut rows = Vec::new();
        for r in &self.rows {
            let mut cells = Vec::new();
            for c in &r.cells {
                cells.push(
                    Json::obj()
                        .field("cell", c.label())
                        .field("full_rate", c.full_rate)
                        .field("sampled_rate", c.sampled_rate)
                        .field("error_pp", c.error_pp())
                        .field("full_committed", c.full_committed)
                        .field("sampled_committed", c.sampled_committed)
                        .field("full_micros", c.full_micros)
                        .field("sampled_micros", c.sampled_micros),
                );
            }
            rows.push(
                Json::obj()
                    .field("name", r.benchmark.as_str())
                    .field("ff_micros", r.ff_micros)
                    .field("cells", cells),
            );
        }
        Json::obj()
            .field("experiment", "bench-sample")
            .field("commits", self.commits)
            .field("sample", self.spec.canon().as_str())
            .field("benchmarks", rows)
            .field(
                "aggregate",
                Json::obj()
                    .field("full_micros", self.full_micros())
                    .field("sampled_micros", self.sampled_micros())
                    .field("speedup", self.speedup())
                    .field("max_error_pp", self.max_error_pp())
                    .field("mean_error_pp", self.mean_error_pp()),
            )
    }

    /// Human-readable summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "{} benchmarks x {} cells, sample {}: full {:.2}s, sampled {:.2}s (ff incl.), \
             speedup {:.2}x, misprediction error mean {:.3}pp / max {:.3}pp",
            self.rows.len(),
            CELLS.len(),
            self.spec.canon(),
            self.full_micros() as f64 / 1e6,
            self.sampled_micros() as f64 / 1e6,
            self.speedup(),
            self.mean_error_pp(),
            self.max_error_pp()
        )
    }
}

/// Times every selected benchmark across [`CELLS`] as a full run and as
/// a checkpoint-based sampled run, comparing rates and wall time.
pub fn run_sampled(cfg: &BenchConfig, spec: SampleSpec) -> SampleBenchReport {
    spec.validate()
        .expect("bench sample spec is validated upstream");
    let mut rows = Vec::new();
    for bench in spec2000_suite() {
        if !cfg.only.is_empty() && !cfg.only.iter().any(|n| n == bench.name) {
            continue;
        }
        let compiled =
            compile(&bench, &CompileOptions::with_ifconv()).expect("suite benchmarks compile");

        // One functional walk past every window start, snapshotting the
        // machine at each — the cost every cell of this benchmark shares.
        let started = Instant::now();
        let mut machine = Machine::new(&compiled.program);
        let mut position = 0u64;
        let mut checkpoints = Vec::with_capacity(spec.count as usize);
        for i in 0..spec.count {
            let start = spec.window_start(i);
            machine
                .run(start - position)
                .unwrap_or_else(|e| panic!("functional machine died: {e}"));
            position = start;
            checkpoints.push(machine.checkpoint());
        }
        let ff_micros = started.elapsed().as_micros() as u64;

        let mut cells = Vec::new();
        for (scheme, predication) in CELLS {
            let opts = SimOptions::new(scheme, predication);
            let (full_stats, full_micros) = run_inline(opts, &compiled.program, cfg.commits);

            let started = Instant::now();
            let mut aggregate = SimStats::default();
            for ckpt in &checkpoints {
                let mut m = Machine::new(&compiled.program);
                m.restore(ckpt);
                let mut sim = opts
                    .build_source(m)
                    .expect("bench cells carry no overrides");
                let run = sim.run_sample(spec.warmup, spec.measure);
                aggregate.merge(&run.stats);
            }
            let sampled_micros = started.elapsed().as_micros() as u64;

            cells.push(SampleCellBench {
                scheme,
                predication,
                full_rate: full_stats.misprediction_rate(),
                sampled_rate: aggregate.misprediction_rate(),
                full_committed: full_stats.committed,
                sampled_committed: aggregate.committed,
                full_micros,
                sampled_micros,
            });
        }
        rows.push(SampleBenchRow {
            benchmark: bench.name.to_string(),
            ff_micros,
            cells,
        });
    }
    SampleBenchReport {
        commits: cfg.commits,
        spec,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_benchmark_produces_identical_cells_and_valid_json() {
        let report = run(&BenchConfig {
            commits: 3_000,
            only: vec!["gzip".into()],
            ..BenchConfig::default()
        });
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].cells.len(), CELLS.len());
        assert!(report.reports_identical(), "{}", report.summary());
        assert!(
            report.fused_identical(),
            "fused lanes diverged from solo replay: {}",
            report.summary()
        );
        assert!(report.rows[0].records > 0);
        assert!(report.rows[0].trace_bytes > 0);
        for c in &report.rows[0].cells {
            assert!(c.committed >= 3_000, "{} under-committed", c.label());
        }
        let text = report.to_json().to_string();
        let parsed = Json::parse(&text).expect("bench artifact parses");
        assert_eq!(
            parsed
                .get("aggregate")
                .and_then(|a| a.get("reports_identical")),
            Some(&Json::Bool(true))
        );
        assert_eq!(
            parsed.get("fused").and_then(|f| f.get("reports_identical")),
            Some(&Json::Bool(true)),
            "{text}"
        );
        assert!(
            parsed.get("fused").and_then(|f| f.get("speedup")).is_some(),
            "{text}"
        );
    }

    #[test]
    fn sampled_bench_compares_rates_and_counts_work() {
        let spec = SampleSpec {
            skip: 2_000,
            warmup: 1_000,
            measure: 3_000,
            stride: 5_000,
            count: 2,
        };
        let report = run_sampled(
            &BenchConfig {
                commits: 20_000,
                only: vec!["gzip".into()],
                ..BenchConfig::default()
            },
            spec,
        );
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].cells.len(), CELLS.len());
        for c in &report.rows[0].cells {
            assert!(c.full_committed >= 20_000, "{} under-committed", c.label());
            assert_eq!(
                c.sampled_committed,
                u64::from(spec.count) * spec.measure,
                "{} measured the wrong window total",
                c.label()
            );
            assert!(c.error_pp().is_finite());
            assert!(
                c.error_pp() < 50.0,
                "{}: sampled rate wildly off ({} vs {})",
                c.label(),
                c.sampled_rate,
                c.full_rate
            );
        }
        let text = report.to_json().to_string();
        let parsed = Json::parse(&text).expect("sample bench artifact parses");
        assert_eq!(
            parsed.get("sample"),
            Some(&Json::Str(spec.canon())),
            "{text}"
        );
        assert!(report.summary().contains("speedup"));
    }

    #[test]
    fn trace_bench_proves_fused_identity_on_an_imported_stream() {
        let mut log = String::new();
        for i in 0..300 {
            log.push_str(&format!(
                "0x1000 {}\n0x2000 {}\n",
                u8::from(i % 3 != 0),
                i % 2
            ));
        }
        let (trace, _) = ppsim_isa::pptrace::import_cbp(&log).unwrap();
        let report = run_trace("cbp-fixture", Arc::new(trace), 10_000);
        assert_eq!(report.cells.len(), CELLS.len());
        assert!(report.fused_identical, "{}", report.summary());
        assert!(report.records > 0);
        for c in &report.cells {
            assert!(c.committed > 0, "{} committed nothing", c.label());
        }
        let text = report.to_json().to_string();
        let parsed = Json::parse(&text).expect("trace bench artifact parses");
        assert_eq!(
            parsed.get("fused").and_then(|f| f.get("reports_identical")),
            Some(&Json::Bool(true)),
            "{text}"
        );
    }

    #[test]
    fn only_filter_restricts_rows() {
        let report = run(&BenchConfig {
            commits: 1_000,
            only: vec!["no-such-benchmark".into()],
            ..BenchConfig::default()
        });
        assert!(report.rows.is_empty());
        assert!(report.reports_identical(), "vacuously identical");
    }

    #[test]
    fn repeat_and_phases_stamp_the_artifact_and_stay_identical() {
        let report = run(&BenchConfig {
            commits: 3_000,
            only: vec!["gzip".into()],
            repeat: 3,
            phases: true,
        });
        assert_eq!(report.repeat, 3);
        assert!(report.reports_identical(), "{}", report.summary());
        assert!(report.fused_identical(), "{}", report.summary());

        let row = &report.rows[0];
        let p = row.phases.as_ref().expect("phases requested");
        assert!(
            p.identical,
            "profiled lanes diverged from unprofiled replay"
        );
        // Laps telescope: the bucket sum is exactly the measured
        // process() time, and process() time fits inside the pass wall.
        assert!(p.report.total_nanos() > 0);
        assert!(
            p.report.total_nanos() <= p.wall_nanos,
            "process {} > wall {}",
            p.report.total_nanos(),
            p.wall_nanos
        );
        // One fused pass over CELLS lanes profiles each record once per
        // lane.
        assert_eq!(p.report.records, row.records * CELLS.len() as u64);
        // Min never exceeds the median it was sampled with.
        for c in &row.cells {
            assert!(c.inline_min_micros <= c.inline_micros);
            assert!(c.replay_min_micros <= c.replay_micros);
        }
        assert!(row.fused_min_micros <= row.fused_micros);

        let text = report.to_json().to_string();
        let parsed = Json::parse(&text).expect("bench artifact parses");
        assert_eq!(
            parsed.get("repeat").and_then(Json::as_i64),
            Some(3),
            "{text}"
        );
        assert!(parsed.get("commit").is_some(), "{text}");
        assert_eq!(parsed.get("jobs").and_then(Json::as_i64), Some(1), "{text}");
        let ph = parsed.get("phases").expect("aggregate phases block");
        let total: f64 = phases::NAMES
            .iter()
            .map(|name| {
                ph.get(&format!("{name}_nanos"))
                    .and_then(Json::as_f64)
                    .expect("phase bucket present")
            })
            .sum();
        assert_eq!(
            Some(total),
            ph.get("process_nanos").and_then(Json::as_f64),
            "phase buckets must sum to process_nanos exactly: {text}"
        );
        assert_eq!(
            ph.get("reports_identical"),
            Some(&Json::Bool(true)),
            "{text}"
        );
        assert!(report.summary().contains("median of 3"));
        assert!(report.summary().contains("phases:"));
    }
}
