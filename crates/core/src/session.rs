//! Shared command-line session plumbing for experiment binaries.
//!
//! Every figure binary (and any downstream tool driving the harness) goes
//! through one [`Session`]: parse the runner flags and `--json`, build the
//! [`ExperimentConfig`] from the environment, run, then [`Session::finish`]
//! writes the artifact. The artifact's `data` field is deterministic
//! experiment output; execution telemetry is attached as a *sibling*
//! field, so stripping it yields byte-identical documents across cache
//! states and worker counts.

use std::path::PathBuf;

use ppsim_runner::{Json, Runner, RunnerOptions};

use crate::ExperimentConfig;

/// A figure binary's execution context: the runner, the experiment
/// config, and the artifact/flag plumbing shared by every binary.
pub struct Session {
    /// The (parallel, cache-aware) execution engine.
    pub runner: Runner,
    /// Commit budget, benchmark subset, machine.
    pub cfg: ExperimentConfig,
    /// Where to write the JSON artifact (`--json PATH`).
    pub json_path: Option<PathBuf>,
    /// Binary name (for logging and the artifact's `experiment` field).
    name: String,
    /// Arguments not consumed by the shared flags.
    rest: Vec<String>,
}

/// Shared entry point: parses the runner flags and `--json` from the
/// command line, builds the experiment config from the environment, and
/// echoes the run parameters to stderr.
pub fn setup(name: &str) -> Session {
    let args: Vec<String> = std::env::args().skip(1).collect();
    Session::from_args(name, &args).unwrap_or_else(|e| {
        eprintln!("[{name}] {e}");
        std::process::exit(2);
    })
}

impl Session {
    /// Builds a session from an explicit argument list (what [`setup`]
    /// does with `std::env::args`, minus the process exit — testable).
    pub fn from_args(name: &str, args: &[String]) -> Result<Session, String> {
        let (opts, rest) = RunnerOptions::from_args(args)?;
        let mut json_path = None;
        let mut remaining = Vec::new();
        let mut it = rest.into_iter();
        while let Some(a) = it.next() {
            if a == "--json" {
                match it.next() {
                    Some(p) => json_path = Some(PathBuf::from(p)),
                    None => return Err("--json needs a path".to_string()),
                }
            } else {
                remaining.push(a);
            }
        }
        let cfg = ExperimentConfig::from_env();
        eprintln!(
            "[{name}] commits/run = {}, benchmarks = {}",
            cfg.commits,
            if cfg.only.is_empty() {
                "all 22".to_string()
            } else {
                cfg.only.join(",")
            }
        );
        Ok(Session {
            runner: Runner::new(opts),
            cfg,
            json_path,
            name: name.to_string(),
            rest: remaining,
        })
    }

    /// Whether an unconsumed flag (e.g. `--ideal`) was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// First unconsumed positional argument, if any.
    pub fn positional(&self) -> Option<&str> {
        self.rest
            .iter()
            .find(|a| !a.starts_with("--"))
            .map(|s| s.as_str())
    }

    /// Finishes the run: writes the JSON artifact when `--json` was given
    /// (deterministic experiment data + execution telemetry as a sibling)
    /// and prints the telemetry summary to stderr. Stdout stays purely
    /// deterministic.
    pub fn finish(&self, data: Json) {
        let telemetry = self.runner.telemetry();
        if let Some(path) = &self.json_path {
            let doc = Json::obj()
                .field("experiment", self.name.as_str())
                .field("commits", self.cfg.commits)
                .field("data", data)
                .field("telemetry", telemetry.to_json());
            match std::fs::write(path, format!("{doc}\n")) {
                Ok(()) => eprintln!("[{}] wrote {}", self.name, path.display()),
                Err(e) => {
                    eprintln!("[{}] failed to write {}: {e}", self.name, path.display());
                    std::process::exit(1);
                }
            }
        }
        eprintln!("[{}] {}", self.name, telemetry.summary());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_args_parses_shared_flags() {
        let args: Vec<String> = [
            "--jobs",
            "1",
            "--no-cache",
            "--json",
            "/tmp/x.json",
            "--ideal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let s = Session::from_args("test", &args).unwrap();
        assert_eq!(
            s.json_path.as_deref(),
            Some(std::path::Path::new("/tmp/x.json"))
        );
        assert!(s.has_flag("--ideal"));
        assert_eq!(s.positional(), None);
    }

    #[test]
    fn json_without_path_is_an_error() {
        let args = vec!["--json".to_string()];
        assert!(Session::from_args("test", &args).is_err());
    }
}
