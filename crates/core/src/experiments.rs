//! Per-figure experiment runners.
//!
//! Each function builds the grid of simulation cells ([`Job`]s) the
//! paper's corresponding experiment requires, hands the grid to a
//! [`Runner`] (which parallelizes, caches and memoizes compilation), and
//! assembles typed results with [`Table`] and JSON renderings. Grids are
//! always constructed in a canonical order — suite order × scheme order —
//! so reports are byte-identical regardless of worker count or cache
//! state.

use ppsim_compiler::{WorkloadClass, WorkloadSpec};
use ppsim_pipeline::{PredicationModel, SchemeKind, SimStats};
use ppsim_predictors::sizing;
use ppsim_runner::{Job, Json, Runner};

use crate::report::{count, f3, pct, Table};
use crate::ExperimentConfig;

/// One benchmark's results across the schemes of an experiment.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Integer or floating point.
    pub class: WorkloadClass,
    /// Per-scheme statistics, in the experiment's scheme order. For
    /// sampled runs these are the counter-summed window aggregates.
    pub runs: Vec<SimStats>,
    /// Per-scheme, per-window statistics when the experiment ran sampled
    /// (`samples[scheme][window]`); empty for full runs.
    pub samples: Vec<Vec<SimStats>>,
}

/// Results of a multi-scheme comparison (Figures 5 and 6a).
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Experiment title.
    pub title: String,
    /// Scheme labels, defining the column order.
    pub schemes: Vec<String>,
    /// One row per benchmark.
    pub rows: Vec<BenchRow>,
}

impl Comparison {
    /// Average misprediction rate of scheme column `i`.
    pub fn average_rate(&self, i: usize) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| r.runs[i].misprediction_rate())
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Average accuracy difference (percentage points) of scheme `b` over
    /// scheme `a` — the paper's "accuracy increase".
    pub fn accuracy_gain(&self, a: usize, b: usize) -> f64 {
        (self.average_rate(a) - self.average_rate(b)) * 100.0
    }

    /// Renders the comparison as a misprediction-rate table (the figures'
    /// y-axis, in percent).
    pub fn table(&self) -> Table {
        let mut headers = vec!["benchmark".to_string(), "class".to_string()];
        headers.extend(self.schemes.iter().map(|s| format!("{s} misp%")));
        let mut t = Table::new(
            self.title.clone(),
            &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for row in &self.rows {
            let mut cells = vec![
                row.name.to_string(),
                match row.class {
                    WorkloadClass::Int => "int".to_string(),
                    WorkloadClass::Fp => "fp".to_string(),
                },
            ];
            cells.extend(row.runs.iter().map(|s| pct(s.misprediction_rate())));
            t.row(cells);
        }
        let mut avg = vec!["average".to_string(), "-".to_string()];
        avg.extend((0..self.schemes.len()).map(|i| pct(self.average_rate(i))));
        t.row(avg);
        t
    }

    /// Average MPKI of scheme column `i`.
    pub fn average_mpki(&self, i: usize) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.runs[i].mpki()).sum::<f64>() / self.rows.len() as f64
    }

    /// Renders the comparison as an MPKI table — mispredicts per
    /// kilo-instruction, the cross-workload metric modern prediction
    /// studies report. Unlike the rate table it also reflects each
    /// workload's branch density.
    pub fn mpki_table(&self) -> Table {
        let mut headers = vec!["benchmark".to_string(), "class".to_string()];
        headers.extend(self.schemes.iter().map(|s| format!("{s} MPKI")));
        let mut t = Table::new(
            format!("{} — MPKI", self.title),
            &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for row in &self.rows {
            let mut cells = vec![
                row.name.to_string(),
                match row.class {
                    WorkloadClass::Int => "int".to_string(),
                    WorkloadClass::Fp => "fp".to_string(),
                },
            ];
            cells.extend(row.runs.iter().map(|s| f3(s.mpki())));
            t.row(cells);
        }
        let mut avg = vec!["average".to_string(), "-".to_string()];
        avg.extend((0..self.schemes.len()).map(|i| f3(self.average_mpki(i))));
        t.row(avg);
        t
    }

    /// Renders scheme column `col`'s top-`n` hardest-to-predict ("H2P")
    /// static branches per benchmark: the sites contributing the most
    /// mispredictions, with their execution counts and per-site rates.
    pub fn h2p_table(&self, col: usize, n: usize) -> Table {
        let mut t = Table::new(
            format!(
                "Top-{n} mispredicting branches (H2P) — {} scheme",
                self.schemes[col]
            ),
            &["benchmark", "site", "execs", "mispredicts", "site misp%"],
        );
        for row in &self.rows {
            for (slot, execs, miss) in row.runs[col].top_mispredictors(n) {
                t.row(vec![
                    row.name.to_string(),
                    format!("slot {slot}"),
                    count(execs),
                    count(miss),
                    pct(miss as f64 / execs.max(1) as f64),
                ]);
            }
        }
        t
    }

    /// Renders scheme column `col` as a stall-attribution table: every
    /// benchmark's cycles split across the six [`ppsim_pipeline::StallBucket`]s
    /// (percent of total; rows sum to 100 by the pipeline's invariant).
    pub fn stall_table(&self, col: usize) -> Table {
        use ppsim_pipeline::StallBucket;
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(StallBucket::ALL.iter().map(|b| format!("{}%", b.name())));
        let mut t = Table::new(
            format!("Stall attribution — {} scheme", self.schemes[col]),
            &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for row in &self.rows {
            let s = &row.runs[col];
            let total = s.stall.total().max(1) as f64;
            let mut cells = vec![row.name.to_string()];
            cells.extend(
                StallBucket::ALL
                    .iter()
                    .map(|&b| pct(s.stall.get(b) as f64 / total)),
            );
            t.row(cells);
        }
        t
    }

    /// Renders the per-window misprediction rates of a sampled run
    /// (`None` when the comparison came from full runs).
    pub fn sample_table(&self) -> Option<Table> {
        if self.rows.iter().all(|r| r.samples.is_empty()) {
            return None;
        }
        let mut headers = vec!["benchmark".to_string(), "window".to_string()];
        headers.extend(self.schemes.iter().map(|s| format!("{s} misp%")));
        let mut t = Table::new(
            format!("{} — per-window samples", self.title),
            &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for row in &self.rows {
            let windows = row.samples.first().map_or(0, |col| col.len());
            for w in 0..windows {
                let mut cells = vec![row.name.to_string(), format!("w{w}")];
                cells.extend(
                    row.samples
                        .iter()
                        .map(|col| pct(col[w].misprediction_rate())),
                );
                t.row(cells);
            }
        }
        Some(t)
    }

    /// Renders the comparison as a JSON object (for `--json` artifacts).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("title", self.title.as_str())
            .field(
                "schemes",
                Json::Arr(
                    self.schemes
                        .iter()
                        .map(|s| Json::from(s.as_str()))
                        .collect(),
                ),
            )
            .field(
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            let mut obj = Json::obj()
                                .field("benchmark", r.name)
                                .field(
                                    "class",
                                    match r.class {
                                        WorkloadClass::Int => "int",
                                        WorkloadClass::Fp => "fp",
                                    },
                                )
                                .field(
                                    "misprediction_rates",
                                    Json::Arr(
                                        r.runs
                                            .iter()
                                            .map(|s| Json::Num(s.misprediction_rate()))
                                            .collect(),
                                    ),
                                )
                                .field(
                                    "ipc",
                                    Json::Arr(r.runs.iter().map(|s| Json::Num(s.ipc())).collect()),
                                )
                                .field(
                                    "mpki",
                                    Json::Arr(r.runs.iter().map(|s| Json::Num(s.mpki())).collect()),
                                )
                                .field(
                                    "metrics",
                                    Json::Arr(
                                        r.runs.iter().map(|s| s.metrics().to_json()).collect(),
                                    ),
                                );
                            if !r.samples.is_empty() {
                                obj = obj.field(
                                    "sample_rates",
                                    Json::Arr(
                                        r.samples
                                            .iter()
                                            .map(|col| {
                                                Json::Arr(
                                                    col.iter()
                                                        .map(|s| Json::Num(s.misprediction_rate()))
                                                        .collect(),
                                                )
                                            })
                                            .collect(),
                                    ),
                                );
                            }
                            obj
                        })
                        .collect(),
                ),
            )
            .field(
                "average_rates",
                Json::Arr(
                    (0..self.schemes.len())
                        .map(|i| Json::Num(self.average_rate(i)))
                        .collect(),
                ),
            )
    }
}

fn suite(cfg: &ExperimentConfig) -> Vec<WorkloadSpec> {
    ppsim_compiler::spec2000_suite()
        .into_iter()
        .filter(|s| cfg.selected(s.name))
        .collect()
}

/// A job for one cell of this config's grid (no overrides).
fn cell(
    cfg: &ExperimentConfig,
    bench: &str,
    ifconv: bool,
    scheme: SchemeKind,
    predication: PredicationModel,
) -> Job {
    Job::new(
        bench,
        ifconv,
        scheme,
        predication,
        cfg.commits,
        cfg.profile_steps,
        cfg.core,
    )
}

/// The scheme columns of the Figure 6a grid: (scheme, predication,
/// shadow) per column, in table order. The paper's three columns lead;
/// the TAGE frontier columns follow — the branch-PC variants under the
/// paper's cmov model (like the other branch-PC schemes), the
/// predicate-predicting hybrid under selective predication (like the
/// paper's predicate column it competes with).
pub const FIG6A_SCHEMES: [(SchemeKind, PredicationModel, bool); 6] = [
    (SchemeKind::PepPa, PredicationModel::Cmov, false),
    (SchemeKind::Conventional, PredicationModel::Cmov, false),
    (SchemeKind::Predicate, PredicationModel::Selective, false),
    (SchemeKind::Tage, PredicationModel::Cmov, false),
    (SchemeKind::TageH2p, PredicationModel::Cmov, false),
    (
        SchemeKind::TagePredicate,
        PredicationModel::Selective,
        false,
    ),
];

/// Column index of `scheme` within [`FIG6A_SCHEMES`] — positional
/// references into the Figure 6a grid (accuracy gains, H2P and stall
/// columns) are derived through here, never hardcoded, so they survive
/// column insertions.
pub fn fig6a_col(scheme: SchemeKind) -> usize {
    FIG6A_SCHEMES
        .iter()
        .position(|&(s, _, _)| s == scheme)
        .unwrap_or_else(|| panic!("{} is not a Figure 6a column", scheme.name()))
}

/// The Figure 6b column: the predicate scheme with the conventional
/// shadow predictor running alongside for the attribution counts.
const FIG6B_SCHEMES: [(SchemeKind, PredicationModel, bool); 1] =
    [(SchemeKind::Predicate, PredicationModel::Selective, true)];

/// The IPC-ablation columns: the predicate scheme under both
/// predication models.
const IPC_SCHEMES: [(SchemeKind, PredicationModel, bool); 2] = [
    (SchemeKind::Predicate, PredicationModel::Cmov, false),
    (SchemeKind::Predicate, PredicationModel::Selective, false),
];

fn fig5_schemes(ideal: bool) -> [(SchemeKind, PredicationModel, bool); 2] {
    let (sa, sb) = if ideal {
        (SchemeKind::IdealConventional, SchemeKind::IdealPredicate)
    } else {
        (SchemeKind::Conventional, SchemeKind::Predicate)
    };
    [
        (sa, PredicationModel::Cmov, false),
        (sb, PredicationModel::Cmov, false),
    ]
}

/// A named slice of the experiment space — the single vocabulary every
/// consumer (CLI suite, serve daemon, benchmark harness) uses to name
/// the cells it wants simulated.
#[derive(Clone, Copy, Debug)]
pub enum PlanSpec<'a> {
    /// One explicit cell of `cfg`'s grid.
    Cell {
        /// Benchmark name.
        bench: &'a str,
        /// Simulate the if-converted binary.
        ifconv: bool,
        /// Prediction scheme.
        scheme: SchemeKind,
        /// Predication model.
        predication: PredicationModel,
    },
    /// The Figure 5 columns (non-if-converted conventional vs
    /// predicate); `ideal` selects the alias-free perfect-history
    /// variants.
    Fig5 {
        /// Run the idealized variants instead.
        ideal: bool,
    },
    /// The Figure 6a grid (if-converted code, three schemes).
    Fig6a,
    /// The Figure 6b shadow-attribution column.
    Fig6b,
    /// The predication-model IPC-ablation columns.
    IpcAblation,
    /// Every cell of the consolidated report (Figures 5, 6a, 6b and the
    /// IPC ablation), deduplicated in first-use order.
    FullReport,
}

/// Expands `spec` into its canonical [`Job`] list for `cfg` — the one
/// grid builder behind every experiment. External callers (the serve
/// daemon, the benchmark harness) build jobs through here and therefore
/// share cache keys — and bytes — with batch runs. Multi-figure specs
/// are deduplicated by canonical key, so cells shared between figures
/// appear (and simulate) once; grids keep suite-major order, which the
/// fused runner bundles into one decode pass per benchmark stream.
pub fn plan(cfg: &ExperimentConfig, spec: PlanSpec) -> Vec<Job> {
    match spec {
        PlanSpec::Cell {
            bench,
            ifconv,
            scheme,
            predication,
        } => vec![cell(cfg, bench, ifconv, scheme, predication)],
        PlanSpec::Fig5 { ideal } => grid_jobs(cfg, false, &fig5_schemes(ideal)),
        PlanSpec::Fig6a => grid_jobs(cfg, true, &FIG6A_SCHEMES),
        PlanSpec::Fig6b => grid_jobs(cfg, true, &FIG6B_SCHEMES),
        PlanSpec::IpcAblation => grid_jobs(cfg, true, &IPC_SCHEMES),
        PlanSpec::FullReport => {
            let mut jobs = plan(cfg, PlanSpec::Fig5 { ideal: false });
            jobs.extend(plan(cfg, PlanSpec::Fig6a));
            jobs.extend(plan(cfg, PlanSpec::Fig6b));
            jobs.extend(plan(cfg, PlanSpec::IpcAblation));
            let mut seen = std::collections::HashSet::new();
            jobs.retain(|j| seen.insert(j.canon()));
            jobs
        }
    }
}

/// The jobs of a (suite × schemes) grid in suite-major order.
fn grid_jobs(
    cfg: &ExperimentConfig,
    ifconv: bool,
    schemes: &[(SchemeKind, PredicationModel, bool)],
) -> Vec<Job> {
    suite(cfg)
        .iter()
        .flat_map(|spec| {
            schemes.iter().map(|&(scheme, predication, shadow)| Job {
                shadow,
                ..cell(cfg, spec.name, ifconv, scheme, predication)
            })
        })
        .collect()
}

/// Per-cell outcome held by [`PlanResults`].
#[derive(Clone, Debug)]
struct PlanCell {
    /// Aggregate statistics (counter-summed over windows when sampled).
    stats: SimStats,
    /// Per-window statistics; empty for full runs.
    windows: Vec<SimStats>,
}

/// The executed results of a plan, indexed by canonical cell key.
///
/// Collected **once** per plan and shared by every figure that reads
/// from it — figures that overlap (the full report's grids share
/// cells) assemble from the same simulation instead of re-running it.
#[derive(Clone, Debug, Default)]
pub struct PlanResults {
    cells: std::collections::HashMap<String, PlanCell>,
}

impl PlanResults {
    /// Executes `jobs` through `runner` — deduplicated by canonical key,
    /// sampled or full per `cfg.sample` — and indexes the outcomes.
    pub fn collect(runner: &Runner, cfg: &ExperimentConfig, jobs: &[Job]) -> PlanResults {
        let mut unique: Vec<Job> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for j in jobs {
            if seen.insert(j.canon()) {
                unique.push(j.clone());
            }
        }
        let mut cells = std::collections::HashMap::with_capacity(unique.len());
        match cfg.sample {
            Some(spec) => {
                for (job, r) in unique.iter().zip(runner.run_grid_sampled(&unique, spec)) {
                    cells.insert(
                        job.canon(),
                        PlanCell {
                            stats: r.aggregate.stats,
                            windows: r.samples.into_iter().map(|w| w.stats).collect(),
                        },
                    );
                }
            }
            None => {
                for (job, r) in unique.iter().zip(runner.run_grid(&unique)) {
                    cells.insert(
                        job.canon(),
                        PlanCell {
                            stats: r.stats,
                            windows: Vec::new(),
                        },
                    );
                }
            }
        }
        PlanResults { cells }
    }

    /// Number of distinct cells executed.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells were executed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn cell(&self, job: &Job) -> &PlanCell {
        self.cells
            .get(&job.canon())
            .unwrap_or_else(|| panic!("plan results missing cell {}", job.canon()))
    }

    /// The collected aggregate statistics of one cell — the read-side of
    /// [`PlanResults::collect`] for callers assembling custom reports
    /// (e.g. [`crate::tracework::trace_report`]). Panics with the job's
    /// canonical key if the plan didn't cover it.
    pub fn stats_of(&self, job: &Job) -> &SimStats {
        &self.cell(job).stats
    }

    /// Per-benchmark stat rows for a (suite × schemes) grid, read from
    /// the collected results. Panics if the plan didn't cover the grid.
    fn rows(
        &self,
        cfg: &ExperimentConfig,
        ifconv: bool,
        schemes: &[(SchemeKind, PredicationModel, bool)],
    ) -> Vec<BenchRow> {
        suite(cfg)
            .iter()
            .map(|spec| {
                let jobs: Vec<Job> = schemes
                    .iter()
                    .map(|&(scheme, predication, shadow)| Job {
                        shadow,
                        ..cell(cfg, spec.name, ifconv, scheme, predication)
                    })
                    .collect();
                BenchRow {
                    name: spec.name,
                    class: spec.class,
                    runs: jobs.iter().map(|j| self.cell(j).stats.clone()).collect(),
                    samples: if cfg.sample.is_some() {
                        jobs.iter().map(|j| self.cell(j).windows.clone()).collect()
                    } else {
                        Vec::new()
                    },
                }
            })
            .collect()
    }
}

impl PlanResults {
    /// Assembles Figure 5 from collected results (see [`fig5`]).
    pub fn fig5(&self, cfg: &ExperimentConfig, ideal: bool) -> Comparison {
        let title = if ideal {
            "Figure 5 (idealized): no alias conflicts, perfect history, non-if-converted code"
        } else {
            "Figure 5: 148KB conventional vs 148KB predicate predictor, non-if-converted code"
        };
        Comparison {
            title: title.to_string(),
            schemes: vec!["conventional".into(), "predicate".into()],
            rows: self.rows(cfg, false, &fig5_schemes(ideal)),
        }
    }

    /// Assembles Figure 6a from collected results (see [`fig6a`]).
    pub fn fig6a(&self, cfg: &ExperimentConfig) -> Comparison {
        Comparison {
            title: "Figure 6a: PEP-PA vs conventional vs predicate predictor \
                    vs the TAGE frontier, if-converted code"
                .to_string(),
            schemes: FIG6A_SCHEMES
                .iter()
                .map(|(s, _, _)| s.name().to_string())
                .collect(),
            rows: self.rows(cfg, true, &FIG6A_SCHEMES),
        }
    }
}

/// Figure 5: branch misprediction rates of the conventional predictor vs
/// the predicate predictor on **non-if-converted** binaries. With
/// `ideal`, runs the alias-free perfect-history variants instead (the
/// "results not shown in the graph" study of §4.2).
pub fn fig5(runner: &Runner, cfg: &ExperimentConfig, ideal: bool) -> Comparison {
    PlanResults::collect(runner, cfg, &plan(cfg, PlanSpec::Fig5 { ideal })).fig5(cfg, ideal)
}

/// Figure 6a: misprediction rates on **if-converted** binaries for the
/// 144 KB PEP-PA, the 148 KB conventional predictor and the 148 KB
/// predicate predictor.
pub fn fig6a(runner: &Runner, cfg: &ExperimentConfig) -> Comparison {
    PlanResults::collect(runner, cfg, &plan(cfg, PlanSpec::Fig6a)).fig6a(cfg)
}

/// One row of the Figure 6b breakdown.
#[derive(Clone, Debug)]
pub struct BreakdownRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Accuracy difference (percentage points) of the predicate scheme
    /// over the shadow conventional predictor.
    pub total: f64,
    /// Contribution of early-resolved branches (predicate was ready and
    /// the conventional predictor would have mispredicted).
    pub early: f64,
    /// Remainder, attributed to correlation improvement (and including
    /// the predicate predictor's negative effects, as in the paper).
    pub correlation: f64,
}

/// Results of the Figure 6b attribution experiment.
#[derive(Clone, Debug)]
pub struct Breakdown {
    /// One row per benchmark.
    pub rows: Vec<BreakdownRow>,
}

impl Breakdown {
    /// Average early-resolved contribution (percentage points).
    pub fn average_early(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.early).sum::<f64>() / self.rows.len() as f64
    }

    /// Average correlation contribution (percentage points).
    pub fn average_correlation(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.correlation).sum::<f64>() / self.rows.len() as f64
    }

    /// Renders the breakdown table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 6b: accuracy-gain breakdown (percentage points vs conventional)",
            &["benchmark", "total", "early-resolved", "correlation"],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.to_string(),
                f3(r.total),
                f3(r.early),
                f3(r.correlation),
            ]);
        }
        t.row(vec![
            "average".to_string(),
            f3(self.average_early() + self.average_correlation()),
            f3(self.average_early()),
            f3(self.average_correlation()),
        ]);
        t
    }

    /// Renders the breakdown as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field(
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj()
                                .field("benchmark", r.name)
                                .field("total", r.total)
                                .field("early", r.early)
                                .field("correlation", r.correlation)
                        })
                        .collect(),
                ),
            )
            .field("average_early", self.average_early())
            .field("average_correlation", self.average_correlation())
    }
}

impl PlanResults {
    /// Assembles the Figure 6b breakdown from collected results (see
    /// [`fig6b`]).
    pub fn fig6b(&self, cfg: &ExperimentConfig) -> Breakdown {
        let rows = self
            .rows(cfg, true, &FIG6B_SCHEMES)
            .into_iter()
            .map(|row| {
                let s = &row.runs[0];
                let n = s.cond_branches.max(1) as f64;
                let shadow_rate = s.shadow_mispredicts as f64 / n;
                let total = (shadow_rate - s.misprediction_rate()) * 100.0;
                let early = (s.early_resolved_saves as f64 / n) * 100.0;
                BreakdownRow {
                    name: row.name,
                    total,
                    early,
                    correlation: total - early,
                }
            })
            .collect();
        Breakdown { rows }
    }
}

/// Figure 6b: splits the accuracy difference between the predicate scheme
/// and a conventional predictor into the early-resolved and correlation
/// contributions, following the paper's method: count the times the
/// predicate was ready while the conventional predictor would have
/// mispredicted; attribute the remaining difference to correlation.
pub fn fig6b(runner: &Runner, cfg: &ExperimentConfig) -> Breakdown {
    PlanResults::collect(runner, cfg, &plan(cfg, PlanSpec::Fig6b)).fig6b(cfg)
}

/// One row of the predication-model IPC ablation.
#[derive(Clone, Debug)]
pub struct IpcRow {
    /// Benchmark name.
    pub name: &'static str,
    /// IPC with cmov-style predication.
    pub ipc_cmov: f64,
    /// IPC with selective predicate prediction.
    pub ipc_selective: f64,
}

impl IpcRow {
    /// Selective-over-cmov speedup.
    pub fn speedup(&self) -> f64 {
        if self.ipc_cmov == 0.0 {
            0.0
        } else {
            self.ipc_selective / self.ipc_cmov
        }
    }
}

/// Results of the IPC ablation.
#[derive(Clone, Debug)]
pub struct IpcAblation {
    /// One row per benchmark.
    pub rows: Vec<IpcRow>,
}

impl IpcAblation {
    /// Geometric-mean speedup.
    pub fn geomean_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.rows.iter().map(|r| r.speedup().ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }

    /// Renders the ablation table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Selective predicate prediction vs cmov-style predication (if-converted code)",
            &["benchmark", "IPC cmov", "IPC selective", "speedup"],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.to_string(),
                f3(r.ipc_cmov),
                f3(r.ipc_selective),
                f3(r.speedup()),
            ]);
        }
        t.row(vec![
            "geomean".to_string(),
            "-".to_string(),
            "-".to_string(),
            f3(self.geomean_speedup()),
        ]);
        t
    }

    /// Renders the ablation as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field(
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj()
                                .field("benchmark", r.name)
                                .field("ipc_cmov", r.ipc_cmov)
                                .field("ipc_selective", r.ipc_selective)
                                .field("speedup", r.speedup())
                        })
                        .collect(),
                ),
            )
            .field("geomean_speedup", self.geomean_speedup())
    }
}

impl PlanResults {
    /// Assembles the IPC ablation from collected results (see
    /// [`ipc_ablation`]).
    pub fn ipc_ablation(&self, cfg: &ExperimentConfig) -> IpcAblation {
        let rows = self
            .rows(cfg, true, &IPC_SCHEMES)
            .into_iter()
            .map(|row| IpcRow {
                name: row.name,
                ipc_cmov: row.runs[0].ipc(),
                ipc_selective: row.runs[1].ipc(),
            })
            .collect();
        IpcAblation { rows }
    }
}

/// §3.2/§5 ablation: IPC of the predicate scheme on if-converted binaries
/// with cmov-style predication vs selective predicate prediction (the
/// paper cites an 11% IPC gain for the selective scheme in \[16\]).
pub fn ipc_ablation(runner: &Runner, cfg: &ExperimentConfig) -> IpcAblation {
    PlanResults::collect(runner, cfg, &plan(cfg, PlanSpec::IpcAblation)).ipc_ablation(cfg)
}

/// Table 1: renders the simulated machine's parameters plus the predictor
/// storage budgets.
pub fn table1(cfg: &ExperimentConfig) -> String {
    let c = &cfg.core;
    let mut out = String::new();
    out.push_str("Table 1 — Main architectural parameters\n");
    out.push_str(&format!(
        "Fetch width               up to 2 bundles ({} instructions)\n",
        c.fetch_width
    ));
    out.push_str(&format!(
        "Issue queues              int {} / fp {} / branch {}\n",
        c.iq_int, c.iq_fp, c.iq_branch
    ));
    out.push_str(&format!(
        "Load-store queues         2 separate queues of {} entries each\n",
        c.lq_entries
    ));
    out.push_str(&format!(
        "Reorder buffer            {} entries\n",
        c.rob_entries
    ));
    out.push_str("L1D                       64KB 4-way 64B, 2-cycle, 12+4 misses, 16 WB\n");
    out.push_str("L1I                       32KB 4-way 64B, 1-cycle\n");
    out.push_str("L2 unified                1MB 16-way 128B, 8-cycle, 12 misses, 8 WB\n");
    out.push_str("D/I TLB                   512 entries, 10-cycle miss penalty\n");
    out.push_str("Main memory               120 cycles\n");
    out.push_str(&format!(
        "Misprediction recovery    {} cycles\n",
        c.mispredict_penalty
    ));
    out.push_str("\nPredictor storage budgets\n");
    out.push_str(&sizing::paper_report());
    out
}

/// Executes every cell of the consolidated report exactly once — the
/// deduplicated [`PlanSpec::FullReport`] grid through one runner pass,
/// where the fused runner bundles all same-stream cells into shared
/// decode passes. Both report renderings ([`PlanResults::report_text`]
/// and [`PlanResults::report_json`]) assemble from the returned results
/// without re-running anything.
pub fn full_results(runner: &Runner, cfg: &ExperimentConfig) -> PlanResults {
    PlanResults::collect(runner, cfg, &plan(cfg, PlanSpec::FullReport))
}

impl PlanResults {
    /// Renders the consolidated text report (the body of `ppsim suite`)
    /// from results collected over [`PlanSpec::FullReport`]. The output
    /// is deterministic: byte-identical for any worker count, cache
    /// state, and fused or per-cell execution.
    pub fn report_text(&self, cfg: &ExperimentConfig) -> String {
        let mut out = String::new();
        out.push_str(&table1(cfg));
        out.push('\n');
        if let Some(spec) = cfg.sample {
            out.push_str(&format!(
                "Sampled mode ({}): {} windows of {} measured commits behind {} warmup, \
                 stride {}, skip {} — timing model covers {} of {} commits per cell\n\n",
                spec.canon(),
                spec.count,
                spec.measure,
                spec.warmup,
                spec.stride,
                spec.skip,
                spec.simulated(),
                cfg.commits
            ));
        }
        let fig5 = self.fig5(cfg, false);
        out.push_str(&fig5.table().to_string());
        out.push_str(&format!(
            "average accuracy gain (predicate over conventional): {:+.2} points (paper: +1.86)\n\n",
            fig5.accuracy_gain(0, 1)
        ));
        let fig6a = self.fig6a(cfg);
        let (conv, pred) = (
            fig6a_col(SchemeKind::Conventional),
            fig6a_col(SchemeKind::Predicate),
        );
        out.push_str(&fig6a.table().to_string());
        if let Some(t) = fig6a.sample_table() {
            out.push_str(&t.to_string());
        }
        out.push_str(&format!(
            "average accuracy gain (predicate over conventional): {:+.2} points (paper: +1.5 vs best)\n",
            fig6a.accuracy_gain(conv, pred)
        ));
        out.push_str(&format!(
            "average accuracy gain (tage over conventional): {:+.2} points; \
             (tage-h2p over tage): {:+.2}; (tage-predicate over predicate): {:+.2}\n\n",
            fig6a.accuracy_gain(conv, fig6a_col(SchemeKind::Tage)),
            fig6a.accuracy_gain(fig6a_col(SchemeKind::Tage), fig6a_col(SchemeKind::TageH2p)),
            fig6a.accuracy_gain(pred, fig6a_col(SchemeKind::TagePredicate)),
        ));
        out.push_str(&fig6a.mpki_table().to_string());
        out.push_str(&fig6a.h2p_table(pred, 5).to_string());
        let fig6b = self.fig6b(cfg);
        out.push_str(&fig6b.table().to_string());
        out.push_str(&format!(
            "averages: early {:+.2}, correlation {:+.2} (paper: +0.5 / +1.0)\n\n",
            fig6b.average_early(),
            fig6b.average_correlation()
        ));
        let ipc = self.ipc_ablation(cfg);
        out.push_str(&ipc.table().to_string());
        out.push_str(&format!(
            "geomean speedup of selective predication: {:.3} (ICS'06 reports ~1.11)\n\n",
            ipc.geomean_speedup()
        ));
        out.push_str(&fig6a.stall_table(pred).to_string());
        out
    }

    /// Renders the consolidated report as one JSON artifact from results
    /// collected over [`PlanSpec::FullReport`]: every figure's data with
    /// its full per-run metric blocks. Deterministic — byte-identical
    /// for any worker count and cache state. Execution telemetry (wall
    /// times, hit counts) deliberately lives *outside* this object;
    /// callers that want it attach [`Runner::telemetry`] as a sibling.
    pub fn report_json(&self, cfg: &ExperimentConfig) -> Json {
        let mut j = Json::obj().field("commits", cfg.commits);
        if let Some(spec) = cfg.sample {
            j = j.field("sample", spec.canon().as_str());
        }
        j.field("fig5", self.fig5(cfg, false).to_json())
            .field("fig6a", self.fig6a(cfg).to_json())
            .field("fig6b", self.fig6b(cfg).to_json())
            .field("ipc_ablation", self.ipc_ablation(cfg).to_json())
    }
}

/// Runs every experiment and renders the consolidated report (the body of
/// `ppsim suite` and the `all` binary; exposed for integration tests).
/// Collects the deduplicated grid once and assembles from shared results;
/// callers that want both renderings should collect [`full_results`]
/// themselves and render twice.
pub fn full_report(runner: &Runner, cfg: &ExperimentConfig) -> String {
    full_results(runner, cfg).report_text(cfg)
}

/// The consolidated report as one JSON artifact (see
/// [`PlanResults::report_json`]).
pub fn full_report_json(runner: &Runner, cfg: &ExperimentConfig) -> Json {
    full_results(runner, cfg).report_json(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            commits: 40_000,
            profile_steps: 60_000,
            only: vec!["gzip".into()],
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn fig5_produces_rates_for_selected_benchmarks() {
        let runner = Runner::serial_no_cache();
        let r = fig5(&runner, &tiny_cfg(), false);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].name, "gzip");
        assert_eq!(r.schemes.len(), 2);
        for s in &r.rows[0].runs {
            assert!(s.cond_branches > 100, "enough branches to measure");
            let rate = s.misprediction_rate();
            assert!((0.0..=1.0).contains(&rate));
        }
        let t = r.table().to_string();
        assert!(t.contains("gzip") && t.contains("average"), "{t}");
        // The JSON rendering carries the same rates and parses back.
        let j = r.to_json().to_string();
        let parsed = Json::parse(&j).unwrap();
        assert_eq!(parsed.get("schemes").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn fig6a_runs_every_grid_scheme() {
        let runner = Runner::serial_no_cache();
        let r = fig6a(&runner, &tiny_cfg());
        assert_eq!(r.rows[0].runs.len(), FIG6A_SCHEMES.len());
        let t = r.table().to_string();
        for label in ["pep-pa", "tage", "tage-h2p", "tage-predicate"] {
            assert!(t.contains(label), "missing {label} in:\n{t}");
        }
        // Positional references derive from the scheme, not a literal.
        assert_eq!(fig6a_col(SchemeKind::PepPa), 0);
        assert_eq!(
            r.schemes[fig6a_col(SchemeKind::TageH2p)],
            SchemeKind::TageH2p.name()
        );
        // The modern-metrics companions render from the same runs.
        let m = r.mpki_table().to_string();
        assert!(m.contains("MPKI") && m.contains("gzip"), "{m}");
        let h = r.h2p_table(fig6a_col(SchemeKind::Predicate), 5).to_string();
        assert!(h.contains("H2P") && h.contains("slot "), "{h}");
        let j = r.to_json().to_string();
        assert!(j.contains("\"mpki\""), "{j}");
    }

    #[test]
    fn stall_table_covers_every_bucket() {
        use ppsim_pipeline::StallBucket;
        let runner = Runner::serial_no_cache();
        let r = fig5(&runner, &tiny_cfg(), false);
        let t = r.stall_table(0).to_string();
        for b in StallBucket::ALL {
            assert!(t.contains(b.name()), "missing {} in:\n{t}", b.name());
        }
        // The pipeline invariant carries through: shares sum to ~100%.
        let s = &r.rows[0].runs[0];
        assert_eq!(s.stall.total(), s.cycles);
    }

    #[test]
    fn fig6b_breakdown_sums() {
        let runner = Runner::serial_no_cache();
        let r = fig6b(&runner, &tiny_cfg());
        let row = &r.rows[0];
        assert!((row.early + row.correlation - row.total).abs() < 1e-9);
    }

    #[test]
    fn ipc_ablation_produces_positive_ipcs() {
        let runner = Runner::serial_no_cache();
        let r = ipc_ablation(&runner, &tiny_cfg());
        let row = &r.rows[0];
        assert!(row.ipc_cmov > 0.1);
        assert!(row.ipc_selective > 0.1);
        assert!(r.geomean_speedup() > 0.5);
    }

    #[test]
    fn sampled_grid_reports_windows_and_aggregates() {
        use ppsim_pipeline::SampleSpec;
        let runner = Runner::serial_no_cache();
        let spec = SampleSpec {
            skip: 5_000,
            warmup: 2_000,
            measure: 8_000,
            stride: 12_000,
            count: 2,
        };
        let cfg = ExperimentConfig {
            sample: Some(spec),
            ..tiny_cfg()
        };
        let r = fig5(&runner, &cfg, false);
        let row = &r.rows[0];
        assert_eq!(row.samples.len(), 2, "one window column per scheme");
        for (agg, col) in row.runs.iter().zip(&row.samples) {
            assert_eq!(col.len(), 2, "one entry per window");
            assert_eq!(agg.committed, col.iter().map(|s| s.committed).sum::<u64>());
            assert_eq!(
                agg.mispredicts,
                col.iter().map(|s| s.mispredicts).sum::<u64>()
            );
        }
        let t = r
            .sample_table()
            .expect("sampled run renders a window table");
        let t = t.to_string();
        assert!(t.contains("w0") && t.contains("w1"), "{t}");
        let j = r.to_json().to_string();
        assert!(j.contains("sample_rates"), "{j}");
        // Full runs carry no per-window section.
        let full = fig5(&runner, &tiny_cfg(), false);
        assert!(full.sample_table().is_none());
        assert!(!full.to_json().to_string().contains("sample_rates"));
    }

    #[test]
    fn comparison_math() {
        use ppsim_pipeline::SimStats;
        let mk = |m: u64| SimStats {
            cond_branches: 100,
            mispredicts: m,
            ..SimStats::default()
        };
        let c = Comparison {
            title: "t".into(),
            schemes: vec!["a".into(), "b".into()],
            rows: vec![
                BenchRow {
                    name: "x",
                    class: WorkloadClass::Int,
                    runs: vec![mk(10), mk(5)],
                    samples: Vec::new(),
                },
                BenchRow {
                    name: "y",
                    class: WorkloadClass::Fp,
                    runs: vec![mk(20), mk(15)],
                    samples: Vec::new(),
                },
            ],
        };
        assert!((c.average_rate(0) - 0.15).abs() < 1e-12);
        assert!((c.average_rate(1) - 0.10).abs() < 1e-12);
        assert!(
            (c.accuracy_gain(0, 1) - 5.0).abs() < 1e-9,
            "{}",
            c.accuracy_gain(0, 1)
        );
        let t = c.table().to_string();
        assert!(
            t.contains("x") && t.contains("15.00") && t.contains("average"),
            "{t}"
        );
    }

    #[test]
    fn breakdown_and_ipc_math() {
        let b = Breakdown {
            rows: vec![
                BreakdownRow {
                    name: "x",
                    total: 2.0,
                    early: 0.5,
                    correlation: 1.5,
                },
                BreakdownRow {
                    name: "y",
                    total: 1.0,
                    early: 1.0,
                    correlation: 0.0,
                },
            ],
        };
        assert!((b.average_early() - 0.75).abs() < 1e-12);
        assert!((b.average_correlation() - 0.75).abs() < 1e-12);
        let ipc = IpcAblation {
            rows: vec![
                IpcRow {
                    name: "x",
                    ipc_cmov: 2.0,
                    ipc_selective: 2.2,
                },
                IpcRow {
                    name: "y",
                    ipc_cmov: 1.0,
                    ipc_selective: 1.0,
                },
            ],
        };
        let g = ipc.geomean_speedup();
        assert!((g - (1.1f64).sqrt()).abs() < 1e-9, "{g}");
        assert!(ipc.table().to_string().contains("geomean"));
    }

    #[test]
    fn table1_mentions_all_structures() {
        let t = table1(&ExperimentConfig::default());
        for s in [
            "Reorder buffer",
            "256",
            "120 cycles",
            "perceptron",
            "PEP-PA",
        ] {
            assert!(t.contains(s), "missing {s} in:\n{t}");
        }
    }
}
