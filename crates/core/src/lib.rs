//! # ppsim-core — the experiment harness
//!
//! Wires the compiler, predictors, memory hierarchy and pipeline together
//! and regenerates every table and figure of the paper's evaluation:
//!
//! | artefact | function | what it reproduces |
//! |----------|----------|--------------------|
//! | Table 1 | [`experiments::table1`] | the architectural parameters report |
//! | Figure 5 | [`experiments::fig5`] | conventional vs predicate predictor on **non-if-converted** binaries (+ idealized variant) |
//! | Figure 6a | [`experiments::fig6a`] | PEP-PA vs conventional vs predicate predictor on **if-converted** binaries |
//! | Figure 6b | [`experiments::fig6b`] | early-resolved vs correlation breakdown of the gain |
//! | §3.2/§5 claim | [`experiments::ipc_ablation`] | selective predicate prediction vs cmov-style predication (IPC) |
//!
//! Runs default to 500k committed instructions per (benchmark, scheme)
//! pair — the paper uses 100M; rates on these kernels stabilize far
//! earlier. Override with [`ExperimentConfig::commits`].
//!
//! Execution goes through [`ppsim_runner::Runner`]: experiments build
//! grids of simulation cells which the runner fans across worker threads
//! and serves from an on-disk result cache where possible. Reports are
//! byte-identical for any worker count and cache state.
//!
//! # Example
//!
//! ```no_run
//! use ppsim_core::{experiments, ExperimentConfig, Runner, RunnerOptions};
//!
//! let runner = Runner::new(RunnerOptions::default());
//! let cfg = ExperimentConfig { commits: 200_000, ..ExperimentConfig::default() };
//! let fig5 = experiments::fig5(&runner, &cfg, false);
//! println!("{}", fig5.table());
//! eprintln!("{}", runner.telemetry().summary());
//! ```

pub mod experiments;
pub mod report;
pub mod session;
pub mod simbench;
pub mod sweep;
pub mod tracework;

use ppsim_pipeline::CoreConfig;

pub use ppsim_pipeline::{SampleSpec, SampleSpecError};
pub use ppsim_runner::{
    DiskCache, Job, JobResult, JobTiming, Json, Runner, RunnerOptions, SampledResult, Telemetry,
    TraceId,
};
pub use report::Table;
pub use session::{setup, Session};
pub use tracework::{trace_report, TraceReport, TraceWorkload};

/// Configuration shared by all experiments.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Committed instructions simulated per run (paper: 100M).
    pub commits: u64,
    /// Functional-emulator steps for the compiler's profiling run.
    pub profile_steps: u64,
    /// The machine (defaults to Table 1).
    pub core: CoreConfig,
    /// Restrict to benchmarks whose name appears here (empty = all 22).
    pub only: Vec<String>,
    /// Pinpoint-style sampled simulation: replace each full `commits`-long
    /// run with this schedule's measured windows (`None` = full runs).
    pub sample: Option<SampleSpec>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            commits: 500_000,
            profile_steps: 200_000,
            core: CoreConfig::paper(),
            only: Vec::new(),
            sample: None,
        }
    }
}

impl ExperimentConfig {
    /// Reads overrides from the environment: `PPSIM_COMMITS` (u64),
    /// `PPSIM_ONLY` (comma-separated benchmark names) and `PPSIM_SAMPLE`
    /// (`skip:warmup:measure:stride:count`, or `default` for
    /// [`SampleSpec::default_spec`]).
    pub fn from_env() -> Self {
        let mut cfg = ExperimentConfig::default();
        if let Ok(v) = std::env::var("PPSIM_COMMITS") {
            if let Ok(n) = v.parse() {
                cfg.commits = n;
            }
        }
        if let Ok(v) = std::env::var("PPSIM_ONLY") {
            cfg.only = v.split(',').map(|s| s.trim().to_string()).collect();
        }
        if let Ok(v) = std::env::var("PPSIM_SAMPLE") {
            cfg.sample = if v == "default" {
                Some(SampleSpec::default_spec())
            } else {
                SampleSpec::parse(&v).ok()
            };
        }
        cfg
    }

    /// Whether a benchmark is selected by the `only` filter.
    pub fn selected(&self, name: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|n| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_selects_everything() {
        let cfg = ExperimentConfig::default();
        assert!(cfg.selected("gzip"));
        assert!(cfg.selected("anything"));
    }

    #[test]
    fn only_filter_restricts() {
        let cfg = ExperimentConfig {
            only: vec!["gzip".into(), "twolf".into()],
            ..ExperimentConfig::default()
        };
        assert!(cfg.selected("gzip"));
        assert!(cfg.selected("twolf"));
        assert!(!cfg.selected("swim"));
    }
}
