//! Sensitivity sweeps: the ablation studies behind the paper's design
//! choices.
//!
//! The paper fixes one operating point (148 KB perceptron, 30+10-bit
//! history, profile-guided if-conversion). These sweeps vary one axis at a
//! time so the *reasons* for that operating point are reproducible:
//!
//! * [`size_sweep`] — accuracy vs predictor storage budget (both the
//!   conventional and the predicate predictor), the classic
//!   accuracy-per-kilobyte curve,
//! * [`history_sweep`] — accuracy vs global-history length,
//! * [`threshold_sweep`] — how the if-conversion aggressiveness threshold
//!   moves branch population and final accuracy.

use ppsim_compiler::ifconvert::IfConvertConfig;
use ppsim_compiler::{compile, CompileOptions};
use ppsim_pipeline::{PredicationModel, SchemeKind, Simulator};
use ppsim_predictors::{PerceptronConfig, PredicateConfig};

use crate::report::{pct, Table};
use crate::ExperimentConfig;

/// One point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Axis label (e.g. "37 KB" or "16 bits").
    pub label: String,
    /// Average misprediction rate of the conventional predictor.
    pub conventional: f64,
    /// Average misprediction rate of the predicate predictor.
    pub predicate: f64,
}

/// A completed sweep.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Sweep title.
    pub title: String,
    /// Axis name.
    pub axis: String,
    /// The measured points.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            self.title.clone(),
            &[self.axis.as_str(), "conventional misp%", "predicate misp%"],
        );
        for p in &self.points {
            t.row(vec![p.label.clone(), pct(p.conventional), pct(p.predicate)]);
        }
        t
    }
}

/// Average misprediction rate over the selected benchmarks for one pair of
/// predictor configurations.
fn measure_pair(
    cfg: &ExperimentConfig,
    perceptron: PerceptronConfig,
    ifconv: bool,
) -> (f64, f64) {
    let suite: Vec<_> = ppsim_compiler::spec2000_suite()
        .into_iter()
        .filter(|s| cfg.selected(s.name))
        .collect();
    let opts = if ifconv {
        CompileOptions::with_ifconv()
    } else {
        CompileOptions::no_ifconv()
    };
    let mut conv_sum = 0.0;
    let mut pred_sum = 0.0;
    for spec in &suite {
        let compiled = compile(spec, &opts).expect("suite compiles");
        let mut conv = Simulator::new(
            &compiled.program,
            SchemeKind::Conventional,
            PredicationModel::Cmov,
            cfg.core,
        )
        .with_perceptron_config(perceptron);
        conv_sum += conv.run(cfg.commits).stats.misprediction_rate();
        let mut pred = Simulator::new(
            &compiled.program,
            SchemeKind::Predicate,
            PredicationModel::Cmov,
            cfg.core,
        )
        .with_predicate_config(PredicateConfig { perceptron, conf_bits: 3 });
        pred_sum += pred.run(cfg.commits).stats.misprediction_rate();
    }
    let n = suite.len().max(1) as f64;
    (conv_sum / n, pred_sum / n)
}

/// Accuracy vs predictor storage budget (row count scaled; geometry
/// fixed at the paper's 30+10-bit histories).
pub fn size_sweep(cfg: &ExperimentConfig, ifconv: bool) -> Sweep {
    let mut points = Vec::new();
    for rows in [462usize, 924, 1848, 3696, 7392] {
        let perceptron = PerceptronConfig { rows, ..PerceptronConfig::paper_148kb() };
        let kb = perceptron.table_bytes() as f64 / 1024.0;
        let (c, p) = measure_pair(cfg, perceptron, ifconv);
        points.push(SweepPoint {
            label: format!("{kb:.0} KB"),
            conventional: c,
            predicate: p,
        });
    }
    Sweep {
        title: format!(
            "Accuracy vs predictor budget ({} binaries)",
            if ifconv { "if-converted" } else { "plain" }
        ),
        axis: "budget".to_string(),
        points,
    }
}

/// Accuracy vs global-history length (rows rebalanced to keep the budget
/// roughly constant).
pub fn history_sweep(cfg: &ExperimentConfig, ifconv: bool) -> Sweep {
    let base = PerceptronConfig::paper_148kb();
    let budget = base.table_bytes();
    let mut points = Vec::new();
    for ghr_bits in [8u32, 16, 24, 30, 40] {
        let mut perceptron = PerceptronConfig { ghr_bits, ..base };
        perceptron.rows = budget / perceptron.weights_per_row();
        let (c, p) = measure_pair(cfg, perceptron, ifconv);
        points.push(SweepPoint {
            label: format!("{ghr_bits} bits"),
            conventional: c,
            predicate: p,
        });
    }
    Sweep {
        title: format!(
            "Accuracy vs global-history length at fixed budget ({} binaries)",
            if ifconv { "if-converted" } else { "plain" }
        ),
        axis: "GHR".to_string(),
        points,
    }
}

/// One point of the if-conversion-threshold sweep.
#[derive(Clone, Debug)]
pub struct ThresholdPoint {
    /// The profile-misprediction threshold used.
    pub threshold: f64,
    /// Static conditional branches remaining after conversion (averaged).
    pub branches_left: f64,
    /// Conventional-predictor misprediction rate.
    pub conventional: f64,
    /// Predicate-predictor misprediction rate.
    pub predicate: f64,
}

/// Sweeps the if-conversion aggressiveness threshold.
pub fn threshold_sweep(cfg: &ExperimentConfig) -> Vec<ThresholdPoint> {
    let suite: Vec<_> = ppsim_compiler::spec2000_suite()
        .into_iter()
        .filter(|s| cfg.selected(s.name))
        .collect();
    let mut out = Vec::new();
    for threshold in [0.02f64, 0.08, 0.15, 0.30, 0.60] {
        let mut branches = 0usize;
        let mut conv_sum = 0.0;
        let mut pred_sum = 0.0;
        for spec in &suite {
            let mut opts = CompileOptions::with_ifconv();
            opts.ifconvert = IfConvertConfig { misp_threshold: threshold, ..opts.ifconvert };
            let compiled = compile(spec, &opts).expect("suite compiles");
            branches += compiled.program.count_insns(|i| i.is_cond_branch());
            let run = |scheme| {
                Simulator::new(&compiled.program, scheme, PredicationModel::Cmov, cfg.core)
                    .run(cfg.commits)
                    .stats
                    .misprediction_rate()
            };
            conv_sum += run(SchemeKind::Conventional);
            pred_sum += run(SchemeKind::Predicate);
        }
        let n = suite.len().max(1) as f64;
        out.push(ThresholdPoint {
            threshold,
            branches_left: branches as f64 / n,
            conventional: conv_sum / n,
            predicate: pred_sum / n,
        });
    }
    out
}

/// Renders the threshold sweep.
pub fn threshold_table(points: &[ThresholdPoint]) -> Table {
    let mut t = Table::new(
        "If-conversion aggressiveness sweep",
        &["threshold", "static cond branches", "conventional misp%", "predicate misp%"],
    );
    for p in points {
        t.row(vec![
            format!("{:.2}", p.threshold),
            format!("{:.1}", p.branches_left),
            pct(p.conventional),
            pct(p.predicate),
        ]);
    }
    t
}

/// Measures the value of §3.3's history repair: the predicate predictor
/// with and without writeback-time bit correction, on if-converted
/// binaries (where correlation through compare history is the main
/// effect).
pub fn repair_ablation(cfg: &ExperimentConfig) -> Sweep {
    let suite: Vec<_> = ppsim_compiler::spec2000_suite()
        .into_iter()
        .filter(|s| cfg.selected(s.name))
        .collect();
    let mut points = Vec::new();
    for (label, repair) in [("with repair", true), ("no repair", false)] {
        let mut conv_sum = 0.0;
        let mut pred_sum = 0.0;
        for spec in &suite {
            let compiled = compile(spec, &CompileOptions::with_ifconv()).expect("suite compiles");
            let mut core = cfg.core;
            core.history_repair = repair;
            let run = |scheme| {
                Simulator::new(&compiled.program, scheme, PredicationModel::Cmov, core)
                    .run(cfg.commits)
                    .stats
                    .misprediction_rate()
            };
            conv_sum += run(SchemeKind::Conventional);
            pred_sum += run(SchemeKind::Predicate);
        }
        let n = suite.len().max(1) as f64;
        points.push(SweepPoint {
            label: label.to_string(),
            conventional: conv_sum / n,
            predicate: pred_sum / n,
        });
    }
    Sweep {
        title: "History-repair ablation (if-converted binaries)".to_string(),
        axis: "repair".to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            commits: 25_000,
            profile_steps: 50_000,
            only: vec!["gzip".into()],
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn size_sweep_produces_monotone_labels() {
        let s = size_sweep(&tiny(), false);
        assert_eq!(s.points.len(), 5);
        for p in &s.points {
            assert!((0.0..=1.0).contains(&p.conventional));
            assert!((0.0..=1.0).contains(&p.predicate));
        }
        let t = s.table().to_string();
        assert!(t.contains("KB"), "{t}");
    }

    #[test]
    fn history_sweep_keeps_budget() {
        let base = PerceptronConfig::paper_148kb();
        for ghr_bits in [8u32, 40] {
            let mut p = PerceptronConfig { ghr_bits, ..base };
            p.rows = base.table_bytes() / p.weights_per_row();
            let kb = p.table_bytes() as f64 / 1024.0;
            assert!((140.0..149.0).contains(&kb), "{ghr_bits} bits → {kb} KB");
        }
    }

    #[test]
    fn repair_ablation_shows_corruption_cost() {
        let cfg = ExperimentConfig {
            commits: 60_000,
            profile_steps: 60_000,
            only: vec!["gcc".into()],
            ..ExperimentConfig::default()
        };
        let s = repair_ablation(&cfg);
        assert_eq!(s.points.len(), 2);
        let with = s.points[0].predicate;
        let without = s.points[1].predicate;
        assert!(
            without > with,
            "permanent corruption must hurt the predicate predictor: {with} vs {without}"
        );
        // The conventional predictor never repairs compare history, so it
        // is unaffected.
        assert!((s.points[0].conventional - s.points[1].conventional).abs() < 1e-9);
    }

    #[test]
    fn threshold_sweep_trades_branches_for_conversion() {
        let points = threshold_sweep(&tiny());
        assert_eq!(points.len(), 5);
        // A more aggressive threshold (lower) leaves at most as many
        // branches as a conservative one.
        assert!(points.first().unwrap().branches_left <= points.last().unwrap().branches_left);
        let t = threshold_table(&points).to_string();
        assert!(t.contains("threshold"), "{t}");
    }
}
