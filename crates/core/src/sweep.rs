//! Sensitivity sweeps: the ablation studies behind the paper's design
//! choices.
//!
//! The paper fixes one operating point (148 KB perceptron, 30+10-bit
//! history, profile-guided if-conversion). These sweeps vary one axis at a
//! time so the *reasons* for that operating point are reproducible:
//!
//! * [`size_sweep`] — accuracy vs predictor storage budget (both the
//!   conventional and the predicate predictor), the classic
//!   accuracy-per-kilobyte curve,
//! * [`history_sweep`] — accuracy vs global-history length,
//! * [`threshold_sweep`] — how the if-conversion aggressiveness threshold
//!   moves branch population and final accuracy.
//!
//! All sweeps execute through the [`Runner`], so points share compiled
//! binaries where possible and land in the on-disk result cache.

use ppsim_pipeline::{PredicationModel, SchemeKind};
use ppsim_predictors::{PerceptronConfig, PredicateConfig};
use ppsim_runner::{Job, JobResult, Json, Runner};

use crate::report::{pct, Table};
use crate::ExperimentConfig;

/// One point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Axis label (e.g. "37 KB" or "16 bits").
    pub label: String,
    /// Average misprediction rate of the conventional predictor.
    pub conventional: f64,
    /// Average misprediction rate of the predicate predictor.
    pub predicate: f64,
}

/// A completed sweep.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Sweep title.
    pub title: String,
    /// Axis name.
    pub axis: String,
    /// The measured points.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            self.title.clone(),
            &[self.axis.as_str(), "conventional misp%", "predicate misp%"],
        );
        for p in &self.points {
            t.row(vec![p.label.clone(), pct(p.conventional), pct(p.predicate)]);
        }
        t
    }

    /// Renders the sweep as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("title", self.title.as_str())
            .field("axis", self.axis.as_str())
            .field(
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj()
                                .field("label", p.label.as_str())
                                .field("conventional", p.conventional)
                                .field("predicate", p.predicate)
                        })
                        .collect(),
                ),
            )
    }
}

/// The selected benchmark names, in suite order.
fn names(cfg: &ExperimentConfig) -> Vec<&'static str> {
    ppsim_compiler::spec2000_suite()
        .iter()
        .filter(|s| cfg.selected(s.name))
        .map(|s| s.name)
        .collect()
}

/// Runs a sweep grid, honouring `cfg.sample`: a sampled configuration
/// folds each job's measured windows into one counter-summed aggregate
/// (`SampledResult::aggregate`), so every sweep sees the same result
/// shape — and the same averaging code — on both paths.
fn run_jobs(runner: &Runner, cfg: &ExperimentConfig, jobs: &[Job]) -> Vec<JobResult> {
    match cfg.sample {
        Some(spec) => runner
            .run_grid_sampled(jobs, spec)
            .into_iter()
            .map(|s| s.aggregate)
            .collect(),
        None => runner.run_grid(jobs),
    }
}

fn base_job(cfg: &ExperimentConfig, bench: &str, ifconv: bool, scheme: SchemeKind) -> Job {
    Job::new(
        bench,
        ifconv,
        scheme,
        PredicationModel::Cmov,
        cfg.commits,
        cfg.profile_steps,
        cfg.core,
    )
}

/// Average misprediction rate over the selected benchmarks for one pair of
/// predictor configurations. Builds one (benchmark × 2 schemes) grid.
fn measure_pair(
    runner: &Runner,
    cfg: &ExperimentConfig,
    perceptron: PerceptronConfig,
    ifconv: bool,
) -> (f64, f64) {
    let names = names(cfg);
    let jobs: Vec<Job> = names
        .iter()
        .flat_map(|&name| {
            [
                Job {
                    perceptron: Some(perceptron),
                    ..base_job(cfg, name, ifconv, SchemeKind::Conventional)
                },
                Job {
                    predicate: Some(PredicateConfig {
                        perceptron,
                        conf_bits: 3,
                    }),
                    ..base_job(cfg, name, ifconv, SchemeKind::Predicate)
                },
            ]
        })
        .collect();
    let results = run_jobs(runner, cfg, &jobs);
    let n = names.len().max(1) as f64;
    let conv_sum: f64 = results
        .iter()
        .step_by(2)
        .map(|r| r.stats.misprediction_rate())
        .sum();
    let pred_sum: f64 = results
        .iter()
        .skip(1)
        .step_by(2)
        .map(|r| r.stats.misprediction_rate())
        .sum();
    (conv_sum / n, pred_sum / n)
}

/// Accuracy vs predictor storage budget (row count scaled; geometry
/// fixed at the paper's 30+10-bit histories).
pub fn size_sweep(runner: &Runner, cfg: &ExperimentConfig, ifconv: bool) -> Sweep {
    let mut points = Vec::new();
    for rows in [462usize, 924, 1848, 3696, 7392] {
        let perceptron = PerceptronConfig {
            rows,
            ..PerceptronConfig::paper_148kb()
        };
        let kb = perceptron.table_bytes() as f64 / 1024.0;
        let (c, p) = measure_pair(runner, cfg, perceptron, ifconv);
        points.push(SweepPoint {
            label: format!("{kb:.0} KB"),
            conventional: c,
            predicate: p,
        });
    }
    Sweep {
        title: format!(
            "Accuracy vs predictor budget ({} binaries)",
            if ifconv { "if-converted" } else { "plain" }
        ),
        axis: "budget".to_string(),
        points,
    }
}

/// Accuracy vs global-history length (rows rebalanced to keep the budget
/// roughly constant).
pub fn history_sweep(runner: &Runner, cfg: &ExperimentConfig, ifconv: bool) -> Sweep {
    let base = PerceptronConfig::paper_148kb();
    let budget = base.table_bytes();
    let mut points = Vec::new();
    for ghr_bits in [8u32, 16, 24, 30, 40] {
        let mut perceptron = PerceptronConfig { ghr_bits, ..base };
        perceptron.rows = budget / perceptron.weights_per_row();
        let (c, p) = measure_pair(runner, cfg, perceptron, ifconv);
        points.push(SweepPoint {
            label: format!("{ghr_bits} bits"),
            conventional: c,
            predicate: p,
        });
    }
    Sweep {
        title: format!(
            "Accuracy vs global-history length at fixed budget ({} binaries)",
            if ifconv { "if-converted" } else { "plain" }
        ),
        axis: "GHR".to_string(),
        points,
    }
}

/// One point of the if-conversion-threshold sweep.
#[derive(Clone, Debug)]
pub struct ThresholdPoint {
    /// The profile-misprediction threshold used.
    pub threshold: f64,
    /// Static conditional branches remaining after conversion (averaged).
    pub branches_left: f64,
    /// Conventional-predictor misprediction rate.
    pub conventional: f64,
    /// Predicate-predictor misprediction rate.
    pub predicate: f64,
}

/// Sweeps the if-conversion aggressiveness threshold. The per-binary
/// static branch counts come back with each job result (they are cached
/// alongside the statistics, so warm-cache sweeps recompile nothing).
pub fn threshold_sweep(runner: &Runner, cfg: &ExperimentConfig) -> Vec<ThresholdPoint> {
    let names = names(cfg);
    let mut out = Vec::new();
    for threshold in [0.02f64, 0.08, 0.15, 0.30, 0.60] {
        let jobs: Vec<Job> = names
            .iter()
            .flat_map(|&name| {
                [SchemeKind::Conventional, SchemeKind::Predicate].map(|scheme| Job {
                    ifconv_threshold: Some(threshold),
                    ..base_job(cfg, name, true, scheme)
                })
            })
            .collect();
        let results = run_jobs(runner, cfg, &jobs);
        let n = names.len().max(1) as f64;
        // Both schemes share a binary; count statics once per benchmark.
        let branches: u64 = results
            .iter()
            .step_by(2)
            .map(|r| r.static_cond_branches)
            .sum();
        let conv_sum: f64 = results
            .iter()
            .step_by(2)
            .map(|r| r.stats.misprediction_rate())
            .sum();
        let pred_sum: f64 = results
            .iter()
            .skip(1)
            .step_by(2)
            .map(|r| r.stats.misprediction_rate())
            .sum();
        out.push(ThresholdPoint {
            threshold,
            branches_left: branches as f64 / n,
            conventional: conv_sum / n,
            predicate: pred_sum / n,
        });
    }
    out
}

/// Renders the threshold sweep.
pub fn threshold_table(points: &[ThresholdPoint]) -> Table {
    let mut t = Table::new(
        "If-conversion aggressiveness sweep",
        &[
            "threshold",
            "static cond branches",
            "conventional misp%",
            "predicate misp%",
        ],
    );
    for p in points {
        t.row(vec![
            format!("{:.2}", p.threshold),
            format!("{:.1}", p.branches_left),
            pct(p.conventional),
            pct(p.predicate),
        ]);
    }
    t
}

/// Renders the threshold sweep as a JSON array.
pub fn threshold_json(points: &[ThresholdPoint]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::obj()
                    .field("threshold", p.threshold)
                    .field("branches_left", p.branches_left)
                    .field("conventional", p.conventional)
                    .field("predicate", p.predicate)
            })
            .collect(),
    )
}

/// Measures the value of §3.3's history repair: the predicate predictor
/// with and without writeback-time bit correction, on if-converted
/// binaries (where correlation through compare history is the main
/// effect).
pub fn repair_ablation(runner: &Runner, cfg: &ExperimentConfig) -> Sweep {
    let names = names(cfg);
    let mut points = Vec::new();
    for (label, repair) in [("with repair", true), ("no repair", false)] {
        let mut core = cfg.core;
        core.history_repair = repair;
        let jobs: Vec<Job> = names
            .iter()
            .flat_map(|&name| {
                [SchemeKind::Conventional, SchemeKind::Predicate].map(|scheme| Job {
                    core,
                    ..base_job(cfg, name, true, scheme)
                })
            })
            .collect();
        let results = run_jobs(runner, cfg, &jobs);
        let n = names.len().max(1) as f64;
        let conv_sum: f64 = results
            .iter()
            .step_by(2)
            .map(|r| r.stats.misprediction_rate())
            .sum();
        let pred_sum: f64 = results
            .iter()
            .skip(1)
            .step_by(2)
            .map(|r| r.stats.misprediction_rate())
            .sum();
        points.push(SweepPoint {
            label: label.to_string(),
            conventional: conv_sum / n,
            predicate: pred_sum / n,
        });
    }
    Sweep {
        title: "History-repair ablation (if-converted binaries)".to_string(),
        axis: "repair".to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            commits: 25_000,
            profile_steps: 50_000,
            only: vec!["gzip".into()],
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn size_sweep_produces_monotone_labels() {
        let runner = Runner::serial_no_cache();
        let s = size_sweep(&runner, &tiny(), false);
        assert_eq!(s.points.len(), 5);
        for p in &s.points {
            assert!((0.0..=1.0).contains(&p.conventional));
            assert!((0.0..=1.0).contains(&p.predicate));
        }
        let t = s.table().to_string();
        assert!(t.contains("KB"), "{t}");
        let j = s.to_json().to_string();
        assert_eq!(
            Json::parse(&j)
                .unwrap()
                .get("points")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            5
        );
    }

    #[test]
    fn sampled_sweep_aggregates_windows() {
        use ppsim_pipeline::SampleSpec;
        let runner = Runner::serial_no_cache();
        let cfg = ExperimentConfig {
            sample: Some(SampleSpec {
                skip: 2_000,
                warmup: 1_000,
                measure: 4_000,
                stride: 10_000,
                count: 2,
            }),
            ..tiny()
        };
        let s = repair_ablation(&runner, &cfg);
        assert_eq!(s.points.len(), 2);
        for p in &s.points {
            assert!((0.0..=1.0).contains(&p.conventional), "{p:?}");
            assert!((0.0..=1.0).contains(&p.predicate), "{p:?}");
        }
        // The sampled estimate tracks the full run loosely even on this
        // tiny budget — same sign of the repair effect.
        let full = repair_ablation(&runner, &tiny());
        assert_eq!(
            s.points[1].predicate > s.points[0].predicate,
            full.points[1].predicate > full.points[0].predicate,
            "sampled repair ablation flips the conclusion: sampled {:?} vs full {:?}",
            s.points,
            full.points
        );
    }

    #[test]
    fn history_sweep_keeps_budget() {
        let base = PerceptronConfig::paper_148kb();
        for ghr_bits in [8u32, 40] {
            let mut p = PerceptronConfig { ghr_bits, ..base };
            p.rows = base.table_bytes() / p.weights_per_row();
            let kb = p.table_bytes() as f64 / 1024.0;
            assert!((140.0..149.0).contains(&kb), "{ghr_bits} bits → {kb} KB");
        }
    }

    #[test]
    fn repair_ablation_shows_corruption_cost() {
        let runner = Runner::serial_no_cache();
        let cfg = ExperimentConfig {
            commits: 60_000,
            profile_steps: 60_000,
            only: vec!["gcc".into()],
            ..ExperimentConfig::default()
        };
        let s = repair_ablation(&runner, &cfg);
        assert_eq!(s.points.len(), 2);
        let with = s.points[0].predicate;
        let without = s.points[1].predicate;
        assert!(
            without > with,
            "permanent corruption must hurt the predicate predictor: {with} vs {without}"
        );
        // The conventional predictor never repairs compare history, so it
        // is unaffected.
        assert!((s.points[0].conventional - s.points[1].conventional).abs() < 1e-9);
    }

    #[test]
    fn threshold_sweep_trades_branches_for_conversion() {
        let runner = Runner::serial_no_cache();
        let points = threshold_sweep(&runner, &tiny());
        assert_eq!(points.len(), 5);
        // A more aggressive threshold (lower) leaves at most as many
        // branches as a conservative one.
        assert!(points.first().unwrap().branches_left <= points.last().unwrap().branches_left);
        let t = threshold_table(&points).to_string();
        assert!(t.contains("threshold"), "{t}");
    }
}
