//! Imported external traces as first-class workloads.
//!
//! A [`TraceWorkload`] wraps a dynamic instruction stream that did *not*
//! come from this repo's compiler — a versioned `.pptrace` file
//! ([`ppsim_isa::pptrace`]) or a CBP-style `{ip, taken}` branch log —
//! and drives it through the exact machinery the synthetic suite uses:
//! jobs are built with [`Job::traced`], executed via
//! [`PlanResults::collect`] (so they share the runner's worker pool,
//! fused lane bundling and on-disk cache), and rendered with the same
//! [`Table`]/[`Json`] surfaces as the paper figures.
//!
//! Because an imported stream has no functional machine behind it, these
//! cells are replay-only; the report centres on the modern cross-workload
//! metrics — MPKI and the top-N hardest-to-predict ("H2P") static
//! branches — rather than the paper's figure axes.
//!
//! For branches-only CBP imports the original branch addresses survive
//! export/import round trips via a `cbp-ips=` line embedded in the
//! `.pptrace` note field, so H2P rows can name real instruction pointers
//! instead of synthesized slots.

use std::sync::Arc;

use ppsim_isa::{pptrace, CbpSummary, TraceBuffer, TraceFileError};
use ppsim_pipeline::SimStats;
use ppsim_runner::{Job, Json, Runner, TraceId};

use crate::experiments::{PlanResults, FIG6A_SCHEMES};
use crate::report::{count, f3, pct, Table};
use crate::ExperimentConfig;

/// Note-line prefix carrying a CBP import's original branch addresses
/// (comma-separated hex, one per static pair, in slot order) through
/// `.pptrace` round trips.
const IPS_KEY: &str = "cbp-ips=";

/// Splits a decoded note into its human text and the embedded IP map,
/// if any. Unparsable `cbp-ips=` lines are kept as plain note text.
fn split_ips_note(note: &str) -> (String, Option<Vec<u64>>) {
    let mut kept: Vec<&str> = Vec::new();
    let mut ips = None;
    for line in note.lines() {
        if let Some(rest) = line.strip_prefix(IPS_KEY) {
            let parsed: Option<Vec<u64>> = rest
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| {
                    let s = s.trim();
                    u64::from_str_radix(s.strip_prefix("0x").unwrap_or(s), 16).ok()
                })
                .collect();
            match parsed {
                Some(v) if !v.is_empty() => ips = Some(v),
                _ => kept.push(line),
            }
        } else {
            kept.push(line);
        }
    }
    (kept.join("\n"), ips)
}

/// An external instruction stream, ready to simulate.
#[derive(Clone, Debug)]
pub struct TraceWorkload {
    /// Display name (benchmark name or import source).
    pub name: String,
    /// Free-form provenance note (the `cbp-ips=` line is split out into
    /// [`TraceWorkload::ips`], never shown here).
    pub note: String,
    /// The decoded stream.
    pub buf: Arc<TraceBuffer>,
    /// Whether this is a degraded branches-only import (see
    /// [`ppsim_isa::pptrace`]'s module docs).
    pub branches_only: bool,
    /// Original branch addresses of a CBP import, indexed by static
    /// pair (slot `2k+1` ↦ `ips[k]`). `None` for full captures.
    pub ips: Option<Vec<u64>>,
}

impl TraceWorkload {
    /// Wraps a trace captured in-process from a compiled benchmark
    /// (the `ppsim trace export` path).
    pub fn from_capture(
        name: impl Into<String>,
        note: impl Into<String>,
        buf: TraceBuffer,
    ) -> Self {
        TraceWorkload {
            name: name.into(),
            note: note.into(),
            buf: Arc::new(buf),
            branches_only: false,
            ips: None,
        }
    }

    /// Decodes a `.pptrace` file (strict: checksum, bounds and replay
    /// invariants all verified before anything simulates).
    pub fn from_pptrace_bytes(bytes: &[u8]) -> Result<Self, TraceFileError> {
        let (buf, meta) = pptrace::decode(bytes)?;
        let (note, ips) = split_ips_note(&meta.note);
        Ok(TraceWorkload {
            name: meta.name,
            note,
            buf: Arc::new(buf),
            branches_only: meta.branches_only,
            ips,
        })
    }

    /// Imports a CBP-style branch log (`<ip> <taken>` lines),
    /// synthesizing the degraded branches-only stream.
    pub fn from_cbp_text(
        name: impl Into<String>,
        text: &str,
    ) -> Result<(Self, CbpSummary), TraceFileError> {
        let (buf, summary) = pptrace::import_cbp(text)?;
        let w = TraceWorkload {
            name: name.into(),
            note: String::new(),
            buf: Arc::new(buf),
            branches_only: true,
            ips: Some(summary.ips.clone()),
        };
        Ok((w, summary))
    }

    /// Serializes to `.pptrace` bytes. The IP map, when present, rides
    /// in the note field so [`TraceWorkload::from_pptrace_bytes`] can
    /// recover it; the note's human text is preserved around it.
    pub fn export_bytes(&self) -> Vec<u8> {
        let note = match &self.ips {
            Some(ips) => {
                let list = ips
                    .iter()
                    .map(|ip| format!("{ip:#x}"))
                    .collect::<Vec<_>>()
                    .join(",");
                if self.note.is_empty() {
                    format!("{IPS_KEY}{list}")
                } else {
                    format!("{}\n{IPS_KEY}{list}", self.note)
                }
            }
            None => self.note.clone(),
        };
        pptrace::encode(&self.buf, &self.name, &note, self.branches_only)
    }

    /// Registers the stream with `runner` so [`Job::traced`] cells can
    /// find it. Content-addressed and idempotent.
    pub fn register(&self, runner: &Runner) -> TraceId {
        runner.register_trace(Arc::clone(&self.buf), self.branches_only)
    }

    /// Dynamic records in the stream.
    pub fn records(&self) -> u64 {
        self.buf.len()
    }

    /// Human label for a static branch site: the original instruction
    /// pointer when the IP map covers it, the code-image slot otherwise.
    pub fn site_label(&self, slot: u32) -> String {
        if self.branches_only && slot % 2 == 1 {
            if let Some(&ip) = self.ips.as_ref().and_then(|v| v.get((slot / 2) as usize)) {
                return format!("{ip:#x}");
            }
        }
        format!("slot {slot}")
    }
}

/// One hardest-to-predict site row of a [`TraceReport`].
#[derive(Clone, Debug)]
pub struct H2pSite {
    /// Code-image slot of the branch.
    pub slot: u32,
    /// Display label ([`TraceWorkload::site_label`]).
    pub site: String,
    /// Committed executions.
    pub execs: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

/// The rendered outcome of simulating an imported trace across the
/// Figure-6a scheme columns.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Workload display name.
    pub name: String,
    /// Whether the stream is a degraded branches-only import.
    pub branches_only: bool,
    /// Dynamic records in the stream.
    pub records: u64,
    /// Committed-instruction budget per cell.
    pub commits: u64,
    /// Scheme labels, defining row order.
    pub schemes: Vec<String>,
    /// Per-scheme statistics, in `schemes` order.
    pub runs: Vec<SimStats>,
    /// Per-scheme top-N H2P sites, in `schemes` order.
    pub h2p: Vec<Vec<H2pSite>>,
    /// The N of the H2P listings.
    pub top_n: usize,
}

impl TraceReport {
    /// The per-scheme summary table: misprediction rate, MPKI, IPC.
    pub fn summary_table(&self) -> Table {
        let mode = if self.branches_only {
            " (branches-only import)"
        } else {
            ""
        };
        let mut t = Table::new(
            format!(
                "Imported trace '{}'{mode} — {} records",
                self.name,
                count(self.records)
            ),
            &["scheme", "misp%", "MPKI", "IPC", "committed"],
        );
        for (label, s) in self.schemes.iter().zip(&self.runs) {
            t.row(vec![
                label.clone(),
                pct(s.misprediction_rate()),
                f3(s.mpki()),
                f3(s.ipc()),
                count(s.committed),
            ]);
        }
        t
    }

    /// The H2P table of scheme row `i`.
    pub fn h2p_table(&self, i: usize) -> Table {
        let mut t = Table::new(
            format!(
                "Top-{} mispredicting branches (H2P) — {} scheme",
                self.top_n, self.schemes[i]
            ),
            &["site", "execs", "mispredicts", "site misp%"],
        );
        for row in &self.h2p[i] {
            t.row(vec![
                row.site.clone(),
                count(row.execs),
                count(row.mispredicts),
                pct(row.mispredicts as f64 / row.execs.max(1) as f64),
            ]);
        }
        t
    }

    /// The full text rendering: summary plus one H2P table per scheme.
    pub fn text(&self) -> String {
        let mut out = self.summary_table().to_string();
        for i in 0..self.schemes.len() {
            out.push_str(&self.h2p_table(i).to_string());
        }
        out
    }

    /// The machine-readable artifact (`ppsim trace import --json`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("workload", self.name.as_str())
            .field("branches_only", self.branches_only)
            .field("records", self.records)
            .field("commits", self.commits)
            .field(
                "rows",
                Json::Arr(
                    self.schemes
                        .iter()
                        .zip(&self.runs)
                        .zip(&self.h2p)
                        .map(|((label, s), sites)| {
                            Json::obj()
                                .field("scheme", label.as_str())
                                .field("misprediction_rate", s.misprediction_rate())
                                .field("mpki", s.mpki())
                                .field("ipc", s.ipc())
                                .field(
                                    "h2p",
                                    Json::Arr(
                                        sites
                                            .iter()
                                            .map(|r| {
                                                Json::obj()
                                                    .field("site", r.site.as_str())
                                                    .field("slot", u64::from(r.slot))
                                                    .field("execs", r.execs)
                                                    .field("mispredicts", r.mispredicts)
                                            })
                                            .collect(),
                                    ),
                                )
                                .field("metrics", s.metrics().to_json())
                        })
                        .collect(),
                ),
            )
    }
}

/// Simulates `workload` across the [`FIG6A_SCHEMES`] columns through the
/// Plan machinery ([`Job::traced`] cells, [`PlanResults::collect`]) and
/// assembles the MPKI/H2P report. Deterministic: byte-identical for any
/// worker count, cache state, and fused or per-cell execution.
pub fn trace_report(
    runner: &Runner,
    cfg: &ExperimentConfig,
    workload: &TraceWorkload,
    top_n: usize,
) -> TraceReport {
    let id = workload.register(runner);
    let jobs: Vec<Job> = FIG6A_SCHEMES
        .iter()
        .map(|&(scheme, predication, _)| {
            Job::traced(
                workload.name.as_str(),
                id,
                scheme,
                predication,
                cfg.commits,
                cfg.core,
            )
        })
        .collect();
    let results = PlanResults::collect(runner, cfg, &jobs);
    let runs: Vec<SimStats> = jobs.iter().map(|j| results.stats_of(j).clone()).collect();
    let h2p = runs
        .iter()
        .map(|s| {
            s.top_mispredictors(top_n)
                .into_iter()
                .map(|(slot, execs, miss)| H2pSite {
                    slot,
                    site: workload.site_label(slot),
                    execs,
                    mispredicts: miss,
                })
                .collect()
        })
        .collect();
    TraceReport {
        name: workload.name.clone(),
        branches_only: workload.branches_only,
        records: workload.records(),
        commits: cfg.commits,
        schemes: FIG6A_SCHEMES
            .iter()
            .map(|(s, _, _)| s.name().to_string())
            .collect(),
        runs,
        h2p,
        top_n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A CBP log with one biased and one alternating branch — enough
    /// dynamic records to exercise every scheme.
    fn cbp_text() -> String {
        let mut out = String::from("# tiny fixture\n");
        for i in 0..400 {
            out.push_str("0x401000 1\n");
            out.push_str(&format!("0x40200c {}\n", i % 2));
        }
        out
    }

    #[test]
    fn cbp_workload_reports_mpki_and_ip_labelled_h2p() {
        let (w, summary) = TraceWorkload::from_cbp_text("fixture", &cbp_text()).unwrap();
        assert_eq!(summary.static_branches, 2);
        assert!(w.branches_only);
        let runner = Runner::serial_no_cache();
        let cfg = ExperimentConfig {
            commits: 1_000_000, // more than the stream holds: runs to exhaustion
            ..ExperimentConfig::default()
        };
        let r = trace_report(&runner, &cfg, &w, 8);
        assert_eq!(r.schemes.len(), FIG6A_SCHEMES.len());
        let text = r.text();
        assert!(text.contains("MPKI"), "{text}");
        assert!(text.contains("H2P"), "{text}");
        // The alternating branch is hard to predict and surfaces under
        // its original instruction pointer, not a synthesized slot.
        assert!(text.contains("0x40200c"), "{text}");
        let j = r.to_json().to_string();
        let parsed = Json::parse(&j).expect("trace artifact parses");
        let rows = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), FIG6A_SCHEMES.len());
        assert!(rows[0].get("mpki").is_some(), "{j}");
        // Determinism: a second pass renders byte-identical output.
        let again = trace_report(&runner, &cfg, &w, 8);
        assert_eq!(text, again.text());
        assert_eq!(j, again.to_json().to_string());
    }

    #[test]
    fn export_bytes_round_trips_the_ip_map_and_note() {
        let (mut w, _) = TraceWorkload::from_cbp_text("fixture", &cbp_text()).unwrap();
        w.note = "imported for testing".into();
        let bytes = w.export_bytes();
        let back = TraceWorkload::from_pptrace_bytes(&bytes).unwrap();
        assert_eq!(back.name, "fixture");
        assert_eq!(back.note, "imported for testing");
        assert!(back.branches_only);
        assert_eq!(back.ips, w.ips);
        assert_eq!(back.site_label(1), w.site_label(1));
        // Content identity survives the round trip: both register to the
        // same id, so cache entries are shared.
        let runner = Runner::serial_no_cache();
        assert_eq!(w.register(&runner), back.register(&runner));
    }

    #[test]
    fn captured_benchmark_trace_reports_like_the_import() {
        use ppsim_compiler::{compile, spec2000_suite, CompileOptions};
        let suite = spec2000_suite();
        let spec = suite.iter().find(|s| s.name == "gzip").unwrap();
        let mut opts = CompileOptions::no_ifconv();
        opts.profile_steps = 20_000;
        let compiled = compile(spec, &opts).unwrap();
        let buf = TraceBuffer::capture(&compiled.program, 8_000).unwrap();
        let w = TraceWorkload::from_capture("gzip", "captured in test", buf);
        let bytes = w.export_bytes();
        let back = TraceWorkload::from_pptrace_bytes(&bytes).unwrap();
        let runner = Runner::serial_no_cache();
        let cfg = ExperimentConfig {
            commits: 8_000,
            ..ExperimentConfig::default()
        };
        // The exported/re-imported stream renders byte-identically to
        // the original capture.
        let a = trace_report(&runner, &cfg, &w, 5);
        let b = trace_report(&runner, &cfg, &back, 5);
        assert_eq!(a.text(), b.text());
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert!(a.runs.iter().all(|s| s.committed > 0));
        // Full captures label sites by slot (no IP map).
        assert!(a.text().contains("slot "), "{}", a.text());
    }

    #[test]
    fn ips_note_split_is_lossless_and_tolerant() {
        let (note, ips) = split_ips_note("hello\ncbp-ips=0x10,0x20\nworld");
        assert_eq!(note, "hello\nworld");
        assert_eq!(ips, Some(vec![0x10, 0x20]));
        // Unparsable map lines survive as plain text.
        let (note, ips) = split_ips_note("cbp-ips=not-hex");
        assert_eq!(note, "cbp-ips=not-hex");
        assert_eq!(ips, None);
        let (note, ips) = split_ips_note("");
        assert_eq!(note, "");
        assert_eq!(ips, None);
    }
}
