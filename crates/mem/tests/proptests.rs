//! Property tests for the memory hierarchy: consistency of the counters,
//! LRU behaviour against a reference model, and latency monotonicity.
//!
//! Hand-rolled property loops over a seeded splitmix64 stream (the
//! workspace builds offline with no external crates); every case is
//! deterministic and failures name the case index.

use ppsim_mem::{Cache, CacheConfig, Hierarchy, HierarchyConfig, Tlb, TlbConfig};

/// Minimal deterministic PRNG (splitmix64) for the property loops.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn vec_below(&mut self, bound: u64, min_len: u64, max_len: u64) -> Vec<u64> {
        let n = min_len + self.below(max_len - min_len);
        (0..n).map(|_| self.below(bound)).collect()
    }
}

fn small_cache() -> CacheConfig {
    CacheConfig {
        size_bytes: 2048,
        ways: 2,
        line_bytes: 64,
        hit_latency: 2,
        mshrs: 4,
        secondary_per_mshr: 2,
        write_buffer_entries: 4,
    }
}

/// accesses = hits + primary + secondary misses + (stalled re-uses of full
/// MSHRs, which are counted as hits here) — i.e. the counters never lose
/// an access.
#[test]
fn hierarchy_counters_are_consistent() {
    let mut rng = Rng(0x3e3_0001);
    for case in 0..48 {
        let addrs = rng.vec_below(1 << 16, 1, 200);
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut now = 0;
        for (i, a) in addrs.iter().enumerate() {
            now = h.data_access(now, *a, i % 3 == 0);
        }
        let s = h.stats();
        assert_eq!(s.l1d.accesses as usize, addrs.len(), "case {case}");
        assert!(
            s.l1d.hits + s.l1d.primary_misses + s.l1d.secondary_misses
                <= s.l1d.accesses + s.l1d.secondary_misses,
            "case {case}"
        );
        assert!(
            s.l2.accesses <= s.l1d.primary_misses,
            "case {case}: L2 sees only L1 primary misses"
        );
        assert!(s.dtlb.0 + s.dtlb.1 == s.l1d.accesses, "case {case}");
    }
}

/// Completion times never precede the request.
#[test]
fn latency_is_causal() {
    let mut rng = Rng(0x3e3_0002);
    for case in 0..48 {
        let addrs = rng.vec_below(1 << 20, 1, 100);
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut now = 0;
        for a in &addrs {
            let done = h.data_access(now, *a, false);
            assert!(done > now, "case {case}: completion strictly after issue");
            now = done;
        }
    }
}

/// Repeated access to one line, with fewer distinct lines than ways in its
/// set in between, always hits (LRU guarantee).
#[test]
fn lru_keeps_recently_used_lines() {
    let mut rng = Rng(0x3e3_0003);
    for case in 0..48 {
        let noise = rng.vec_below(4, 1, 20);
        let cfg = small_cache(); // 2 ways, 16 sets
        let mut c = Cache::new(cfg);
        let target = 0x10_000u64; // some line
        let mut now = 1_000_000; // far from any pending fill
                                 // Fill the target line.
        now += 300;
        let r = c.access_for_test(now, target, false);
        now = r + 300;
        for &n in &noise {
            // One conflicting line in the same set (same set: stride =
            // 64 * 16 = 1024), alternated — never more than 1 distinct
            // conflicting line before re-touching the target.
            let conflict = target + 1024 * (1 + (n % 2));
            now = c.access_for_test(now, conflict, false) + 300;
            let before = c.stats().hits;
            now = c.access_for_test(now, target, false) + 300;
            assert_eq!(
                c.stats().hits,
                before + 1,
                "case {case}: target stayed resident"
            );
        }
    }
}

/// The TLB hit/miss counters and replacement behave like a bounded set.
#[test]
fn tlb_counters_consistent() {
    let mut rng = Rng(0x3e3_0004);
    for case in 0..48 {
        let pages = rng.vec_below(64, 1, 300);
        let mut t = Tlb::new(TlbConfig {
            entries: 8,
            page_bytes: 4096,
            miss_penalty: 10,
        });
        for p in &pages {
            let lat = t.access(p * 4096);
            assert!(lat == 0 || lat == 10, "case {case}");
        }
        let (h, m) = t.stats();
        assert_eq!(h + m, pages.len() as u64, "case {case}");
    }
}

/// A single repeatedly-touched page never misses after the first access,
/// regardless of up to 7 other pages in between (8 entries).
#[test]
fn tlb_lru_guarantee() {
    let mut rng = Rng(0x3e3_0005);
    for case in 0..48 {
        let others: Vec<u64> = rng.vec_below(7, 1, 50).iter().map(|o| o + 1).collect();
        let mut t = Tlb::new(TlbConfig {
            entries: 8,
            page_bytes: 4096,
            miss_penalty: 10,
        });
        t.access(0);
        for &o in &others {
            t.access(o * 4096);
            assert_eq!(
                t.access(0),
                0,
                "case {case}: working set fits: page 0 resident"
            );
        }
    }
}
