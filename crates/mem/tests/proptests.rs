//! Property tests for the memory hierarchy: consistency of the counters,
//! LRU behaviour against a reference model, and latency monotonicity.

use proptest::prelude::*;

use ppsim_mem::{Cache, CacheConfig, Hierarchy, HierarchyConfig, Tlb, TlbConfig};

fn small_cache() -> CacheConfig {
    CacheConfig {
        size_bytes: 2048,
        ways: 2,
        line_bytes: 64,
        hit_latency: 2,
        mshrs: 4,
        secondary_per_mshr: 2,
        write_buffer_entries: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// accesses = hits + primary + secondary misses + (stalled re-uses of
    /// full MSHRs, which are counted as hits here) — i.e. the counters
    /// never lose an access.
    #[test]
    fn hierarchy_counters_are_consistent(addrs in prop::collection::vec(0u64..1 << 16, 1..200)) {
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut now = 0;
        for (i, a) in addrs.iter().enumerate() {
            now = h.data_access(now, *a, i % 3 == 0);
        }
        let s = h.stats();
        prop_assert_eq!(s.l1d.accesses as usize, addrs.len());
        prop_assert!(s.l1d.hits + s.l1d.primary_misses + s.l1d.secondary_misses <= s.l1d.accesses + s.l1d.secondary_misses);
        prop_assert!(s.l2.accesses <= s.l1d.primary_misses, "L2 sees only L1 primary misses");
        prop_assert!(s.dtlb.0 + s.dtlb.1 == s.l1d.accesses);
    }

    /// Completion times never precede the request.
    #[test]
    fn latency_is_causal(addrs in prop::collection::vec(0u64..1 << 20, 1..100)) {
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut now = 0;
        for a in &addrs {
            let done = h.data_access(now, *a, false);
            prop_assert!(done > now, "completion strictly after issue");
            now = done;
        }
    }

    /// Repeated access to one line, with fewer distinct lines than ways in
    /// its set in between, always hits (LRU guarantee).
    #[test]
    fn lru_keeps_recently_used_lines(noise in prop::collection::vec(0u64..4, 1..20)) {
        let cfg = small_cache(); // 2 ways, 16 sets
        let mut c = Cache::new(cfg);
        let target = 0x10_000u64; // some line
        let mut now = 1_000_000; // far from any pending fill
        // Fill the target line.
        now += 300;
        let r = c.access_for_test(now, target, false);
        now = r + 300;
        for &n in &noise {
            // One conflicting line in the same set (same set: stride =
            // 64 * 16 = 1024), alternated — never more than 1 distinct
            // conflicting line before re-touching the target.
            let conflict = target + 1024 * (1 + (n % 2));
            now = c.access_for_test(now, conflict, false) + 300;
            let before = c.stats().hits;
            now = c.access_for_test(now, target, false) + 300;
            prop_assert_eq!(c.stats().hits, before + 1, "target stayed resident");
        }
    }

    /// The TLB hit/miss counters and replacement behave like a bounded set.
    #[test]
    fn tlb_counters_consistent(pages in prop::collection::vec(0u64..64, 1..300)) {
        let mut t = Tlb::new(TlbConfig { entries: 8, page_bytes: 4096, miss_penalty: 10 });
        for p in &pages {
            let lat = t.access(p * 4096);
            prop_assert!(lat == 0 || lat == 10);
        }
        let (h, m) = t.stats();
        prop_assert_eq!(h + m, pages.len() as u64);
    }

    /// A single repeatedly-touched page never misses after the first
    /// access, regardless of up to 7 other pages in between (8 entries).
    #[test]
    fn tlb_lru_guarantee(others in prop::collection::vec(1u64..8, 1..50)) {
        let mut t = Tlb::new(TlbConfig { entries: 8, page_bytes: 4096, miss_penalty: 10 });
        t.access(0);
        for &o in &others {
            t.access(o * 4096);
            prop_assert_eq!(t.access(0), 0, "working set fits: page 0 resident");
        }
    }
}
