//! Translation lookaside buffer timing model.

/// TLB geometry (fully associative, true LRU).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes (a power of two).
    pub page_bytes: usize,
    /// Added latency on a miss.
    pub miss_penalty: u64,
}

impl TlbConfig {
    /// Table 1: 512 entries, 10-cycle miss penalty (4 KB pages, matching
    /// the functional memory's page granularity).
    pub fn paper_512() -> Self {
        TlbConfig {
            entries: 512,
            page_bytes: 4096,
            miss_penalty: 10,
        }
    }
}

/// A fully associative TLB with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<(u64, u64)>, // (page number, lru tick)
    tick: u64,
    hits: u64,
    misses: u64,
    page_shift: u32,
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or `entries` is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(
            cfg.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(cfg.entries > 0, "TLB must have entries");
        Tlb {
            entries: Vec::with_capacity(cfg.entries),
            tick: 0,
            hits: 0,
            misses: 0,
            page_shift: cfg.page_bytes.trailing_zeros(),
            cfg,
        }
    }

    /// Looks up `addr`, returning the added latency (0 on a hit, the miss
    /// penalty on a miss) and updating replacement state.
    pub fn access(&mut self, addr: u64) -> u64 {
        self.tick += 1;
        let page = addr >> self.page_shift;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.tick;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() >= self.cfg.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.tick));
        self.cfg.miss_penalty
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TlbConfig {
        TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_penalty: 10,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(tiny());
        assert_eq!(t.access(0x1000), 10);
        assert_eq!(t.access(0x1ff8), 0, "same page hits");
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn lru_replacement() {
        let mut t = Tlb::new(tiny());
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // touch page 0
        t.access(0x2000); // evicts page 1
        assert_eq!(t.access(0x0000), 0, "page 0 retained");
        assert_eq!(t.access(0x1000), 10, "page 1 was evicted");
    }

    #[test]
    fn paper_config() {
        let cfg = TlbConfig::paper_512();
        assert_eq!(cfg.entries, 512);
        assert_eq!(cfg.miss_penalty, 10);
    }
}
