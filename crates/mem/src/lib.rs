//! # ppsim-mem — the memory hierarchy of Table 1
//!
//! Timing-only models (the data itself lives in the functional emulator's
//! memory): set-associative caches with true-LRU replacement, non-blocking
//! miss handling through MSHRs with primary/secondary miss merging, write
//! buffers, TLBs, and a fixed-latency main memory, composed into the
//! paper's three-level [`Hierarchy`]:
//!
//! | structure | geometry | latency |
//! |-----------|----------|---------|
//! | L1I | 32 KB, 4-way, 64 B lines | 1 cycle |
//! | L1D | 64 KB, 4-way, 64 B lines, 12 primary + 4 secondary misses, 16 write buffers | 2 cycles |
//! | L2 (unified) | 1 MB, 16-way, 128 B lines, 12 primary misses, 8 write buffers | 8 cycles |
//! | D/I TLB | 512 entries each | 10-cycle miss penalty |
//! | memory | — | 120 cycles |
//!
//! # Example
//!
//! ```
//! use ppsim_mem::{Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::paper());
//! let done = h.data_access(0, 0x10000, false); // cold load
//! assert!(done > 120, "cold miss goes to memory");
//! let done2 = h.data_access(done, 0x10008, false); // same line: L1 hit
//! assert_eq!(done2, done + 2);
//! ```

mod cache;
mod hierarchy;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyStats};
pub use tlb::{Tlb, TlbConfig};
