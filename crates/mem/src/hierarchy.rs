//! The composed L1I/L1D/L2/memory hierarchy with TLBs (Table 1).

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::tlb::{Tlb, TlbConfig};
use ppsim_obs::MetricSet;

/// Full-hierarchy configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Main memory latency in cycles.
    pub memory_latency: u64,
}

impl HierarchyConfig {
    /// The paper's Table 1 memory system.
    pub fn paper() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::paper_l1i(),
            l1d: CacheConfig::paper_l1d(),
            l2: CacheConfig::paper_l2(),
            itlb: TlbConfig::paper_512(),
            dtlb: TlbConfig::paper_512(),
            memory_latency: 120,
        }
    }
}

/// Aggregated statistics of every structure in the hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Instruction TLB (hits, misses).
    pub itlb: (u64, u64),
    /// Data TLB (hits, misses).
    pub dtlb: (u64, u64),
}

impl HierarchyStats {
    /// Counter increments since `base` (an earlier snapshot of the same
    /// hierarchy). The warmup phase of a sampled run trains every cache
    /// and TLB without reporting: the measured window's statistics are
    /// the delta over the snapshot taken when measurement began.
    pub fn delta_since(&self, base: &HierarchyStats) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.delta_since(&base.l1i),
            l1d: self.l1d.delta_since(&base.l1d),
            l2: self.l2.delta_since(&base.l2),
            itlb: (self.itlb.0 - base.itlb.0, self.itlb.1 - base.itlb.1),
            dtlb: (self.dtlb.0 - base.dtlb.0, self.dtlb.1 - base.dtlb.1),
        }
    }

    /// Adds `other`'s counters into `self` (aggregating sampled measured
    /// windows; the inverse direction of [`HierarchyStats::delta_since`]).
    pub fn accumulate(&mut self, other: &HierarchyStats) {
        self.l1i.accumulate(&other.l1i);
        self.l1d.accumulate(&other.l1d);
        self.l2.accumulate(&other.l2);
        self.itlb = (self.itlb.0 + other.itlb.0, self.itlb.1 + other.itlb.1);
        self.dtlb = (self.dtlb.0 + other.dtlb.0, self.dtlb.1 + other.dtlb.1);
    }

    /// Exports every counter onto a metric registry under stable names
    /// (`l1i.accesses`, `l2.miss_ratio`, `dtlb.misses`, ...). Intended to
    /// be absorbed into a simulation-wide [`MetricSet`] under a `mem.`
    /// prefix.
    pub fn metrics(&self) -> MetricSet {
        let mut m = MetricSet::new();
        for (level, s) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            m.counter(&format!("{level}.accesses"), s.accesses);
            m.counter(&format!("{level}.hits"), s.hits);
            m.counter(&format!("{level}.primary_misses"), s.primary_misses);
            m.counter(&format!("{level}.secondary_misses"), s.secondary_misses);
            m.counter(&format!("{level}.mshr_stall_cycles"), s.mshr_stall_cycles);
            m.counter(&format!("{level}.writebacks"), s.writebacks);
            m.counter(
                &format!("{level}.write_buffer_stall_cycles"),
                s.write_buffer_stall_cycles,
            );
            // Saturate so synthetic stats (tests, hand-edited entries)
            // with hits > accesses can't panic the exporter.
            m.ratio(
                &format!("{level}.miss_ratio"),
                s.accesses.saturating_sub(s.hits),
                s.accesses,
            );
        }
        for (tlb, (hits, misses)) in [("itlb", self.itlb), ("dtlb", self.dtlb)] {
            m.counter(&format!("{tlb}.hits"), hits);
            m.counter(&format!("{tlb}.misses"), misses);
            m.ratio(&format!("{tlb}.miss_ratio"), misses, hits + misses);
        }
        m
    }
}

/// The three-level memory hierarchy timing model.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    memory_latency: u64,
}

impl Hierarchy {
    /// Builds an empty (cold) hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            memory_latency: cfg.memory_latency,
        }
    }

    /// Times a data access (load or store) starting at cycle `now`;
    /// returns the completion cycle.
    pub fn data_access(&mut self, now: u64, addr: u64, is_write: bool) -> u64 {
        let start = now + self.dtlb.access(addr);
        let l2 = &mut self.l2;
        let mem = self.memory_latency;
        let r = self.l1d.access(start, addr, is_write, |issue| {
            let r2 = l2.access(issue, addr, false, |issue2| issue2 + mem);
            r2.done_at
        });
        r.done_at
    }

    /// Times an instruction fetch of the line containing `pc`; returns the
    /// completion cycle.
    pub fn inst_fetch(&mut self, now: u64, pc: u64) -> u64 {
        let start = now + self.itlb.access(pc);
        let l2 = &mut self.l2;
        let mem = self.memory_latency;
        let r = self.l1i.access(start, pc, false, |issue| {
            let r2 = l2.access(issue, pc, false, |issue2| issue2 + mem);
            r2.done_at
        });
        r.done_at
    }

    /// Whether an instruction fetch of `pc` would hit L1I (no state
    /// change).
    pub fn inst_would_hit(&self, pc: u64) -> bool {
        self.l1i.probe(pc)
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            itlb: self.itlb.stats(),
            dtlb: self.dtlb.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_load_goes_through_all_levels() {
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let done = h.data_access(0, 0x40000, false);
        // TLB miss 10 + L1D 2 + L2 8 + memory 120, give or take issue
        // alignment.
        assert!(
            done >= 130,
            "cold access must include memory latency, got {done}"
        );
        let s = h.stats();
        assert_eq!(s.l1d.primary_misses, 1);
        assert_eq!(s.l2.primary_misses, 1);
        assert_eq!(s.dtlb.1, 1);
    }

    #[test]
    fn l1_hit_after_fill_is_two_cycles() {
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let t1 = h.data_access(0, 0x40000, false);
        let t2 = h.data_access(t1, 0x40008, false);
        assert_eq!(t2, t1 + 2);
    }

    #[test]
    fn l2_hit_after_l1_eviction_distance() {
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        // Fill a line, then thrash its L1 set (4 ways, 256 sets, 64B lines
        // → same set every 16 KB) while keeping it in the 1 MB L2.
        let base = 0x40000u64;
        let mut now = h.data_access(0, base, false);
        for i in 1..=4u64 {
            now = h.data_access(now, base + i * 16 * 1024, false);
        }
        let s_before = h.stats();
        let t = h.data_access(now, base, false);
        let s_after = h.stats();
        assert_eq!(
            s_after.l1d.primary_misses,
            s_before.l1d.primary_misses + 1,
            "line was evicted from L1"
        );
        assert_eq!(s_after.l2.hits, s_before.l2.hits + 1, "but still in L2");
        assert!(t - now < 40, "L2 hit latency, not memory: {}", t - now);
    }

    #[test]
    fn instruction_fetches_use_itlb_and_l1i() {
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let t1 = h.inst_fetch(0, 0x4000_0000);
        assert!(t1 >= 120);
        let t2 = h.inst_fetch(t1, 0x4000_0010);
        assert_eq!(t2, t1 + 1, "same line, L1I 1-cycle hit");
        assert!(h.inst_would_hit(0x4000_0020));
        let s = h.stats();
        assert_eq!(s.itlb.1, 1);
        assert_eq!(s.l1i.hits, 1);
    }

    #[test]
    fn delta_since_isolates_the_measured_window() {
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let t = h.data_access(0, 0x40000, false); // warmup: cold miss
        let base = h.stats();
        let _ = h.data_access(t, 0x40000, false); // measured: warm hit
        let d = h.stats().delta_since(&base);
        assert_eq!(d.l1d.accesses, 1);
        assert_eq!(d.l1d.hits, 1, "warmup trained the cache");
        assert_eq!(d.l1d.primary_misses, 0, "the cold miss is warmup's");
        assert_eq!(d.dtlb, (1, 0));
        // A zero base is the identity.
        assert_eq!(h.stats().delta_since(&HierarchyStats::default()), h.stats());
    }

    #[test]
    fn stores_count_in_l1d() {
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let t = h.data_access(0, 0x40000, true);
        let t2 = h.data_access(t, 0x40000, true);
        let _ = t2;
        let s = h.stats();
        assert_eq!(s.l1d.accesses, 2);
        assert_eq!(s.l1d.hits, 1);
    }
}
