//! A set-associative, non-blocking cache timing model.
//!
//! The cache tracks tags, true-LRU state, dirty bits, a bounded set of
//! MSHRs (miss status holding registers) that merge secondary misses into
//! in-flight primary misses, and a write buffer that absorbs dirty
//! evictions. It models *time*, not data: every access returns the cycle at
//! which the requested word is available.

/// Geometry and policy of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (a power of two).
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Primary-miss MSHRs (in-flight distinct lines).
    pub mshrs: usize,
    /// Secondary misses that can merge into one MSHR.
    pub secondary_per_mshr: usize,
    /// Write-buffer entries absorbing dirty evictions.
    pub write_buffer_entries: usize,
}

impl CacheConfig {
    /// Table 1 L1 data cache: 64 KB, 4-way, 64 B, 2-cycle, 12 primary +
    /// 4 secondary misses, 16 write buffers.
    pub fn paper_l1d() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
            hit_latency: 2,
            mshrs: 12,
            secondary_per_mshr: 4,
            write_buffer_entries: 16,
        }
    }

    /// Table 1 L1 instruction cache: 32 KB, 4-way, 64 B, 1-cycle.
    pub fn paper_l1i() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            line_bytes: 64,
            hit_latency: 1,
            mshrs: 4,
            secondary_per_mshr: 4,
            write_buffer_entries: 0,
        }
    }

    /// Table 1 unified L2: 1 MB, 16-way, 128 B, 8-cycle, 12 primary
    /// misses, 8 write buffers.
    pub fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 1024 * 1024,
            ways: 16,
            line_bytes: 128,
            hit_latency: 8,
            mshrs: 12,
            secondary_per_mshr: 4,
            write_buffer_entries: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Event counters for one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Primary misses (new line requests).
    pub primary_misses: u64,
    /// Secondary misses (merged into an in-flight MSHR).
    pub secondary_misses: u64,
    /// Cycles lost waiting for a free MSHR.
    pub mshr_stall_cycles: u64,
    /// Dirty lines pushed to the write buffer.
    pub writebacks: u64,
    /// Cycles lost waiting for a free write-buffer entry.
    pub write_buffer_stall_cycles: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.hits as f64 / self.accesses as f64
        }
    }

    /// Counter increments since `base` (an earlier snapshot of the same
    /// monotonic counters). Sampled simulation uses this to report only
    /// the measured window: warmup accesses train the cache but are
    /// subtracted out here.
    pub fn delta_since(&self, base: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses - base.accesses,
            hits: self.hits - base.hits,
            primary_misses: self.primary_misses - base.primary_misses,
            secondary_misses: self.secondary_misses - base.secondary_misses,
            mshr_stall_cycles: self.mshr_stall_cycles - base.mshr_stall_cycles,
            writebacks: self.writebacks - base.writebacks,
            write_buffer_stall_cycles: self.write_buffer_stall_cycles
                - base.write_buffer_stall_cycles,
        }
    }

    /// Adds `other`'s counters into `self` (aggregating the measured
    /// windows of a sampled run into one suite-level estimate).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.primary_misses += other.primary_misses;
        self.secondary_misses += other.secondary_misses;
        self.mshr_stall_cycles += other.mshr_stall_cycles;
        self.writebacks += other.writebacks;
        self.write_buffer_stall_cycles += other.write_buffer_stall_cycles;
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

#[derive(Clone, Copy, Debug)]
struct Mshr {
    line_addr: u64,
    ready_at: u64,
    secondaries: usize,
}

/// Result of a cache lookup, consumed by [`crate::Hierarchy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Lookup {
    /// Cycle at which the data is available at this level.
    pub done_at: u64,
    /// Whether it hit (including hitting an in-flight MSHR).
    pub hit: bool,
    /// Whether the next level must be consulted (primary miss).
    pub fetch_from_next: bool,
    /// Cycle at which the next-level request is issued (after any stalls).
    pub issue_next_at: u64,
}

/// One cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    mshrs: Vec<Mshr>,
    write_buffer: Vec<u64>, // drain-completion cycles
    stats: CacheStats,
    tick: u64,
    set_mask: u64,
    line_shift: u32,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size,
    /// zero ways, or capacity not divisible by `ways × line_bytes`).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways > 0, "cache must have ways");
        assert_eq!(
            cfg.size_bytes % (cfg.ways * cfg.line_bytes),
            0,
            "capacity must divide evenly into sets"
        );
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0
                };
                sets * cfg.ways
            ],
            mshrs: Vec::with_capacity(cfg.mshrs),
            write_buffer: Vec::with_capacity(cfg.write_buffer_entries),
            stats: CacheStats::default(),
            tick: 0,
            set_mask: sets as u64 - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Event counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr & self.set_mask) as usize
    }

    fn set_slice_mut(&mut self, set: usize) -> &mut [Line] {
        let w = self.cfg.ways;
        &mut self.lines[set * w..(set + 1) * w]
    }

    /// Test/benchmark helper: performs an access against a fixed 100-cycle
    /// next level and returns the completion cycle.
    pub fn access_for_test(&mut self, now: u64, addr: u64, is_write: bool) -> u64 {
        self.access(now, addr, is_write, |issue| issue + 100)
            .done_at
    }

    /// Probes whether `addr` currently hits (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        let set = self.set_of(la);
        let w = self.cfg.ways;
        self.lines[set * w..(set + 1) * w]
            .iter()
            .any(|l| l.valid && l.tag == la)
    }

    /// Performs a timed access at cycle `now`.
    ///
    /// `fill_done_at` is a closure resolving when the next level can
    /// deliver the line, given the cycle at which the request leaves this
    /// level. It is only invoked on a primary miss.
    pub(crate) fn access(
        &mut self,
        now: u64,
        addr: u64,
        is_write: bool,
        fill_done_at: impl FnOnce(u64) -> u64,
    ) -> Lookup {
        self.tick += 1;
        self.stats.accesses += 1;
        let la = self.line_addr(addr);
        let set = self.set_of(la);
        let tick = self.tick;

        // Retire completed MSHRs and drained write-buffer entries.
        self.mshrs.retain(|m| m.ready_at > now);
        self.write_buffer.retain(|&d| d > now);

        // In-flight MSHR for the same line? → secondary miss (the tags are
        // installed at allocation time, but the data arrives with the
        // fill).
        if let Some(m) = self.mshrs.iter_mut().find(|m| m.line_addr == la) {
            if m.secondaries < self.cfg.secondary_per_mshr {
                m.secondaries += 1;
                self.stats.secondary_misses += 1;
                let done = m.ready_at;
                return Lookup {
                    done_at: done,
                    hit: true,
                    fetch_from_next: false,
                    issue_next_at: now,
                };
            }
            // Secondary slots exhausted: wait for the fill, then re-issue
            // as a (free) hit.
            self.stats.mshr_stall_cycles += m.ready_at.saturating_sub(now);
            let done = m.ready_at + self.cfg.hit_latency;
            return Lookup {
                done_at: done,
                hit: true,
                fetch_from_next: false,
                issue_next_at: now,
            };
        }

        // Tag match with no in-flight fill → plain hit.
        if let Some(line) = self
            .set_slice_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == la)
        {
            line.lru = tick;
            if is_write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return Lookup {
                done_at: now + self.cfg.hit_latency,
                hit: true,
                fetch_from_next: false,
                issue_next_at: now,
            };
        }

        // Primary miss: need an MSHR.
        self.stats.primary_misses += 1;
        let mut issue_at = now;
        if self.mshrs.len() >= self.cfg.mshrs {
            // Stall until the earliest MSHR frees.
            let earliest = self.mshrs.iter().map(|m| m.ready_at).min().unwrap_or(now);
            self.stats.mshr_stall_cycles += earliest.saturating_sub(now);
            issue_at = issue_at.max(earliest);
            let keep_after = issue_at;
            self.mshrs.retain(|m| m.ready_at > keep_after);
        }

        // Victim selection and writeback.
        let wb_entries = self.cfg.write_buffer_entries;
        let (victim_dirty, victim_valid) = {
            let slice = self.set_slice_mut(set);
            let victim = slice
                .iter_mut()
                .min_by_key(|l| if l.valid { l.lru } else { 0 })
                .expect("ways > 0");
            let vd = victim.valid && victim.dirty;
            let vv = victim.valid;
            victim.tag = la;
            victim.valid = true;
            victim.dirty = is_write;
            victim.lru = tick;
            (vd, vv)
        };
        let _ = victim_valid;
        if victim_dirty {
            self.stats.writebacks += 1;
            if wb_entries == 0 {
                // No write buffer: the writeback serializes with the fill.
                issue_at += self.cfg.hit_latency;
            } else if self.write_buffer.len() >= wb_entries {
                let earliest = self.write_buffer.iter().copied().min().unwrap_or(issue_at);
                self.stats.write_buffer_stall_cycles += earliest.saturating_sub(issue_at);
                issue_at = issue_at.max(earliest);
                let keep_after = issue_at;
                self.write_buffer.retain(|&d| d > keep_after);
                self.write_buffer.push(issue_at + 40);
            } else {
                self.write_buffer.push(issue_at + 40);
            }
        }

        let fill_at = fill_done_at(issue_at + self.cfg.hit_latency);
        self.mshrs.push(Mshr {
            line_addr: la,
            ready_at: fill_at,
            secondaries: 0,
        });
        Lookup {
            done_at: fill_at,
            hit: false,
            fetch_from_next: true,
            issue_next_at: issue_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 2,
            mshrs: 2,
            secondary_per_mshr: 1,
            write_buffer_entries: 2,
        }
    }

    fn mem100(issue: u64) -> u64 {
        issue + 100
    }

    #[test]
    fn geometry() {
        let c = Cache::new(CacheConfig::paper_l1d());
        assert_eq!(c.config().sets(), 256);
        let c = Cache::new(CacheConfig::paper_l2());
        assert_eq!(c.config().sets(), 512);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(small());
        let r = c.access(0, 0x1000, false, mem100);
        assert!(!r.hit);
        assert!(r.done_at >= 100);
        let r2 = c.access(r.done_at, 0x1008, false, mem100);
        assert!(r2.hit, "same line hits after fill");
        assert_eq!(r2.done_at, r.done_at + 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().primary_misses, 1);
    }

    #[test]
    fn secondary_miss_merges() {
        let mut c = Cache::new(small());
        let r1 = c.access(0, 0x1000, false, mem100);
        let r2 = c.access(1, 0x1010, false, mem100);
        assert!(r2.hit, "merged into the in-flight MSHR");
        assert_eq!(r2.done_at, r1.done_at, "completes with the fill");
        assert_eq!(c.stats().secondary_misses, 1);
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut c = Cache::new(small());
        c.access(0, 0x1000, false, mem100);
        c.access(0, 0x2000, false, mem100);
        // Third distinct line at cycle 0: both MSHRs busy until ~102.
        let r = c.access(0, 0x3000, false, mem100);
        assert!(!r.hit);
        assert!(r.issue_next_at > 0, "had to wait for a free MSHR");
        assert!(c.stats().mshr_stall_cycles > 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = small(); // 2 ways, 8 sets
        let mut c = Cache::new(cfg);
        let set_stride = 64 * 8; // same set every 512 bytes
        let a = 0x0u64;
        let b = a + set_stride;
        let d = a + 2 * set_stride;
        let mut now = 0;
        for &addr in &[a, b] {
            let r = c.access(now, addr, false, mem100);
            now = r.done_at;
        }
        // Touch A so B becomes LRU.
        now = c.access(now, a, false, mem100).done_at;
        // D evicts B.
        now = c.access(now, d, false, mem100).done_at;
        assert!(c.probe(a), "A retained");
        assert!(!c.probe(b), "B evicted (LRU)");
        assert!(c.probe(d));
        let _ = now;
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let cfg = small();
        let mut c = Cache::new(cfg);
        let set_stride = 64 * 8;
        let mut now = 0;
        now = c.access(now, 0, true, mem100).done_at; // dirty A
        now = c.access(now, set_stride, false, mem100).done_at; // B
        now = c.access(now, 2 * set_stride, false, mem100).done_at; // evicts A
        let _ = now;
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty_without_miss() {
        let mut c = Cache::new(small());
        let mut now = c.access(0, 0x1000, false, mem100).done_at;
        now = c.access(now, 0x1000, true, mem100).done_at;
        let _ = now;
        assert_eq!(c.stats().primary_misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut c = Cache::new(small());
        assert!(!c.probe(0x1000));
        c.access(0, 0x1000, false, mem100);
        let before = *c.stats();
        let _ = c.probe(0x1000);
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn miss_ratio_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        s.accesses = 10;
        s.hits = 9;
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
    }
}
