//! Property tests for the predictors: exact speculative-state recovery and
//! structural invariants under arbitrary operation sequences.
//!
//! Hand-rolled property loops over a seeded splitmix64 stream (the
//! workspace builds offline with no external crates); every case is
//! deterministic and failures name the case index.

use ppsim_predictors::{
    BranchPredictor, Gshare, GshareConfig, PepPa, PepPaConfig, PerceptronConfig,
    PerceptronPredictor, PredicateConfig, PredicatePredictor,
};

/// Minimal deterministic PRNG (splitmix64) for the property loops.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// A random branch stream: 1..120 (pc, outcome) pairs.
    fn pcs(&mut self) -> Vec<(u16, bool)> {
        let n = 1 + self.below(119);
        (0..n).map(|_| (self.next() as u16, self.flag())).collect()
    }
}

/// predict → undo (youngest first) restores every predictor's history
/// state exactly.
fn undo_round_trip<P: BranchPredictor>(
    mut p: P,
    stream: &[(u16, bool)],
    snapshot: impl Fn(&P) -> u64,
) {
    // Warm up with trained state so we are not just testing the zero state.
    for &(pc, taken) in stream.iter().take(stream.len() / 2) {
        let pred = p.predict(0x4000 + u64::from(pc) * 16, (pc % 64) as u8);
        p.recover(&pred, taken);
        p.train(&pred, taken);
    }
    let before = snapshot(&p);
    let mut preds = Vec::new();
    for &(pc, _) in stream.iter().skip(stream.len() / 2) {
        preds.push(p.predict(0x4000 + u64::from(pc) * 16, (pc % 64) as u8));
    }
    for pred in preds.iter().rev() {
        p.undo(pred);
    }
    assert_eq!(snapshot(&p), before, "undo stack must restore history");
}

#[test]
fn gshare_undo_round_trip() {
    let mut rng = Rng(0x9ed_0001);
    for _ in 0..32 {
        let stream = rng.pcs();
        undo_round_trip(Gshare::new(GshareConfig { ghr_bits: 10 }), &stream, |p| {
            p.ghr_value()
        });
    }
}

#[test]
fn perceptron_undo_round_trip() {
    let mut rng = Rng(0x9ed_0002);
    for _ in 0..32 {
        let stream = rng.pcs();
        undo_round_trip(
            PerceptronPredictor::new(PerceptronConfig::tiny()),
            &stream,
            |p| p.ghr_value(),
        );
    }
}

#[test]
fn predicate_predictor_undo_round_trip() {
    let mut rng = Rng(0x9ed_0003);
    for case in 0..32 {
        let stream = rng.pcs();
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        for &(pc, v) in stream.iter().take(stream.len() / 2) {
            let cp = p.predict_compare(0x4000 + u64::from(pc) * 16, true, pc % 3 == 0);
            if let Some(pt) = cp.pt {
                p.train(&pt, v);
            }
        }
        let before = p.ghr_value();
        let mut cps = Vec::new();
        for &(pc, _) in stream.iter().skip(stream.len() / 2) {
            cps.push(p.predict_compare(0x4000 + u64::from(pc) * 16, true, true));
        }
        for cp in cps.iter().rev() {
            p.undo_compare(cp);
        }
        assert_eq!(p.ghr_value(), before, "case {case}");
    }
}

/// Training with the tag snapshot never panics and predictions stay
/// boolean-coherent regardless of the interleaving.
#[test]
fn peppa_is_robust_to_any_interleaving() {
    let mut rng = Rng(0x9ed_0004);
    for _ in 0..32 {
        let stream = rng.pcs();
        let n = 1 + rng.below(59);
        let writes: Vec<(u8, bool)> = (0..n).map(|_| (rng.below(64) as u8, rng.flag())).collect();
        let mut p = PepPa::new(PepPaConfig::tiny());
        let mut w = writes.iter().cycle();
        for &(pc, taken) in &stream {
            // Out-of-order predicate writes interleave with predictions.
            let (preg, v) = w.next().copied().unwrap();
            p.note_predicate_write(preg, v);
            let pred = p.predict(0x4000 + u64::from(pc) * 16, preg);
            if pred.taken != taken {
                p.recover(&pred, taken);
            }
            p.train(&pred, taken);
        }
        // Reachable without panic and still functional:
        let _pred = p.predict(0x4000, 1);
    }
}

/// The two hash functions always address distinct, in-range rows.
#[test]
fn predicate_two_hashes_disjoint() {
    let mut rng = Rng(0x9ed_0005);
    let p = PredicatePredictor::new(PredicateConfig::paper_148kb());
    for case in 0..256 {
        let pc = 0x4000_0000u64 + rng.below(1 << 32) * 16;
        let r1 = p.table().row_of(pc);
        let r2 = p.table().row2_of(pc);
        assert!(r1 < p.table().rows(), "case {case}");
        assert!(r2 < p.table().rows(), "case {case}");
        assert_ne!(r1, r2, "case {case} pc {pc:#x}");
    }
}

/// fix → fix with the original value is the identity on the history.
#[test]
fn history_fix_is_invertible() {
    let mut rng = Rng(0x9ed_0006);
    for case in 0..64 {
        let nbits = 1 + rng.below(29);
        let bits: Vec<bool> = (0..nbits).map(|_| rng.flag()).collect();
        let age = rng.below(29) as u32;
        let mut h = ppsim_predictors::GlobalHistory::new(30);
        for b in &bits {
            h.push(*b);
        }
        let before = h.value();
        match h.recent_bit(age) {
            Some(original) => {
                assert!(h.fix_recent_bit(age, !original));
                assert!(h.fix_recent_bit(age, original));
            }
            None => {
                // Aged out: the fix must report so and leave bits alone.
                assert!(!h.fix_recent_bit(age, true));
            }
        }
        assert_eq!(h.value(), before, "case {case}");
    }
}
