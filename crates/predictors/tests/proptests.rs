//! Property tests for the predictors: exact speculative-state recovery and
//! structural invariants under arbitrary operation sequences.

use proptest::prelude::*;

use ppsim_predictors::{
    BranchPredictor, Gshare, GshareConfig, PepPa, PepPaConfig, PerceptronConfig,
    PerceptronPredictor, PredicateConfig, PredicatePredictor,
};

fn pcs() -> impl Strategy<Value = Vec<(u16, bool)>> {
    prop::collection::vec((any::<u16>(), any::<bool>()), 1..120)
}

/// predict → undo (youngest first) restores every predictor's history
/// state exactly.
fn undo_round_trip<P: BranchPredictor>(mut p: P, stream: &[(u16, bool)], snapshot: impl Fn(&P) -> u64) {
    // Warm up with trained state so we are not just testing the zero state.
    for &(pc, taken) in stream.iter().take(stream.len() / 2) {
        let pred = p.predict(0x4000 + u64::from(pc) * 16, (pc % 64) as u8, );
        p.recover(&pred, taken);
        p.train(&pred, taken);
    }
    let before = snapshot(&p);
    let mut preds = Vec::new();
    for &(pc, _) in stream.iter().skip(stream.len() / 2) {
        preds.push(p.predict(0x4000 + u64::from(pc) * 16, (pc % 64) as u8));
    }
    for pred in preds.iter().rev() {
        p.undo(pred);
    }
    assert_eq!(snapshot(&p), before, "undo stack must restore history");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gshare_undo_round_trip(stream in pcs()) {
        undo_round_trip(
            Gshare::new(GshareConfig { ghr_bits: 10 }),
            &stream,
            |p| p.ghr_value(),
        );
    }

    #[test]
    fn perceptron_undo_round_trip(stream in pcs()) {
        undo_round_trip(
            PerceptronPredictor::new(PerceptronConfig::tiny()),
            &stream,
            |p| p.ghr_value(),
        );
    }

    #[test]
    fn predicate_predictor_undo_round_trip(stream in pcs()) {
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        for &(pc, v) in stream.iter().take(stream.len() / 2) {
            let cp = p.predict_compare(0x4000 + u64::from(pc) * 16, true, pc % 3 == 0);
            if let Some(pt) = cp.pt {
                p.train(&pt, v);
            }
        }
        let before = p.ghr_value();
        let mut cps = Vec::new();
        for &(pc, _) in stream.iter().skip(stream.len() / 2) {
            cps.push(p.predict_compare(0x4000 + u64::from(pc) * 16, true, true));
        }
        for cp in cps.iter().rev() {
            p.undo_compare(cp);
        }
        prop_assert_eq!(p.ghr_value(), before);
    }

    /// Training with the tag snapshot never panics and predictions stay
    /// boolean-coherent regardless of the interleaving.
    #[test]
    fn peppa_is_robust_to_any_interleaving(
        stream in pcs(),
        writes in prop::collection::vec((0u8..64, any::<bool>()), 1..60),
    ) {
        let mut p = PepPa::new(PepPaConfig::tiny());
        let mut w = writes.iter().cycle();
        for &(pc, taken) in &stream {
            // Out-of-order predicate writes interleave with predictions.
            let (preg, v) = w.next().copied().unwrap();
            p.note_predicate_write(preg, v);
            let pred = p.predict(0x4000 + u64::from(pc) * 16, preg);
            if pred.taken != taken {
                p.recover(&pred, taken);
            }
            p.train(&pred, taken);
        }
        // Reachable without panic and still functional:
        let pred = p.predict(0x4000, 1);
        prop_assert!(pred.taken || !pred.taken);
    }

    /// The two hash functions always address distinct, in-range rows.
    #[test]
    fn predicate_two_hashes_disjoint(pc in any::<u32>()) {
        let p = PredicatePredictor::new(PredicateConfig::paper_148kb());
        let pc = 0x4000_0000u64 + u64::from(pc) * 16;
        let r1 = p.table().row_of(pc);
        let r2 = p.table().row2_of(pc);
        prop_assert!(r1 < p.table().rows());
        prop_assert!(r2 < p.table().rows());
        prop_assert_ne!(r1, r2);
    }

    /// fix → fix with the original value is the identity on the history.
    #[test]
    fn history_fix_is_invertible(bits in prop::collection::vec(any::<bool>(), 1..30), age in 0u32..29) {
        let mut h = ppsim_predictors::GlobalHistory::new(30);
        for b in &bits {
            h.push(*b);
        }
        let before = h.value();
        let original = h.recent_bit(age);
        h.fix_recent_bit(age, !original);
        h.fix_recent_bit(age, original);
        prop_assert_eq!(h.value(), before);
    }
}
