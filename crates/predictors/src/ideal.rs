//! Idealized predictor variants for the paper's sensitivity analyses.
//!
//! §4.2/§4.3 repeat the experiments "with idealized branch predictor and
//! predicate predictor schemes, without alias conflicts and with perfect
//! global-history update". These variants model exactly that:
//!
//! * **no aliasing** — every static instruction gets its own private
//!   perceptron row (unbounded storage),
//! * **perfect history** — the global and local histories are updated with
//!   the *actual* outcome at prediction time, so speculative corruption
//!   never occurs.
//!
//! Because the histories consume oracle outcomes, the API differs from the
//! realistic predictors: prediction and training happen in one call.

use std::collections::HashMap;

use crate::history::GlobalHistory;
use crate::perceptron::PerceptronConfig;

/// One private perceptron with its own local history.
#[derive(Clone, Debug)]
struct PrivateRow {
    weights: Vec<i8>,
    lhr: u32,
}

#[derive(Clone, Debug)]
struct IdealCore {
    rows: HashMap<u64, PrivateRow>,
    ghr: GlobalHistory,
    cfg: PerceptronConfig,
    theta: i32,
}

impl IdealCore {
    fn new(cfg: PerceptronConfig) -> Self {
        IdealCore {
            rows: HashMap::new(),
            ghr: GlobalHistory::new(cfg.ghr_bits.max(1)),
            theta: cfg.resolved_theta(),
            cfg,
        }
    }

    /// Predicts with current (perfect) history, trains with the actual
    /// outcome, then pushes the actual outcome into the histories.
    fn predict_train(&mut self, key: u64, actual: bool) -> bool {
        let ghr = self.ghr.value();
        let n = self.cfg.weights_per_row();
        let row = self.rows.entry(key).or_insert_with(|| PrivateRow {
            weights: vec![0; n],
            lhr: 0,
        });

        let mut sum = i32::from(row.weights[0]);
        for i in 0..self.cfg.ghr_bits as usize {
            let x = if (ghr >> i) & 1 == 1 { 1 } else { -1 };
            sum += i32::from(row.weights[1 + i]) * x;
        }
        let base = 1 + self.cfg.ghr_bits as usize;
        for i in 0..self.cfg.lhr_bits as usize {
            let x = if (row.lhr >> i) & 1 == 1 { 1 } else { -1 };
            sum += i32::from(row.weights[base + i]) * x;
        }
        let predicted = sum >= 0;

        if predicted != actual || sum.abs() <= self.theta {
            let t: i32 = if actual { 1 } else { -1 };
            let upd = |w: &mut i8, x: i32| {
                *w = (i32::from(*w) + t * x).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
            };
            upd(&mut row.weights[0], 1);
            for i in 0..self.cfg.ghr_bits as usize {
                let x = if (ghr >> i) & 1 == 1 { 1 } else { -1 };
                upd(&mut row.weights[1 + i], x);
            }
            for i in 0..self.cfg.lhr_bits as usize {
                let x = if (row.lhr >> i) & 1 == 1 { 1 } else { -1 };
                upd(&mut row.weights[base + i], x);
            }
        }

        let lmask = if self.cfg.lhr_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.cfg.lhr_bits) - 1
        };
        row.lhr = ((row.lhr << 1) | u32::from(actual)) & lmask;
        self.ghr.push(actual);
        predicted
    }
}

/// Idealized conventional branch predictor: alias-free, perfect history.
#[derive(Clone, Debug)]
pub struct IdealPerceptron {
    core: IdealCore,
}

impl IdealPerceptron {
    /// Builds the idealized predictor with the given geometry (history
    /// widths and θ are honoured; row count is ignored — storage is
    /// unbounded).
    pub fn new(cfg: PerceptronConfig) -> Self {
        IdealPerceptron {
            core: IdealCore::new(cfg),
        }
    }

    /// Predicts the branch at `pc`, then immediately trains with and
    /// records the actual outcome. Returns the prediction that *would*
    /// have been made.
    pub fn predict_and_train(&mut self, pc: u64, actual: bool) -> bool {
        self.core.predict_train(pc, actual)
    }

    /// Number of private rows materialized so far.
    pub fn rows_used(&self) -> usize {
        self.core.rows.len()
    }
}

/// Idealized predicate predictor: alias-free, perfect history, one private
/// row per (compare PC, target) pair.
#[derive(Clone, Debug)]
pub struct IdealPredicatePredictor {
    core: IdealCore,
}

impl IdealPredicatePredictor {
    /// Builds the idealized predicate predictor.
    pub fn new(cfg: PerceptronConfig) -> Self {
        IdealPredicatePredictor {
            core: IdealCore::new(cfg),
        }
    }

    /// Predicts (and oracle-trains) the outputs of the compare at `pc`.
    ///
    /// `actual_pt`/`actual_pf` are `Some(computed value)` for targets that
    /// name real registers. The global history shifts once per compare,
    /// with the actual primary bit (perfect update). Returns the
    /// predictions that would have been made for each requested target.
    pub fn predict_compare_and_train(
        &mut self,
        pc: u64,
        actual_pt: Option<bool>,
        actual_pf: Option<bool>,
    ) -> (Option<bool>, Option<bool>) {
        // Key targets separately; tag bit 0 distinguishes pt/pf.
        let ghr_backup = self.core.ghr;
        let mut first = None;
        let mut pred_pt = None;
        let mut pred_pf = None;
        if let Some(a) = actual_pt {
            pred_pt = Some(self.core.predict_train(pc << 1, a));
            first = Some(a);
        }
        if let Some(a) = actual_pf {
            // Restore history so both targets see the same pre-compare
            // history, then decide the single push below.
            if first.is_some() {
                let after = self.core.ghr;
                self.core.ghr = ghr_backup;
                pred_pf = Some(self.core.predict_train((pc << 1) | 1, a));
                // Keep exactly one push: the pt (primary) bit.
                self.core.ghr = after;
            } else {
                pred_pf = Some(self.core.predict_train((pc << 1) | 1, a));
            }
        }
        (pred_pt, pred_pf)
    }

    /// Number of private rows materialized so far.
    pub fn rows_used(&self) -> usize {
        self.core.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_perceptron_learns_pattern_perfectly_fast() {
        let mut p = IdealPerceptron::new(PerceptronConfig::tiny());
        let mut wrong = 0;
        let pattern = [true, true, false, true, false, false];
        for _ in 0..300 {
            for &o in &pattern {
                if p.predict_and_train(0x4000, o) != o {
                    wrong += 1;
                }
            }
        }
        let rate = wrong as f64 / (300.0 * pattern.len() as f64);
        assert!(
            rate < 0.08,
            "ideal predictor on periodic pattern, rate={rate}"
        );
    }

    #[test]
    fn no_aliasing_between_pcs() {
        let mut p = IdealPerceptron::new(PerceptronConfig::tiny());
        // Thousands of distinct PCs, each strongly biased differently:
        // private rows mean no destructive interference.
        let mut wrong = 0;
        let mut total = 0;
        for round in 0..20 {
            for i in 0..500u64 {
                let pc = 0x4000 + i * 16;
                let o = i % 2 == 0;
                if p.predict_and_train(pc, o) != o && round > 0 {
                    wrong += 1;
                }
                if round > 0 {
                    total += 1;
                }
            }
        }
        assert_eq!(p.rows_used(), 500);
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.02, "bias per private row, rate={rate}");
    }

    #[test]
    fn ideal_predicate_predictor_handles_two_targets() {
        let mut p = IdealPredicatePredictor::new(PerceptronConfig::tiny());
        let mut wrong = 0;
        for i in 0..400u32 {
            let v = i % 3 == 0;
            let (pt, pf) = p.predict_compare_and_train(0x4000, Some(v), Some(!v));
            if i > 100 {
                if pt.unwrap() != v {
                    wrong += 1;
                }
                if pf.unwrap() == v {
                    wrong += 1;
                }
            }
        }
        assert_eq!(p.rows_used(), 2, "one private row per target");
        assert!(wrong < 60, "period-3 predicate learned, wrong={wrong}");
    }

    #[test]
    fn ideal_predicate_predictor_single_target() {
        let mut p = IdealPredicatePredictor::new(PerceptronConfig::tiny());
        let (pt, pf) = p.predict_compare_and_train(0x4000, Some(true), None);
        assert!(pt.is_some() && pf.is_none());
        let (pt, pf) = p.predict_compare_and_train(0x4000, None, None);
        assert!(pt.is_none() && pf.is_none());
    }
}
