//! Hardware-budget accounting for the Table-1 predictor configurations.
//!
//! The paper compares predictors at matched storage budgets ("both having a
//! 148 KB size and analogous configurations"); this module centralizes the
//! byte arithmetic and provides a human-readable report used by the
//! `table1` harness binary.

use crate::gshare::GshareConfig;
use crate::peppa::PepPaConfig;
use crate::perceptron::PerceptronConfig;
use crate::predicate::PredicateConfig;
use crate::tage::{TageConfig, TageH2pConfig, TagePredicateConfig};

/// Budget summary of one predictor structure.
#[derive(Clone, Debug, PartialEq)]
pub struct Budget {
    /// Structure name.
    pub name: &'static str,
    /// Component → bytes breakdown.
    pub components: Vec<(&'static str, usize)>,
}

impl Budget {
    /// Total bytes across components.
    pub fn total_bytes(&self) -> usize {
        self.components.iter().map(|(_, b)| b).sum()
    }

    /// Total in KiB.
    pub fn total_kib(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

/// Budget of the first-level gshare predictor.
pub fn gshare_budget(cfg: &GshareConfig) -> Budget {
    Budget {
        name: "gshare (L1)",
        components: vec![("2-bit counters", cfg.table_bytes())],
    }
}

/// Budget of the conventional perceptron predictor.
pub fn perceptron_budget(cfg: &PerceptronConfig) -> Budget {
    Budget {
        name: "perceptron (L2, conventional)",
        components: vec![
            ("weight table (8-bit weights)", cfg.table_bytes()),
            (
                "local history table",
                (cfg.lht_entries.next_power_of_two() * cfg.lhr_bits as usize).div_ceil(8),
            ),
        ],
    }
}

/// Budget of the PEP-PA baseline. Components come straight from the
/// config's own byte accounting so the report can never drift from
/// [`PepPaConfig::table_bytes`].
pub fn peppa_budget(cfg: &PepPaConfig) -> Budget {
    Budget {
        name: "PEP-PA",
        components: vec![
            ("dual local histories", cfg.bht_bytes()),
            ("2-bit PHT", cfg.pht_bytes()),
        ],
    }
}

/// Budget of the predicate predictor (PVT + LHT + confidence).
pub fn predicate_budget(cfg: &PredicateConfig) -> Budget {
    let p = &cfg.perceptron;
    Budget {
        name: "predicate predictor",
        components: vec![
            ("perceptron vector table", p.table_bytes()),
            (
                "local history table",
                (p.lht_entries.next_power_of_two() * p.lhr_bits as usize).div_ceil(8),
            ),
            (
                "confidence counters",
                (p.rows * cfg.conf_bits as usize).div_ceil(8),
            ),
        ],
    }
}

/// Budget of the TAGE branch predictor (base bimodal + tagged tables).
pub fn tage_budget(cfg: &TageConfig) -> Budget {
    Budget {
        name: "TAGE",
        components: vec![
            ("bimodal base (2-bit)", cfg.base_bytes()),
            ("tagged tables", cfg.tagged_bytes()),
        ],
    }
}

/// Budget of the TAGE + H2P side-table variant.
pub fn tage_h2p_budget(cfg: &TageConfig, h2p: &TageH2pConfig) -> Budget {
    Budget {
        name: "TAGE-H2P",
        components: vec![
            ("bimodal base (2-bit)", cfg.base_bytes()),
            ("tagged tables", cfg.tagged_bytes()),
            ("H2P exec/miss stats", h2p.stats_bytes()),
            ("H2P side table", h2p.side_bytes()),
        ],
    }
}

/// Budget of the TAGE-indexed predicate predictor (base PVT + tagged
/// tables + confidence).
pub fn tage_predicate_budget(cfg: &TagePredicateConfig) -> Budget {
    Budget {
        name: "TAGE predicate predictor",
        components: vec![
            ("bimodal base PVT (2-bit)", cfg.base_bytes()),
            ("tagged tables", cfg.tagged_bytes()),
            (
                "confidence counters",
                (cfg.base_rows * cfg.conf_bits as usize).div_ceil(8),
            ),
        ],
    }
}

/// Formats a budget table for all paper configurations.
pub fn paper_report() -> String {
    let budgets = [
        gshare_budget(&GshareConfig::paper_4kb()),
        perceptron_budget(&PerceptronConfig::paper_148kb()),
        peppa_budget(&PepPaConfig::paper_144kb()),
        predicate_budget(&PredicateConfig::paper_148kb()),
        tage_budget(&TageConfig::paper_144kb()),
        tage_h2p_budget(&TageConfig::paper_144kb(), &TageH2pConfig::paper_default()),
        tage_predicate_budget(&TagePredicateConfig::paper_144kb()),
    ];
    let mut out = String::new();
    for b in &budgets {
        out.push_str(&format!("{:<32} {:>9.1} KiB\n", b.name, b.total_kib()));
        for (c, bytes) in &b.components {
            out.push_str(&format!("    {:<28} {:>9} B\n", c, bytes));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budgets_match_the_paper() {
        // Table-1 totals, re-derived with per-component round-up
        // accounting. Every paper geometry is byte-aligned (all bit
        // counts divisible by 8), so unifying the old floor-`/8` paths
        // onto `div_ceil(8)` leaves these exact totals unchanged.
        assert_eq!(
            gshare_budget(&GshareConfig::paper_4kb()).total_bytes(),
            4096
        );
        let perc = perceptron_budget(&PerceptronConfig::paper_148kb());
        // 3696 rows × 41 weights = 151,536 B ≈ 148 KB of weight storage.
        assert_eq!(perc.components[0].1, 151_536);
        assert_eq!(
            peppa_budget(&PepPaConfig::paper_144kb()).total_bytes(),
            144 * 1024
        );
        let pp = predicate_budget(&PredicateConfig::paper_148kb());
        assert_eq!(
            pp.components[0].1, 151_536,
            "same PVT budget as the conventional"
        );
        // Confidence adds ~1.4 KB — the paper's "minimal extra hardware".
        assert!(pp.components[2].1 < 2 * 1024);
    }

    #[test]
    fn tage_budgets_are_pinned_in_the_table1_class() {
        // The TAGE frontier sits in the same 140–156 KB class as the
        // paper's second-level predictors, so accuracy comparisons are
        // iso-budget. Totals are pinned exactly; the predictors'
        // `size_bytes()` must agree (asserted in their own unit tests).
        let t = tage_budget(&TageConfig::paper_144kb());
        assert_eq!(t.total_bytes(), 147_456, "144 KiB exactly");
        assert_eq!(t.components[0].1, 8192, "32 Ki × 2-bit base");
        assert_eq!(t.components[1].1, 139_264, "8 × 8 Ki × 17-bit entries");

        let h = tage_h2p_budget(&TageConfig::paper_144kb(), &TageH2pConfig::paper_default());
        assert_eq!(h.total_bytes(), 155_392, "core + <8 KB of H2P state");

        let p = tage_predicate_budget(&TagePredicateConfig::paper_144kb());
        assert_eq!(p.total_bytes(), 144_384, "base + tagged + confidence");
        let kb = p.total_kib();
        assert!((140.0..156.0).contains(&kb), "Table-1 class, got {kb}");
    }

    #[test]
    fn partial_bytes_round_up_per_component() {
        // A 1-bit-GHR gshare holds 2 counters = 4 bits; the old floor
        // arithmetic priced that at 0 bytes.
        assert_eq!(GshareConfig { ghr_bits: 1 }.table_bytes(), 1);
        // 2 BHT entries × 2 × 5 bits = 20 bits → 3 B, 2^3 × 2-bit PHT =
        // 16 bits → 2 B. Pooling the 36 bits and flooring gave 4 B;
        // per-component round-up gives 5.
        let odd = PepPaConfig {
            bht_entries: 2,
            lh_bits: 5,
            pht_bits: 3,
        };
        assert_eq!(odd.bht_bytes(), 3);
        assert_eq!(odd.pht_bytes(), 2);
        assert_eq!(odd.table_bytes(), 5);
        // The sizing report and the config agree byte for byte, for any
        // geometry — the report is built from the same accessors.
        assert_eq!(peppa_budget(&odd).total_bytes(), odd.table_bytes());
        assert_eq!(
            peppa_budget(&PepPaConfig::tiny()).total_bytes(),
            PepPaConfig::tiny().table_bytes()
        );
    }

    #[test]
    fn conventional_and_predicate_have_matched_core_budgets() {
        let a = perceptron_budget(&PerceptronConfig::paper_148kb());
        let b = predicate_budget(&PredicateConfig::paper_148kb());
        assert_eq!(a.components[0].1, b.components[0].1);
        assert_eq!(a.components[1].1, b.components[1].1);
    }

    #[test]
    fn report_mentions_every_structure() {
        let r = paper_report();
        for s in [
            "gshare",
            "perceptron",
            "PEP-PA",
            "predicate predictor",
            "TAGE",
            "TAGE-H2P",
            "TAGE predicate predictor",
        ] {
            assert!(r.contains(s), "missing {s} in:\n{r}");
        }
    }
}
