//! Hardware-budget accounting for the Table-1 predictor configurations.
//!
//! The paper compares predictors at matched storage budgets ("both having a
//! 148 KB size and analogous configurations"); this module centralizes the
//! byte arithmetic and provides a human-readable report used by the
//! `table1` harness binary.

use crate::gshare::GshareConfig;
use crate::peppa::PepPaConfig;
use crate::perceptron::PerceptronConfig;
use crate::predicate::PredicateConfig;

/// Budget summary of one predictor structure.
#[derive(Clone, Debug, PartialEq)]
pub struct Budget {
    /// Structure name.
    pub name: &'static str,
    /// Component → bytes breakdown.
    pub components: Vec<(&'static str, usize)>,
}

impl Budget {
    /// Total bytes across components.
    pub fn total_bytes(&self) -> usize {
        self.components.iter().map(|(_, b)| b).sum()
    }

    /// Total in KiB.
    pub fn total_kib(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

/// Budget of the first-level gshare predictor.
pub fn gshare_budget(cfg: &GshareConfig) -> Budget {
    Budget {
        name: "gshare (L1)",
        components: vec![("2-bit counters", cfg.table_bytes())],
    }
}

/// Budget of the conventional perceptron predictor.
pub fn perceptron_budget(cfg: &PerceptronConfig) -> Budget {
    Budget {
        name: "perceptron (L2, conventional)",
        components: vec![
            ("weight table (8-bit weights)", cfg.table_bytes()),
            (
                "local history table",
                (cfg.lht_entries.next_power_of_two() * cfg.lhr_bits as usize).div_ceil(8),
            ),
        ],
    }
}

/// Budget of the PEP-PA baseline. Components come straight from the
/// config's own byte accounting so the report can never drift from
/// [`PepPaConfig::table_bytes`].
pub fn peppa_budget(cfg: &PepPaConfig) -> Budget {
    Budget {
        name: "PEP-PA",
        components: vec![
            ("dual local histories", cfg.bht_bytes()),
            ("2-bit PHT", cfg.pht_bytes()),
        ],
    }
}

/// Budget of the predicate predictor (PVT + LHT + confidence).
pub fn predicate_budget(cfg: &PredicateConfig) -> Budget {
    let p = &cfg.perceptron;
    Budget {
        name: "predicate predictor",
        components: vec![
            ("perceptron vector table", p.table_bytes()),
            (
                "local history table",
                (p.lht_entries.next_power_of_two() * p.lhr_bits as usize).div_ceil(8),
            ),
            (
                "confidence counters",
                (p.rows * cfg.conf_bits as usize).div_ceil(8),
            ),
        ],
    }
}

/// Formats a budget table for all paper configurations.
pub fn paper_report() -> String {
    let budgets = [
        gshare_budget(&GshareConfig::paper_4kb()),
        perceptron_budget(&PerceptronConfig::paper_148kb()),
        peppa_budget(&PepPaConfig::paper_144kb()),
        predicate_budget(&PredicateConfig::paper_148kb()),
    ];
    let mut out = String::new();
    for b in &budgets {
        out.push_str(&format!("{:<32} {:>9.1} KiB\n", b.name, b.total_kib()));
        for (c, bytes) in &b.components {
            out.push_str(&format!("    {:<28} {:>9} B\n", c, bytes));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budgets_match_the_paper() {
        // Table-1 totals, re-derived with per-component round-up
        // accounting. Every paper geometry is byte-aligned (all bit
        // counts divisible by 8), so unifying the old floor-`/8` paths
        // onto `div_ceil(8)` leaves these exact totals unchanged.
        assert_eq!(
            gshare_budget(&GshareConfig::paper_4kb()).total_bytes(),
            4096
        );
        let perc = perceptron_budget(&PerceptronConfig::paper_148kb());
        // 3696 rows × 41 weights = 151,536 B ≈ 148 KB of weight storage.
        assert_eq!(perc.components[0].1, 151_536);
        assert_eq!(
            peppa_budget(&PepPaConfig::paper_144kb()).total_bytes(),
            144 * 1024
        );
        let pp = predicate_budget(&PredicateConfig::paper_148kb());
        assert_eq!(
            pp.components[0].1, 151_536,
            "same PVT budget as the conventional"
        );
        // Confidence adds ~1.4 KB — the paper's "minimal extra hardware".
        assert!(pp.components[2].1 < 2 * 1024);
    }

    #[test]
    fn partial_bytes_round_up_per_component() {
        // A 1-bit-GHR gshare holds 2 counters = 4 bits; the old floor
        // arithmetic priced that at 0 bytes.
        assert_eq!(GshareConfig { ghr_bits: 1 }.table_bytes(), 1);
        // 2 BHT entries × 2 × 5 bits = 20 bits → 3 B, 2^3 × 2-bit PHT =
        // 16 bits → 2 B. Pooling the 36 bits and flooring gave 4 B;
        // per-component round-up gives 5.
        let odd = PepPaConfig {
            bht_entries: 2,
            lh_bits: 5,
            pht_bits: 3,
        };
        assert_eq!(odd.bht_bytes(), 3);
        assert_eq!(odd.pht_bytes(), 2);
        assert_eq!(odd.table_bytes(), 5);
        // The sizing report and the config agree byte for byte, for any
        // geometry — the report is built from the same accessors.
        assert_eq!(peppa_budget(&odd).total_bytes(), odd.table_bytes());
        assert_eq!(
            peppa_budget(&PepPaConfig::tiny()).total_bytes(),
            PepPaConfig::tiny().table_bytes()
        );
    }

    #[test]
    fn conventional_and_predicate_have_matched_core_budgets() {
        let a = perceptron_budget(&PerceptronConfig::paper_148kb());
        let b = predicate_budget(&PredicateConfig::paper_148kb());
        assert_eq!(a.components[0].1, b.components[0].1);
        assert_eq!(a.components[1].1, b.components[1].1);
    }

    #[test]
    fn report_mentions_every_structure() {
        let r = paper_report();
        for s in ["gshare", "perceptron", "PEP-PA", "predicate predictor"] {
            assert!(r.contains(s), "missing {s} in:\n{r}");
        }
    }
}
