//! # ppsim-predictors — branch and predicate predictors
//!
//! Implements every prediction structure the paper evaluates:
//!
//! * [`Gshare`] — the small, single-cycle first-level predictor of the
//!   two-level organization (4 KB, 14-bit global history; Table 1),
//! * [`PerceptronPredictor`] — the 148 KB conventional second-level
//!   predictor (30-bit global + 10-bit local history perceptron, Jiménez &
//!   Lin), the paper's baseline,
//! * [`PepPa`] — the 144 KB Predicate-Enhanced-Prediction baseline of
//!   August et al., where the previous value of the guarding predicate
//!   register selects between two local histories,
//! * [`PredicatePredictor`] — **the paper's contribution**: a perceptron
//!   indexed by the *compare* PC rather than the branch PC, producing two
//!   predictions per compare through two hash functions over a single
//!   perceptron vector table, with a confidence estimator for selective
//!   predicate prediction,
//! * idealized variants (no aliasing, perfect history) used for the
//!   sensitivity analyses quoted in §4.2/§4.3,
//! * the TAGE frontier (ROADMAP item 4): [`Tage`] — a 144 KiB TAGE
//!   predictor, optionally with a Bullseye-style H2P side table — and
//!   [`TagePredicatePredictor`], the hybrid that applies TAGE indexing to
//!   the compare-PC predicate value table.
//!
//! ## Speculative history discipline
//!
//! All predictors update their histories *speculatively at prediction time*
//! and support exact repair: every [`Prediction`] carries a [`Tag`]
//! snapshotting the pre-update state, [`BranchPredictor::undo`] reverts a
//! squashed prediction, and [`GlobalHistory::fix_recent_bit`] corrects the
//! bit a mispredicted compare inserted (the recovery action described in
//! §3.3 — compares fetched between a mispredicted predicate's producer and
//! consumer keep their corrupted-history predictions, which is the negative
//! effect the paper measures).
//!
//! # Example
//!
//! ```
//! use ppsim_predictors::{BranchPredictor, PerceptronConfig, PerceptronPredictor};
//!
//! let mut p = PerceptronPredictor::new(PerceptronConfig::paper_148kb());
//! let pc = 0x4000_0040;
//! let pred = p.predict(pc, 1);
//! p.train(&pred, true); // commit-time training with the tagged history
//! ```

mod confidence;
mod gshare;
mod history;
mod ideal;
mod peppa;
mod perceptron;
mod predicate;
mod scheme;
pub mod sizing;
mod tage;

pub use confidence::ConfidenceTable;
pub use gshare::{Gshare, GshareConfig};
pub use history::{GlobalHistory, LocalHistoryTable};
pub use ideal::{IdealPerceptron, IdealPredicatePredictor};
pub use peppa::{PepPa, PepPaConfig};
pub use perceptron::{PerceptronConfig, PerceptronPredictor, PerceptronTable};
pub use predicate::{CmpPrediction, PredicateConfig, PredicatePrediction, PredicatePredictor};
pub use scheme::{PredictorSet, SchemeSpec};
pub use tage::{
    geometric_histories, Tage, TageConfig, TageH2pConfig, TagePredicateConfig,
    TagePredicatePredictor,
};

/// A direction prediction together with the recovery/training tag.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Predicted direction (`true` = taken / predicate true).
    pub taken: bool,
    /// Snapshot needed to train or undo this prediction.
    pub tag: Tag,
}

/// Snapshot of predictor state at prediction time.
///
/// One concrete tag type serves every predictor in the crate; each
/// implementation uses the subset of fields it needs. Hardware analogue: the
/// outcome/history FIFO that accompanies in-flight branches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tag {
    /// Global history value *before* the speculative update.
    pub ghr_before: u64,
    /// Local history value *before* the speculative update.
    pub lhr_before: u32,
    /// Index of the local history entry used (or `u32::MAX`).
    pub lhr_idx: u32,
    /// Primary table row used.
    pub row: u32,
    /// Secondary table row (predicate predictor's f2), or `u32::MAX`.
    pub row2: u32,
    /// Raw predictor output (perceptron sum or counter value).
    pub sum: i32,
    /// Implementation-defined extra state (e.g. PEP-PA history selector).
    pub alt: u64,
}

impl Tag {
    /// An empty tag (all sentinel values).
    pub const EMPTY: Tag = Tag {
        ghr_before: 0,
        lhr_before: 0,
        lhr_idx: u32::MAX,
        row: 0,
        row2: u32::MAX,
        sum: 0,
        alt: 0,
    };
}

impl Default for Tag {
    fn default() -> Self {
        Tag::EMPTY
    }
}

/// A branch direction predictor keyed by the *branch* PC.
///
/// Implemented by [`Gshare`], [`PerceptronPredictor`], [`PepPa`] and
/// [`IdealPerceptron`]. The paper's [`PredicatePredictor`] deliberately does
/// *not* implement this trait: it predicts at compares, not branches, and
/// has its own interface.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc` whose qualifying
    /// predicate is architectural register `guard`, speculatively updating
    /// the predictor's histories with the predicted outcome.
    ///
    /// `guard` is only used by predicate-aware schemes (PEP-PA); plain
    /// predictors ignore it.
    fn predict(&mut self, pc: u64, guard: u8) -> Prediction;

    /// Trains the tables using the history snapshot in `prediction.tag` and
    /// the actual outcome. Called once per committed branch.
    fn train(&mut self, prediction: &Prediction, taken: bool);

    /// Reverts the speculative history update of a squashed prediction.
    /// Must be called youngest-first when unwinding several.
    fn undo(&mut self, prediction: &Prediction);

    /// Re-applies history state for a resolved branch whose prediction was
    /// wrong: restores the tagged pre-state, then shifts in the actual
    /// outcome. Called on the flush-triggering branch itself.
    fn recover(&mut self, prediction: &Prediction, taken: bool);

    /// Observes an architectural predicate write at execute/writeback time
    /// (register index, computed value). Only PEP-PA uses this; the default
    /// is a no-op.
    fn note_predicate_write(&mut self, _preg: u8, _value: bool) {}

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Hardware budget in bytes (for the Table-1 style sizing asserts).
    fn size_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_default_is_empty() {
        assert_eq!(Tag::default(), Tag::EMPTY);
        assert_eq!(Tag::EMPTY.row2, u32::MAX);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _take(_: &mut dyn BranchPredictor) {}
    }
}
