//! Gshare: the small single-cycle first-level predictor of the two-level
//! organization (Table 1: 14-bit GHR, 4 KB, 1-cycle access).

use crate::history::GlobalHistory;
use crate::{BranchPredictor, Prediction, Tag};

/// Gshare configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GshareConfig {
    /// Global history bits; the counter table has `2^ghr_bits` entries.
    pub ghr_bits: u32,
}

impl GshareConfig {
    /// The paper's first-level predictor: 14-bit GHR → 16 Ki 2-bit
    /// counters = 4 KB.
    pub fn paper_4kb() -> Self {
        GshareConfig { ghr_bits: 14 }
    }

    /// Counter-table budget in bytes (2-bit counters, bit-packed). A
    /// partial trailing byte rounds *up* — hardware cannot allocate
    /// fractional bytes — matching every other predictor's accounting.
    pub fn table_bytes(&self) -> usize {
        ((1usize << self.ghr_bits) * 2).div_ceil(8)
    }
}

/// The gshare predictor: 2-bit saturating counters indexed by
/// `pc ⊕ GHR`.
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    ghr: GlobalHistory,
    mask: usize,
    cfg: GshareConfig,
}

impl Gshare {
    /// Builds the predictor; counters initialize to weakly-not-taken (1).
    pub fn new(cfg: GshareConfig) -> Self {
        let entries = 1usize << cfg.ghr_bits;
        Gshare {
            counters: vec![1; entries],
            ghr: GlobalHistory::new(cfg.ghr_bits),
            mask: entries - 1,
            cfg,
        }
    }

    /// Current global history value (diagnostics).
    pub fn ghr_value(&self) -> u64 {
        self.ghr.value()
    }

    /// Overwrites the global history register. Fault-injection hook: the
    /// fused-lane isolation check deliberately leaks one lane's history
    /// into another and asserts the differential report catches it. Never
    /// called on measurement runs.
    pub fn set_ghr_value(&mut self, value: u64) {
        self.ghr.set(value);
    }

    /// Counter-table index for a branch: `(pc >> 4) ^ ghr`, masked.
    ///
    /// The 4-bit shift is exactly the bundle-slot spacing — `Program::pc_of`
    /// places slot `s` at `CODE_BASE + s * SLOT_BYTES` with
    /// `SLOT_BYTES == 16` — so `pc >> 4` yields *consecutive* integers for
    /// consecutive slots and adjacent branches under the same history never
    /// alias onto one counter (audited for this PR; the cross-crate pin
    /// against the real `Program::pc_of` lives in
    /// `crates/check/tests/checks.rs`). Shifting by more would fold
    /// neighboring slots together; shifting by less would leave dead
    /// always-zero index bits.
    fn index(&self, pc: u64, ghr: u64) -> usize {
        (((pc >> 4) ^ ghr) as usize) & self.mask
    }
}

impl BranchPredictor for Gshare {
    fn predict(&mut self, pc: u64, _guard: u8) -> Prediction {
        let ghr_before = self.ghr.value();
        let idx = self.index(pc, ghr_before);
        let counter = self.counters[idx];
        let taken = counter >= 2;
        self.ghr.push(taken);
        Prediction {
            taken,
            tag: Tag {
                ghr_before,
                row: idx as u32,
                sum: i32::from(counter),
                ..Tag::EMPTY
            },
        }
    }

    fn train(&mut self, prediction: &Prediction, taken: bool) {
        let idx = prediction.tag.row as usize;
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn undo(&mut self, prediction: &Prediction) {
        self.ghr.set(prediction.tag.ghr_before);
    }

    fn recover(&mut self, prediction: &Prediction, taken: bool) {
        self.ghr.set(prediction.tag.ghr_before);
        self.ghr.push(taken);
    }

    fn name(&self) -> &'static str {
        "gshare"
    }

    fn size_bytes(&self) -> usize {
        self.cfg.table_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_4kb() {
        assert_eq!(GshareConfig::paper_4kb().table_bytes(), 4096);
    }

    #[test]
    fn learns_bias_quickly() {
        let mut g = Gshare::new(GshareConfig { ghr_bits: 8 });
        let mut wrong = 0;
        let mut late_wrong = 0;
        for i in 0..100 {
            let p = g.predict(0x4000, 0);
            if !p.taken {
                wrong += 1;
                if i >= 50 {
                    late_wrong += 1;
                }
                g.recover(&p, true);
            }
            g.train(&p, true);
        }
        // Warm-up mispredictions while the GHR converges are expected (each
        // new history value indexes a fresh weakly-not-taken counter).
        assert!(
            wrong <= 12,
            "bias learned after history warm-up, wrong={wrong}"
        );
        assert_eq!(late_wrong, 0, "steady state is perfect on a bias");
    }

    #[test]
    fn counters_saturate() {
        let mut g = Gshare::new(GshareConfig { ghr_bits: 4 });
        let p = g.predict(0x4000, 0);
        for _ in 0..10 {
            g.train(&p, true);
        }
        assert_eq!(g.counters[p.tag.row as usize], 3);
        for _ in 0..10 {
            g.train(&p, false);
        }
        assert_eq!(g.counters[p.tag.row as usize], 0);
    }

    #[test]
    fn history_round_trips_on_undo_and_recover() {
        let mut g = Gshare::new(GshareConfig { ghr_bits: 8 });
        let v0 = g.ghr_value();
        let p = g.predict(0x4000, 0);
        g.undo(&p);
        assert_eq!(g.ghr_value(), v0);
        let p = g.predict(0x4000, 0);
        g.recover(&p, true);
        assert_eq!(g.ghr_value(), (v0 << 1 | 1) & 0xff);
    }

    #[test]
    fn adjacent_slots_never_alias() {
        // 16-byte bundle slots: PCs of consecutive slots differ by exactly
        // one unit after the `>> 4`, so under any fixed history a run of
        // consecutive slot PCs must index pairwise-distinct counters.
        let g = Gshare::new(GshareConfig { ghr_bits: 8 });
        for ghr in [0u64, 0x3F, 0xFF] {
            let idx: Vec<usize> = (0..32u64)
                .map(|s| g.index(0x4000_0000 + s * 16, ghr))
                .collect();
            for (i, a) in idx.iter().enumerate() {
                for (j, b) in idx.iter().enumerate().skip(i + 1) {
                    assert_ne!(a, b, "slots {i} and {j} alias under ghr={ghr:#x}");
                }
            }
        }
    }

    #[test]
    fn index_mixes_history() {
        let g = Gshare::new(GshareConfig { ghr_bits: 8 });
        assert_ne!(g.index(0x4000, 0b0000_0000), g.index(0x4000, 0b1111_0000));
    }
}
