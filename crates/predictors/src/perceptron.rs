//! Perceptron predictor (Jiménez & Lin, HPCA 2001), shared by the
//! conventional second-level branch predictor and the paper's predicate
//! predictor.

use crate::history::{GlobalHistory, LocalHistoryTable};
use crate::{BranchPredictor, Prediction, Tag};

/// Configuration of a perceptron predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerceptronConfig {
    /// Number of perceptron rows in the vector table.
    pub rows: usize,
    /// Global-history weights per row.
    pub ghr_bits: u32,
    /// Local-history weights per row.
    pub lhr_bits: u32,
    /// Entries in the local history table.
    pub lht_entries: usize,
    /// Training threshold; `None` selects the Jiménez & Lin rule
    /// `⌊1.93·h + 14⌋` for `h` total history bits.
    pub theta: Option<i32>,
}

impl PerceptronConfig {
    /// The paper's 148 KB configuration (Table 1): 30-bit GHR, 10-bit LHR.
    ///
    /// 41 signed 8-bit weights per row (1 bias + 30 global + 10 local);
    /// 3696 rows × 41 B = 148 KB of weight storage.
    pub fn paper_148kb() -> Self {
        PerceptronConfig {
            rows: 3696,
            ghr_bits: 30,
            lhr_bits: 10,
            lht_entries: 4096,
            theta: None,
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        PerceptronConfig {
            rows: 64,
            ghr_bits: 8,
            lhr_bits: 4,
            lht_entries: 64,
            theta: None,
        }
    }

    /// Weights per row (bias + global + local).
    pub fn weights_per_row(&self) -> usize {
        1 + self.ghr_bits as usize + self.lhr_bits as usize
    }

    /// Resolved training threshold.
    pub fn resolved_theta(&self) -> i32 {
        self.theta.unwrap_or_else(|| {
            let h = (self.ghr_bits + self.lhr_bits) as f64;
            (1.93 * h + 14.0).floor() as i32
        })
    }

    /// Weight-table budget in bytes (8-bit weights).
    pub fn table_bytes(&self) -> usize {
        self.rows * self.weights_per_row()
    }
}

/// The raw perceptron weight table: prediction and training arithmetic.
///
/// Kept separate from the [`PerceptronPredictor`] wrapper so the predicate
/// predictor can reuse it with its own indexing (two hash functions) and
/// history discipline.
#[derive(Clone, Debug)]
pub struct PerceptronTable {
    weights: Vec<i8>,
    cfg: PerceptronConfig,
    theta: i32,
}

impl PerceptronTable {
    /// Allocates an all-zero table.
    pub fn new(cfg: PerceptronConfig) -> Self {
        assert!(cfg.rows > 0, "perceptron table must have rows");
        PerceptronTable {
            weights: vec![0; cfg.rows * cfg.weights_per_row()],
            theta: cfg.resolved_theta(),
            cfg,
        }
    }

    /// The configuration this table was built with.
    pub fn config(&self) -> &PerceptronConfig {
        &self.cfg
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.cfg.rows
    }

    /// Training threshold in use.
    pub fn theta(&self) -> i32 {
        self.theta
    }

    /// Maps an instruction address to a row index (hash function *f1*).
    pub fn row_of(&self, pc: u64) -> usize {
        // Fibonacci hashing over the slot address; slots are 16 bytes apart.
        let h = (pc >> 4).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 16) % self.cfg.rows as u64) as usize
    }

    /// The paper's second hash function *f2*: "inverts the most significant
    /// bit of the first hash function", generalized to non-power-of-two row
    /// counts as an offset by half the table.
    pub fn row2_of(&self, pc: u64) -> usize {
        (self.row_of(pc) + self.cfg.rows / 2) % self.cfg.rows
    }

    /// Computes the perceptron output for `row` given history values.
    ///
    /// History bits enter as ±1; the sign of the sum is the prediction.
    pub fn dot(&self, row: usize, ghr: u64, lhr: u32) -> i32 {
        let w = self.row_weights(row);
        let mut sum = i32::from(w[0]); // bias
        for i in 0..self.cfg.ghr_bits as usize {
            let x = if (ghr >> i) & 1 == 1 { 1 } else { -1 };
            sum += i32::from(w[1 + i]) * x;
        }
        let base = 1 + self.cfg.ghr_bits as usize;
        for i in 0..self.cfg.lhr_bits as usize {
            let x = if (lhr >> i) & 1 == 1 { 1 } else { -1 };
            sum += i32::from(w[base + i]) * x;
        }
        sum
    }

    /// Perceptron learning rule: updates `row` if the prediction was wrong
    /// or the output magnitude was below the threshold.
    pub fn train(&mut self, row: usize, ghr: u64, lhr: u32, sum: i32, taken: bool) {
        let predicted = sum >= 0;
        if predicted == taken && sum.abs() > self.theta {
            return;
        }
        let t: i32 = if taken { 1 } else { -1 };
        let ghr_bits = self.cfg.ghr_bits as usize;
        let lhr_bits = self.cfg.lhr_bits as usize;
        let w = self.row_weights_mut(row);
        w[0] = sat_add(w[0], t);
        for i in 0..ghr_bits {
            let x = if (ghr >> i) & 1 == 1 { 1 } else { -1 };
            w[1 + i] = sat_add(w[1 + i], t * x);
        }
        let base = 1 + ghr_bits;
        for i in 0..lhr_bits {
            let x = if (lhr >> i) & 1 == 1 { 1 } else { -1 };
            w[base + i] = sat_add(w[base + i], t * x);
        }
    }

    /// Weight-table budget in bytes.
    pub fn size_bytes(&self) -> usize {
        self.weights.len()
    }

    fn row_weights(&self, row: usize) -> &[i8] {
        let n = self.cfg.weights_per_row();
        &self.weights[row * n..(row + 1) * n]
    }

    fn row_weights_mut(&mut self, row: usize) -> &mut [i8] {
        let n = self.cfg.weights_per_row();
        &mut self.weights[row * n..(row + 1) * n]
    }
}

#[inline]
fn sat_add(w: i8, d: i32) -> i8 {
    (i32::from(w) + d).clamp(i8::MIN as i32, i8::MAX as i32) as i8
}

/// The conventional perceptron *branch* predictor: one prediction per
/// conditional branch, keyed by the branch PC (the paper's 148 KB baseline).
#[derive(Clone, Debug)]
pub struct PerceptronPredictor {
    table: PerceptronTable,
    ghr: GlobalHistory,
    lht: LocalHistoryTable,
}

impl PerceptronPredictor {
    /// Builds the predictor from a configuration.
    pub fn new(cfg: PerceptronConfig) -> Self {
        PerceptronPredictor {
            ghr: GlobalHistory::new(cfg.ghr_bits.max(1)),
            lht: LocalHistoryTable::new(cfg.lht_entries, cfg.lhr_bits.max(1)),
            table: PerceptronTable::new(cfg),
        }
    }

    /// Current global history value (diagnostics).
    pub fn ghr_value(&self) -> u64 {
        self.ghr.value()
    }

    /// The underlying weight table (diagnostics).
    pub fn table(&self) -> &PerceptronTable {
        &self.table
    }
}

impl BranchPredictor for PerceptronPredictor {
    fn predict(&mut self, pc: u64, _guard: u8) -> Prediction {
        let row = self.table.row_of(pc);
        let ghr_before = self.ghr.value();
        let lhr_before = self.lht.read(pc);
        let sum = self.table.dot(row, ghr_before, lhr_before);
        let taken = sum >= 0;
        self.ghr.push(taken);
        let (lhr_idx, _) = self.lht.push(pc, taken);
        Prediction {
            taken,
            tag: Tag {
                ghr_before,
                lhr_before,
                lhr_idx: lhr_idx as u32,
                row: row as u32,
                row2: u32::MAX,
                sum,
                alt: 0,
            },
        }
    }

    fn train(&mut self, prediction: &Prediction, taken: bool) {
        let t = &prediction.tag;
        self.table
            .train(t.row as usize, t.ghr_before, t.lhr_before, t.sum, taken);
    }

    fn undo(&mut self, prediction: &Prediction) {
        let t = &prediction.tag;
        self.ghr.set(t.ghr_before);
        self.lht.restore(t.lhr_idx as usize, t.lhr_before);
    }

    fn recover(&mut self, prediction: &Prediction, taken: bool) {
        self.undo(prediction);
        self.ghr.push(taken);
        self.lht.push_at(prediction.tag.lhr_idx as usize, taken);
    }

    fn name(&self) -> &'static str {
        "perceptron"
    }

    fn size_bytes(&self) -> usize {
        self.table.size_bytes() + self.lht.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn learn(p: &mut PerceptronPredictor, pc: u64, pattern: &[bool], reps: usize) -> f64 {
        let mut wrong = 0usize;
        let mut total = 0usize;
        for _ in 0..reps {
            for &outcome in pattern {
                let pred = p.predict(pc, 0);
                if pred.taken != outcome {
                    wrong += 1;
                    p.recover(&pred, outcome);
                }
                p.train(&pred, outcome);
                total += 1;
            }
        }
        wrong as f64 / total as f64
    }

    #[test]
    fn theta_rule_matches_jimenez_lin() {
        let cfg = PerceptronConfig::paper_148kb();
        assert_eq!(cfg.resolved_theta(), (1.93f64 * 40.0 + 14.0).floor() as i32);
        let cfg = PerceptronConfig {
            theta: Some(10),
            ..cfg
        };
        assert_eq!(cfg.resolved_theta(), 10);
    }

    #[test]
    fn paper_config_is_148kb() {
        let cfg = PerceptronConfig::paper_148kb();
        assert_eq!(cfg.weights_per_row(), 41);
        assert_eq!(cfg.table_bytes(), 3696 * 41);
        // 151,536 B = 147.98 KB — the paper's "148 KB".
        assert!((147.0..149.0).contains(&(cfg.table_bytes() as f64 / 1024.0)));
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::tiny());
        let rate = learn(&mut p, 0x4000, &[true], 200);
        assert!(rate < 0.05, "always-taken should be learned, rate={rate}");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::tiny());
        let rate = learn(&mut p, 0x4000, &[true, false], 400);
        assert!(
            rate < 0.1,
            "T/N/T/N is linearly separable on history, rate={rate}"
        );
    }

    #[test]
    fn learns_period_four_pattern() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::tiny());
        let rate = learn(&mut p, 0x4000, &[true, true, false, false], 400);
        assert!(
            rate < 0.15,
            "period-4 pattern should be learned, rate={rate}"
        );
    }

    #[test]
    fn correlated_branches_are_learned() {
        // Branch B's outcome equals branch A's previous outcome: only
        // global history can capture this.
        let mut p = PerceptronPredictor::new(PerceptronConfig::tiny());
        let pc_a = 0x4000u64;
        let pc_b = 0x4100u64;
        let mut a_outcome;
        let mut wrong_b = 0;
        let mut total_b = 0;
        let mut i = 0u32;
        for _ in 0..600 {
            // A: pseudo-random-ish but deterministic pattern.
            i = i.wrapping_mul(1664525).wrapping_add(1013904223);
            a_outcome = (i >> 16) & 1 == 1;
            let pa = p.predict(pc_a, 0);
            if pa.taken != a_outcome {
                p.recover(&pa, a_outcome);
            }
            p.train(&pa, a_outcome);
            // B repeats A's outcome.
            let pb = p.predict(pc_b, 0);
            if pb.taken != a_outcome {
                wrong_b += 1;
                p.recover(&pb, a_outcome);
            }
            p.train(&pb, a_outcome);
            total_b += 1;
        }
        let rate = wrong_b as f64 / total_b as f64;
        assert!(rate < 0.15, "B is perfectly correlated with A, rate={rate}");
    }

    #[test]
    fn undo_restores_history_exactly() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::tiny());
        let before_ghr = p.ghr_value();
        let before_lhr = p.lht.read(0x4000);
        let pred = p.predict(0x4000, 0);
        assert_ne!(p.ghr_value(), u64::MAX, "sanity");
        p.undo(&pred);
        assert_eq!(p.ghr_value(), before_ghr);
        assert_eq!(p.lht.read(0x4000), before_lhr);
    }

    #[test]
    fn recover_inserts_actual_outcome() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::tiny());
        let pred = p.predict(0x4000, 0);
        p.recover(&pred, true);
        assert_eq!(p.ghr_value() & 1, 1);
        let pred2 = p.predict(0x4000, 0);
        p.recover(&pred2, false);
        assert_eq!(p.ghr_value() & 1, 0);
    }

    #[test]
    fn nested_undo_youngest_first_restores_everything() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::tiny());
        let g0 = p.ghr_value();
        let p1 = p.predict(0x4000, 0);
        let p2 = p.predict(0x4010, 0);
        let p3 = p.predict(0x4020, 0);
        p.undo(&p3);
        p.undo(&p2);
        p.undo(&p1);
        assert_eq!(p.ghr_value(), g0);
        assert_eq!(p.lht.read(0x4000), 0);
        assert_eq!(p.lht.read(0x4010), 0);
        assert_eq!(p.lht.read(0x4020), 0);
    }

    #[test]
    fn weights_saturate_at_i8_bounds() {
        let mut t = PerceptronTable::new(PerceptronConfig {
            theta: Some(i32::MAX), // always train
            ..PerceptronConfig::tiny()
        });
        for _ in 0..500 {
            let sum = t.dot(0, 0, 0);
            t.train(0, 0, 0, sum, true);
        }
        let sum = t.dot(0, 0, 0);
        // 13 weights bounded by i8 range: |sum| ≤ 13 × 128.
        assert!(sum <= 13 * 128);
        for _ in 0..2000 {
            let s = t.dot(0, 0, 0);
            t.train(0, 0, 0, s, false);
        }
        assert!(t.dot(0, 0, 0) >= -(13 * 128));
    }

    #[test]
    fn f2_differs_from_f1_and_stays_in_range() {
        let t = PerceptronTable::new(PerceptronConfig::paper_148kb());
        for pc in (0x4000u64..0x8000).step_by(16) {
            let r1 = t.row_of(pc);
            let r2 = t.row2_of(pc);
            assert!(r1 < t.rows());
            assert!(r2 < t.rows());
            assert_ne!(r1, r2, "f1 and f2 must map to different rows");
        }
    }

    #[test]
    fn rows_spread_across_table() {
        let t = PerceptronTable::new(PerceptronConfig::paper_148kb());
        let mut seen = std::collections::HashSet::new();
        for pc in (0x4000u64..0x4000 + 16 * 4096).step_by(16) {
            seen.insert(t.row_of(pc));
        }
        assert!(
            seen.len() > t.rows() / 2,
            "hash should spread: {} rows hit",
            seen.len()
        );
    }
}
