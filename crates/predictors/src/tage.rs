//! TAGE-family predictors: the stronger-baseline frontier (ROADMAP item 4).
//!
//! The paper's evaluation pits compare-PC-indexed predicate prediction
//! against gshare + perceptron baselines; this module asks whether the
//! conclusion survives stronger base predictors:
//!
//! * [`Tage`] — a TAGE branch predictor (Seznec & Michaud): a bimodal base
//!   table plus N partially-tagged tables indexed by geometrically growing
//!   global-history lengths. The longest-history tag match *provides* the
//!   prediction; the next match (or the base) is the *alternate*. Per-entry
//!   useful counters arbitrate allocation and age periodically.
//! * [`Tage`] with [`TageH2pConfig`] — a Bullseye-style variant ("Taming
//!   Wild Branches"): per-static-branch exec/mispredict counters identify
//!   hard-to-predict (H2P) sites online and promote them into a small
//!   dedicated side table of per-site local-history pattern predictors.
//!   Promotion and eviction are deterministic (threshold + score ratchet).
//! * [`TagePredicatePredictor`] — the hybrid: TAGE indexing applied to the
//!   *predicate* value table. It keeps everything the paper's predictor
//!   does at the interface — keyed by the compare PC, two-hash f1/f2 target
//!   split in the base table, one speculative global-history shift per
//!   fetched compare, §3.3 checkpoint/repair, per-row resetting confidence
//!   counters — and only replaces the perceptron dot-product with tagged
//!   geometric-history tables.
//!
//! All structures follow the crate's speculative-history discipline: the
//! global history shifts at prediction time with the predicted bit, tags
//! snapshot the pre-update state, and `undo`/`recover`/`repair` restore it
//! exactly. Byte budgets follow the sizing convention: per-component
//! `div_ceil(8)` over modeled bit widths.

use crate::confidence::ConfidenceTable;
use crate::history::GlobalHistory;
use crate::predicate::{CmpPrediction, PredicatePrediction};
use crate::{BranchPredictor, Prediction, Tag};

/// Geometry of the shared TAGE core (base + tagged tables).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TageConfig {
    /// Entries in the bimodal base table (power of two, 2-bit counters).
    pub base_entries: usize,
    /// Number of tagged tables.
    pub tables: usize,
    /// Entries per tagged table (power of two).
    pub table_entries: usize,
    /// Partial-tag width per tagged entry (bits, ≥ 2).
    pub tag_bits: u32,
    /// Shortest tagged history length.
    pub min_history: u32,
    /// Longest tagged history length (≤ 64: one machine word of GHR).
    pub max_history: u32,
    /// Allocations between useful-counter agings (`u >>= 1` sweeps).
    pub u_reset_period: u32,
}

impl TageConfig {
    /// The Table-1-comparable configuration: 32 Ki-entry bimodal base
    /// (8 KB) plus 8 × 8 Ki-entry tagged tables with 12-bit tags and
    /// 4..64 geometric histories (17 bits/entry → 139 264 B), 144 KiB
    /// total — the same budget class as the paper's 144–148 KB
    /// second-level predictors.
    pub fn paper_144kb() -> Self {
        TageConfig {
            base_entries: 1 << 15,
            tables: 8,
            table_entries: 1 << 13,
            tag_bits: 12,
            min_history: 4,
            max_history: 64,
            u_reset_period: 4096,
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        TageConfig {
            base_entries: 64,
            tables: 4,
            table_entries: 16,
            tag_bits: 8,
            min_history: 2,
            max_history: 16,
            u_reset_period: 64,
        }
    }

    /// Base-table bytes (2-bit counters).
    pub fn base_bytes(&self) -> usize {
        (self.base_entries * 2).div_ceil(8)
    }

    /// Tagged-table bytes (tag + 3-bit counter + 2-bit useful, per entry).
    pub fn tagged_bytes(&self) -> usize {
        let entry_bits = self.tag_bits as usize + 3 + 2;
        self.tables * (self.table_entries * entry_bits).div_ceil(8)
    }
}

/// The geometric history series L(i) = min·(max/min)^(i/(n-1)), computed
/// in 16.16 fixed point (no floats: identical on every platform), rounded
/// and forced strictly monotone with pinned endpoints.
pub fn geometric_histories(min: u32, max: u32, n: usize) -> Vec<u32> {
    assert!(n >= 1 && min >= 1 && max >= min && max <= 64);
    if n == 1 {
        return vec![max];
    }
    // Binary-search ratio r (16.16) with r^(n-1) ≈ max/min.
    let target = (u128::from(max) << 16) / u128::from(min);
    let pow = |r: u128, k: usize| -> u128 {
        let mut acc = 1u128 << 16;
        for _ in 0..k {
            acc = (acc * r) >> 16;
        }
        acc
    };
    let (mut lo, mut hi) = (1u128 << 16, u128::from(max) << 16);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if pow(mid, n - 1) <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut len_fp = u128::from(min) << 16;
    let mut prev = 0u32;
    for i in 0..n {
        let mut l = ((len_fp + (1 << 15)) >> 16) as u32;
        if i == 0 {
            l = min;
        }
        if i == n - 1 {
            l = max;
        }
        l = l.max(prev + 1).min(64);
        out.push(l);
        prev = l;
        len_fp = (len_fp * lo) >> 16;
    }
    out
}

/// XOR-folds the `len` newest history bits down to `bits` bits.
fn fold(hist: u64, len: u32, bits: u32) -> u32 {
    debug_assert!((1..=32).contains(&bits));
    let masked = if len >= 64 {
        hist
    } else {
        hist & ((1u64 << len) - 1)
    };
    let chunk = (1u64 << bits) - 1;
    let mut acc = 0u64;
    let mut h = masked;
    while h != 0 {
        acc ^= h & chunk;
        h >>= bits;
    }
    acc as u32
}

/// One tagged entry: partial tag, 3-bit direction counter, 2-bit useful.
#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: u8,
    u: u8,
}

/// A tag hit: which table, which row, counter value at lookup.
#[derive(Clone, Copy, Debug)]
struct Hit {
    table: usize,
    idx: usize,
    ctr: u8,
}

fn sat2(c: &mut u8, up: bool) {
    *c = if up {
        (*c + 1).min(3)
    } else {
        c.saturating_sub(1)
    };
}

fn sat3(c: &mut u8, up: bool) {
    *c = if up {
        (*c + 1).min(7)
    } else {
        c.saturating_sub(1)
    };
}

/// The tagged-table machinery shared by the branch predictor and the
/// TAGE-indexed predicate value table. Keys are arbitrary 64-bit values
/// (branch PC, or compare PC disambiguated per target).
#[derive(Clone, Debug)]
struct TaggedCore {
    entries_mask: usize,
    tag_bits: u32,
    hists: Vec<u32>,
    u_reset_period: u32,
    tabs: Vec<Vec<TaggedEntry>>,
    allocs: u32,
}

impl TaggedCore {
    fn new(
        tables: usize,
        entries: usize,
        tag_bits: u32,
        min_h: u32,
        max_h: u32,
        period: u32,
    ) -> Self {
        assert!(entries.is_power_of_two() && tables >= 1 && tag_bits >= 2);
        TaggedCore {
            entries_mask: entries - 1,
            tag_bits,
            hists: geometric_histories(min_h, max_h, tables),
            u_reset_period: period.max(1),
            tabs: vec![
                vec![
                    TaggedEntry {
                        tag: 0,
                        ctr: 3,
                        u: 0
                    };
                    entries
                ];
                tables
            ],
            allocs: 0,
        }
    }

    fn key_hash(key: u64) -> u32 {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as u32
    }

    fn index(&self, table: usize, key: u64, hist: u64) -> usize {
        let k = Self::key_hash(key);
        let idx_bits = (self.entries_mask + 1).trailing_zeros().max(1);
        let f = fold(hist, self.hists[table], idx_bits);
        ((k ^ k.rotate_right(table as u32 + 1) ^ f) as usize) & self.entries_mask
    }

    fn tag_of(&self, table: usize, key: u64, hist: u64) -> u16 {
        let k = Self::key_hash(key);
        let t1 = fold(hist, self.hists[table], self.tag_bits);
        let t2 = fold(hist, self.hists[table], self.tag_bits - 1) << 1;
        ((k ^ (k >> self.tag_bits) ^ t1 ^ t2) & ((1 << self.tag_bits) - 1)) as u16
    }

    /// Longest-history tag match (provider) and the next one (alternate).
    fn lookup(&self, key: u64, hist: u64) -> (Option<Hit>, Option<Hit>) {
        let mut provider = None;
        let mut alt = None;
        for table in (0..self.tabs.len()).rev() {
            let idx = self.index(table, key, hist);
            let e = self.tabs[table][idx];
            if e.tag == self.tag_of(table, key, hist) {
                let hit = Hit {
                    table,
                    idx,
                    ctr: e.ctr,
                };
                if provider.is_none() {
                    provider = Some(hit);
                } else {
                    alt = Some(hit);
                    break;
                }
            }
        }
        (provider, alt)
    }

    /// Commit-time update of the provider entry: direction counter, and —
    /// when provider and alternate disagreed — the useful counter.
    fn update_provider(&mut self, table: usize, idx: usize, taken: bool, own: bool, alt: bool) {
        let e = &mut self.tabs[table][idx];
        sat3(&mut e.ctr, taken);
        if own != alt {
            e.u = if own == taken {
                (e.u + 1).min(3)
            } else {
                e.u.saturating_sub(1)
            };
        }
    }

    /// Allocates a fresh entry in some table longer than the provider's
    /// after a misprediction: first zero-useful slot wins; if none, every
    /// candidate's useful counter is decremented instead (classic TAGE).
    /// Every allocation attempt ticks the aging clock.
    fn allocate(&mut self, start: usize, key: u64, hist: u64, taken: bool) {
        self.allocs += 1;
        if self.allocs >= self.u_reset_period {
            self.allocs = 0;
            self.age();
        }
        for table in start..self.tabs.len() {
            let idx = self.index(table, key, hist);
            if self.tabs[table][idx].u == 0 {
                self.tabs[table][idx] = TaggedEntry {
                    tag: self.tag_of(table, key, hist),
                    ctr: if taken { 4 } else { 3 },
                    u: 0,
                };
                return;
            }
        }
        for table in start..self.tabs.len() {
            let idx = self.index(table, key, hist);
            let e = &mut self.tabs[table][idx];
            e.u = e.u.saturating_sub(1);
        }
    }

    /// Gradual useful-counter aging: halve every counter.
    fn age(&mut self) {
        for t in &mut self.tabs {
            for e in t.iter_mut() {
                e.u >>= 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// H2P side table (Bullseye-style)
// ---------------------------------------------------------------------------

/// Geometry and policy of the H2P targeting machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TageH2pConfig {
    /// Entries in the per-static-branch exec/mispredict stats table
    /// (power of two, 16-bit tag + two 16-bit saturating counters).
    pub stats_entries: usize,
    /// Entries in the dedicated H2P side table (power of two).
    pub side_entries: usize,
    /// log2 of the per-site pattern counters (2-bit each).
    pub pattern_bits: u32,
    /// Per-site local-history width (bits, ≤ 32).
    pub site_lh_bits: u32,
    /// Side-table executions before its prediction is trusted.
    pub warmup_execs: u16,
    /// Executions a site needs before it can be promoted.
    pub min_execs: u16,
    /// Mispredicts a site needs before it can be promoted (keeps
    /// cold-start misses of easy branches below the bar).
    pub min_miss: u16,
    /// Promotion threshold: mispredict percentage (`miss·100 ≥ execs·pct`).
    pub promote_pct: u32,
}

impl TageH2pConfig {
    /// Default H2P sizing: 1 Ki-site stats table plus 64 dedicated side
    /// entries (16-bit local history, 64 pattern counters each) — under
    /// 8 KB on top of the TAGE core.
    pub fn paper_default() -> Self {
        TageH2pConfig {
            stats_entries: 1 << 10,
            side_entries: 64,
            pattern_bits: 6,
            site_lh_bits: 16,
            warmup_execs: 16,
            min_execs: 64,
            min_miss: 16,
            promote_pct: 8,
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        TageH2pConfig {
            stats_entries: 16,
            side_entries: 4,
            pattern_bits: 3,
            site_lh_bits: 8,
            warmup_execs: 4,
            min_execs: 8,
            min_miss: 4,
            promote_pct: 8,
        }
    }

    /// Stats-table bytes (16-bit tag + 16-bit execs + 16-bit miss).
    pub fn stats_bytes(&self) -> usize {
        (self.stats_entries * 48).div_ceil(8)
    }

    /// Side-table bytes (48-bit PC tag + local history + 2-bit patterns +
    /// 16-bit score + 16-bit execs per entry).
    pub fn side_bytes(&self) -> usize {
        let entry_bits =
            48 + self.site_lh_bits as usize + 2 * (1usize << self.pattern_bits) + 16 + 16;
        (self.side_entries * entry_bits).div_ceil(8)
    }
}

#[derive(Clone, Copy, Debug)]
struct StatEntry {
    tag: u16,
    execs: u16,
    miss: u16,
}

#[derive(Clone, Debug)]
struct SideEntry {
    /// Resident branch PC (`u64::MAX` = empty).
    pc: u64,
    /// Per-site local outcome history.
    lh: u32,
    /// 2-bit pattern counters indexed by the local history.
    pattern: Vec<u8>,
    /// Mispredict score at promotion time (eviction ratchet).
    score: u16,
    /// Executions since promotion (warmup gate).
    execs: u16,
}

/// Online H2P identification + the dedicated side predictor.
#[derive(Clone, Debug)]
struct H2p {
    cfg: TageH2pConfig,
    stats: Vec<StatEntry>,
    side: Vec<SideEntry>,
}

impl H2p {
    fn new(cfg: TageH2pConfig) -> Self {
        assert!(cfg.stats_entries.is_power_of_two() && cfg.side_entries.is_power_of_two());
        assert!(cfg.site_lh_bits >= 1 && cfg.site_lh_bits <= 32);
        H2p {
            stats: vec![
                StatEntry {
                    tag: 0,
                    execs: 0,
                    miss: 0
                };
                cfg.stats_entries
            ],
            side: vec![
                SideEntry {
                    pc: u64::MAX,
                    lh: 0,
                    pattern: vec![1; 1 << cfg.pattern_bits],
                    score: 0,
                    execs: 0,
                };
                cfg.side_entries
            ],
            cfg,
        }
    }

    fn hash(pc: u64) -> u64 {
        (pc >> 4).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn stat_slot(&self, pc: u64) -> (usize, u16) {
        let h = Self::hash(pc);
        (
            (h >> 16) as usize & (self.cfg.stats_entries - 1),
            (h >> 48) as u16,
        )
    }

    fn side_slot(&self, pc: u64) -> usize {
        (Self::hash(pc) >> 20) as usize & (self.cfg.side_entries - 1)
    }

    fn lh_mask(&self) -> u32 {
        if self.cfg.site_lh_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.cfg.site_lh_bits) - 1
        }
    }

    /// Side-table prediction: `(slot, direction)` for a resident, warm
    /// site; `None` otherwise.
    fn side_predict(&self, pc: u64) -> Option<(u32, bool)> {
        let s = self.side_slot(pc);
        let e = &self.side[s];
        if e.pc == pc && e.execs >= self.cfg.warmup_execs {
            let i = (e.lh as usize) & (e.pattern.len() - 1);
            Some((s as u32, e.pattern[i] >= 2))
        } else {
            None
        }
    }

    /// Whether `pc` currently owns a side-table entry (diagnostics).
    fn side_resident(&self, pc: u64) -> bool {
        self.side[self.side_slot(pc)].pc == pc
    }

    /// Commit-time update: side pattern/history for resident sites, then
    /// the exec/mispredict stats and the deterministic promotion check.
    fn train(&mut self, pc: u64, predicted: bool, taken: bool) {
        let lh_mask = self.lh_mask();
        let s = self.side_slot(pc);
        if self.side[s].pc == pc {
            let e = &mut self.side[s];
            let i = (e.lh as usize) & (e.pattern.len() - 1);
            sat2(&mut e.pattern[i], taken);
            e.lh = ((e.lh << 1) | u32::from(taken)) & lh_mask;
            e.execs = e.execs.saturating_add(1);
        }

        let (slot, tag) = self.stat_slot(pc);
        let e = &mut self.stats[slot];
        if e.tag != tag {
            // Direct-mapped with replace-on-mismatch: deterministic.
            *e = StatEntry {
                tag,
                execs: 0,
                miss: 0,
            };
        }
        e.execs = e.execs.saturating_add(1);
        if predicted != taken {
            e.miss = e.miss.saturating_add(1);
        }
        let (execs, miss) = (e.execs, e.miss);

        if execs >= self.cfg.min_execs
            && miss >= self.cfg.min_miss
            && u32::from(miss) * 100 >= u32::from(execs) * self.cfg.promote_pct
        {
            let side = &mut self.side[s];
            if side.pc == pc {
                side.score = side.score.max(miss);
            } else if side.pc == u64::MAX || miss > side.score {
                // Promote; evict only a strictly lower-scoring occupant.
                *side = SideEntry {
                    pc,
                    lh: 0,
                    pattern: vec![1; 1 << self.cfg.pattern_bits],
                    score: miss,
                    execs: 0,
                };
            }
        }
    }

    fn size_bytes(&self) -> usize {
        self.cfg.stats_bytes() + self.cfg.side_bytes()
    }
}

// ---------------------------------------------------------------------------
// The TAGE branch predictor
// ---------------------------------------------------------------------------

// Tag field packing for `Tage` predictions:
//   ghr_before — full pre-prediction global history (≤ 64 bits).
//   row        — provider row, or `u32::MAX` when the base provided.
//   row2       — provider table + 1 (0 = base table provided).
//   sum        — provider counter value at lookup.
//   lhr_idx    — bits 0..16: base row; bits 16..24: H2P side slot + 1.
//   lhr_before — flag bits below.
//   alt        — branch PC (needed for allocation and H2P bookkeeping).
const F_ALT_DIR: u32 = 1;
const F_OWN_DIR: u32 = 1 << 1;
const F_SIDE_USED: u32 = 1 << 2;
const PC_MASK: u64 = (1 << 48) - 1;

/// The TAGE branch predictor, optionally extended with the H2P side table.
#[derive(Clone, Debug)]
pub struct Tage {
    cfg: TageConfig,
    core: TaggedCore,
    base: Vec<u8>,
    ghr: GlobalHistory,
    h2p: Option<H2p>,
}

impl Tage {
    /// Builds the plain TAGE predictor.
    pub fn new(cfg: TageConfig) -> Self {
        assert!(cfg.base_entries.is_power_of_two() && cfg.base_entries <= 1 << 16);
        assert!(cfg.max_history >= 1 && cfg.max_history <= 64);
        Tage {
            core: TaggedCore::new(
                cfg.tables,
                cfg.table_entries,
                cfg.tag_bits,
                cfg.min_history,
                cfg.max_history,
                cfg.u_reset_period,
            ),
            base: vec![1; cfg.base_entries],
            ghr: GlobalHistory::new(cfg.max_history),
            h2p: None,
            cfg,
        }
    }

    /// Builds TAGE with the Bullseye-style H2P side table enabled.
    pub fn with_h2p(cfg: TageConfig, h2p: TageH2pConfig) -> Self {
        let mut t = Tage::new(cfg);
        t.h2p = Some(H2p::new(h2p));
        t
    }

    /// Whether the H2P extension is enabled.
    pub fn has_h2p(&self) -> bool {
        self.h2p.is_some()
    }

    /// The geometric history lengths, shortest table first (diagnostics).
    pub fn history_lengths(&self) -> &[u32] {
        &self.core.hists
    }

    /// Whether `pc` currently owns an H2P side-table entry (diagnostics).
    pub fn h2p_resident(&self, pc: u64) -> bool {
        self.h2p.as_ref().is_some_and(|h| h.side_resident(pc))
    }

    fn base_row(&self, pc: u64) -> usize {
        ((pc >> 4) as usize) & (self.cfg.base_entries - 1)
    }
}

impl BranchPredictor for Tage {
    fn predict(&mut self, pc: u64, _guard: u8) -> Prediction {
        let hist = self.ghr.value();
        let bidx = self.base_row(pc);
        let base_dir = self.base[bidx] >= 2;
        let (provider, alternate) = self.core.lookup(pc, hist);
        let (own_dir, prov_ctr, prov_row, prov_tbl) = match provider {
            Some(h) => (
                h.ctr >= 4,
                i32::from(h.ctr),
                h.idx as u32,
                h.table as u32 + 1,
            ),
            None => (base_dir, i32::from(self.base[bidx]), u32::MAX, 0),
        };
        let alt_dir = match alternate {
            Some(h) => h.ctr >= 4,
            None => base_dir,
        };

        let mut flags = 0u32;
        if alt_dir {
            flags |= F_ALT_DIR;
        }
        if own_dir {
            flags |= F_OWN_DIR;
        }
        let mut final_dir = own_dir;
        let mut slot_plus1 = 0u32;
        if let Some(h2p) = &self.h2p {
            if let Some((slot, dir)) = h2p.side_predict(pc) {
                final_dir = dir;
                flags |= F_SIDE_USED;
                slot_plus1 = slot + 1;
            }
        }
        self.ghr.push(final_dir);

        Prediction {
            taken: final_dir,
            tag: Tag {
                ghr_before: hist,
                lhr_before: flags,
                lhr_idx: (bidx as u32) | (slot_plus1 << 16),
                row: prov_row,
                row2: prov_tbl,
                sum: prov_ctr,
                alt: pc & PC_MASK,
            },
        }
    }

    fn train(&mut self, prediction: &Prediction, taken: bool) {
        let t = &prediction.tag;
        let pc = t.alt & PC_MASK;
        let hist = t.ghr_before;
        let bidx = (t.lhr_idx & 0xFFFF) as usize;
        let own_dir = t.lhr_before & F_OWN_DIR != 0;
        let alt_dir = t.lhr_before & F_ALT_DIR != 0;

        sat2(&mut self.base[bidx], taken);
        if t.row2 > 0 {
            self.core.update_provider(
                (t.row2 - 1) as usize,
                t.row as usize,
                taken,
                own_dir,
                alt_dir,
            );
        }
        if own_dir != taken {
            // Provider in table k = row2-1 → allocate in k+1.. (base: 0..).
            let start = t.row2 as usize;
            if start < self.core.tabs.len() {
                self.core.allocate(start, pc, hist, taken);
            }
        }
        if let Some(h2p) = self.h2p.as_mut() {
            h2p.train(pc, prediction.taken, taken);
        }
    }

    fn undo(&mut self, prediction: &Prediction) {
        self.ghr.set(prediction.tag.ghr_before);
    }

    fn recover(&mut self, prediction: &Prediction, taken: bool) {
        self.ghr.set(prediction.tag.ghr_before);
        self.ghr.push(taken);
    }

    fn name(&self) -> &'static str {
        if self.h2p.is_some() {
            "tage-h2p"
        } else {
            "tage"
        }
    }

    fn size_bytes(&self) -> usize {
        self.cfg.base_bytes()
            + self.cfg.tagged_bytes()
            + self.h2p.as_ref().map_or(0, H2p::size_bytes)
    }
}

// ---------------------------------------------------------------------------
// The TAGE-indexed predicate predictor
// ---------------------------------------------------------------------------

/// Configuration of the TAGE-indexed predicate value table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagePredicateConfig {
    /// Rows in the bimodal base PVT (power of two; the f1/f2 split
    /// addresses the two halves, so ≥ 2).
    pub base_rows: usize,
    /// Number of tagged tables.
    pub tables: usize,
    /// Entries per tagged table (power of two).
    pub table_entries: usize,
    /// Partial-tag width (bits, ≥ 2).
    pub tag_bits: u32,
    /// Shortest tagged history length.
    pub min_history: u32,
    /// Longest tagged history length (≤ 64).
    pub max_history: u32,
    /// Width of the per-row confidence counters (bits).
    pub conf_bits: u32,
    /// Allocations between useful-counter agings.
    pub u_reset_period: u32,
}

impl TagePredicateConfig {
    /// The Table-1-comparable configuration: 8 Ki-row bimodal base
    /// (2 048 B) + 8 × 8 Ki-entry tagged tables (139 264 B) + 3-bit
    /// per-base-row confidence (3 072 B) = 144 384 B ≈ 141 KiB — the
    /// same budget class as the paper's 148 KB predicate predictor.
    pub fn paper_144kb() -> Self {
        TagePredicateConfig {
            base_rows: 1 << 13,
            tables: 8,
            table_entries: 1 << 13,
            tag_bits: 12,
            min_history: 4,
            max_history: 64,
            conf_bits: 3,
            u_reset_period: 4096,
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        TagePredicateConfig {
            base_rows: 64,
            tables: 4,
            table_entries: 16,
            tag_bits: 8,
            min_history: 2,
            max_history: 16,
            conf_bits: 3,
            u_reset_period: 64,
        }
    }

    /// Maps the paper predictor's override geometry onto the TAGE-indexed
    /// variant, so `--pvt-rows`-style sweeps apply to both predicate
    /// schemes: perceptron rows → base rows, global-history bits → longest
    /// tagged history, confidence width carried over. Tagged capacity
    /// scales with the base (a quarter of the rows per table, floor 16).
    pub fn from_predicate(cfg: crate::PredicateConfig) -> Self {
        let base_rows = cfg.perceptron.rows.next_power_of_two().max(16);
        let max_history = cfg.perceptron.ghr_bits.clamp(8, 64);
        TagePredicateConfig {
            base_rows,
            tables: 4,
            table_entries: (base_rows / 4).max(16),
            tag_bits: 8,
            min_history: 2,
            max_history,
            conf_bits: cfg.conf_bits,
            u_reset_period: 256,
        }
    }

    /// Base-PVT bytes (2-bit counters).
    pub fn base_bytes(&self) -> usize {
        (self.base_rows * 2).div_ceil(8)
    }

    /// Tagged-table bytes.
    pub fn tagged_bytes(&self) -> usize {
        let entry_bits = self.tag_bits as usize + 3 + 2;
        self.tables * (self.table_entries * entry_bits).div_ceil(8)
    }
}

/// The TAGE-indexed predicate predictor.
///
/// Mirrors [`crate::PredicatePredictor`]'s interface exactly — same
/// [`CmpPrediction`]/[`PredicatePrediction`] types, same f1/f2 base-row
/// split, one speculative global-history shift per fetched compare, §3.3
/// repair — so the pipeline plumbing is shared. The two targets of a
/// compare are disambiguated in the tagged tables through the key
/// `(pc << 1) | target`, the TAGE analogue of the paper's two hashes over
/// one table.
#[derive(Clone, Debug)]
pub struct TagePredicatePredictor {
    cfg: TagePredicateConfig,
    core: TaggedCore,
    base: Vec<u8>,
    confidence: ConfidenceTable,
    ghr: GlobalHistory,
}

impl TagePredicatePredictor {
    /// Builds the predictor from a configuration.
    pub fn new(cfg: TagePredicateConfig) -> Self {
        assert!(cfg.base_rows.is_power_of_two() && cfg.base_rows >= 2);
        assert!(cfg.max_history >= 1 && cfg.max_history <= 64);
        TagePredicatePredictor {
            core: TaggedCore::new(
                cfg.tables,
                cfg.table_entries,
                cfg.tag_bits,
                cfg.min_history,
                cfg.max_history,
                cfg.u_reset_period,
            ),
            base: vec![1; cfg.base_rows],
            confidence: ConfidenceTable::new(cfg.base_rows, cfg.conf_bits),
            ghr: GlobalHistory::new(cfg.max_history),
            cfg,
        }
    }

    /// Current global history value (diagnostics).
    pub fn ghr_value(&self) -> u64 {
        self.ghr.value()
    }

    /// Rows in the bimodal base PVT (geometry-override diagnostics).
    pub fn base_rows(&self) -> usize {
        self.cfg.base_rows
    }

    /// The f1 hash: base row of the first (true) target.
    pub fn row_of(&self, pc: u64) -> usize {
        (((pc >> 4).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize) & (self.cfg.base_rows - 1)
    }

    /// The f2 hash: base row of the second (false) target — the other
    /// half of the table, exactly the paper's most-significant-bit flip.
    pub fn row2_of(&self, pc: u64) -> usize {
        (self.row_of(pc) + self.cfg.base_rows / 2) & (self.cfg.base_rows - 1)
    }

    fn predict_target(
        &self,
        pc: u64,
        target_bit: bool,
        base_row: usize,
        hist: u64,
    ) -> PredicatePrediction {
        let key = (pc << 1) | u64::from(target_bit);
        let base_dir = self.base[base_row] >= 2;
        let (provider, alternate) = self.core.lookup(key, hist);
        let (value, prov_ctr, prov_row, prov_tbl) = match provider {
            Some(h) => (
                h.ctr >= 4,
                i32::from(h.ctr),
                h.idx as u32,
                h.table as u32 + 1,
            ),
            None => (base_dir, i32::from(self.base[base_row]), u32::MAX, 0),
        };
        let alt_dir = match alternate {
            Some(h) => h.ctr >= 4,
            None => base_dir,
        };
        let mut flags = 0u32;
        if alt_dir {
            flags |= F_ALT_DIR;
        }
        if value {
            flags |= F_OWN_DIR;
        }
        PredicatePrediction {
            value,
            confident: self.confidence.is_confident(base_row),
            tag: Tag {
                ghr_before: hist,
                lhr_before: flags,
                lhr_idx: base_row as u32,
                row: prov_row,
                row2: prov_tbl,
                sum: prov_ctr,
                alt: key & ((PC_MASK << 1) | 1),
            },
        }
    }

    /// Generates predictions for a fetched compare at `pc`; same contract
    /// as [`crate::PredicatePredictor::predict_compare`]: with both
    /// targets real, `pt` uses the f1 base row and `pf` the f2 row; with
    /// one, the single prediction uses f1. The global history shifts once,
    /// with the primary predicted bit.
    pub fn predict_compare(&mut self, pc: u64, need_pt: bool, need_pf: bool) -> CmpPrediction {
        let hist = self.ghr.value();
        let (pt, pf) = match (need_pt, need_pf) {
            (true, true) => (
                Some(self.predict_target(pc, false, self.row_of(pc), hist)),
                Some(self.predict_target(pc, true, self.row2_of(pc), hist)),
            ),
            (true, false) => (
                Some(self.predict_target(pc, false, self.row_of(pc), hist)),
                None,
            ),
            (false, true) => (
                None,
                Some(self.predict_target(pc, false, self.row_of(pc), hist)),
            ),
            (false, false) => (None, None),
        };
        let pushed = if let Some(primary) = pt.as_ref().or(pf.as_ref()) {
            self.ghr.push(primary.value);
            true
        } else {
            false
        };
        CmpPrediction {
            pt,
            pf,
            ghr_pushed: pushed,
        }
    }

    /// Trains one prediction with the computed predicate value and updates
    /// its confidence counter. Called when the compare's value commits.
    pub fn train(&mut self, prediction: &PredicatePrediction, actual: bool) {
        let t = &prediction.tag;
        let key = t.alt;
        let hist = t.ghr_before;
        let base_row = t.lhr_idx as usize;
        let own_dir = t.lhr_before & F_OWN_DIR != 0;
        let alt_dir = t.lhr_before & F_ALT_DIR != 0;

        sat2(&mut self.base[base_row], actual);
        if t.row2 > 0 {
            self.core.update_provider(
                (t.row2 - 1) as usize,
                t.row as usize,
                actual,
                own_dir,
                alt_dir,
            );
        }
        if own_dir != actual {
            let start = t.row2 as usize;
            if start < self.core.tabs.len() {
                self.core.allocate(start, key, hist, actual);
            }
        }
        self.confidence.record(base_row, prediction.value == actual);
    }

    /// Reverts the speculative history update of a squashed compare.
    /// Must be applied youngest-first when unwinding several compares.
    pub fn undo_compare(&mut self, prediction: &CmpPrediction) {
        if !prediction.ghr_pushed {
            return;
        }
        if let Some(primary) = prediction.primary() {
            self.ghr.set(primary.tag.ghr_before);
        }
    }

    /// Repairs the history bit a mispredicted compare inserted `age`
    /// pushes ago; same contract as
    /// [`crate::PredicatePredictor::fix_history_bit`].
    pub fn fix_history_bit(&mut self, age: u32, actual: bool) -> bool {
        self.ghr.fix_recent_bit(age, actual)
    }

    /// §3.3 history repair for a detected compare misprediction: corrects
    /// the global-history bit (`ghr_age` pushes old) with the primary
    /// target's computed value. The TAGE variant keeps no local history,
    /// so there is no local bit to fix.
    pub fn repair_history(
        &mut self,
        _prediction: &PredicatePrediction,
        primary_actual: bool,
        ghr_age: u32,
    ) {
        let _ = self.fix_history_bit(ghr_age, primary_actual);
    }

    /// Whether a base row's confidence counter is currently saturated.
    pub fn is_confident_row(&self, row: u32) -> bool {
        self.confidence.is_confident(row as usize)
    }

    /// Hardware budget in bytes (base PVT + tagged tables + confidence).
    pub fn size_bytes(&self) -> usize {
        self.cfg.base_bytes() + self.cfg.tagged_bytes() + self.confidence.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_histories_are_monotone_with_pinned_endpoints() {
        let h = geometric_histories(4, 64, 8);
        assert_eq!(h.len(), 8);
        assert_eq!(h[0], 4);
        assert_eq!(h[7], 64);
        assert!(h.windows(2).all(|w| w[0] < w[1]), "{h:?}");
        // The series must actually be geometric-ish, not linear: the last
        // step is much larger than the first.
        assert!(h[7] - h[6] > 3 * (h[1] - h[0]), "{h:?}");
        assert_eq!(geometric_histories(2, 16, 4), vec![2, 4, 8, 16]);
        assert_eq!(geometric_histories(5, 5, 1), vec![5]);
    }

    fn drive(p: &mut Tage, pc: u64, outcomes: &[bool]) -> f64 {
        let mut wrong = 0usize;
        for &o in outcomes {
            let pred = p.predict(pc, 0);
            if pred.taken != o {
                wrong += 1;
                p.recover(&pred, o);
            }
            p.train(&pred, o);
        }
        wrong as f64 / outcomes.len() as f64
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = Tage::new(TageConfig::tiny());
        let rate = drive(&mut p, 0x4000, &[true].repeat(300));
        assert!(rate < 0.05, "rate={rate}");
    }

    #[test]
    fn learns_alternating_branch_via_tagged_tables() {
        // An alternating branch defeats the bimodal base (it oscillates
        // between weak states) but a 1-deep history distinguishes the
        // phases: the tagged tables must take over as provider.
        let mut p = Tage::new(TageConfig::tiny());
        let rate = drive(&mut p, 0x4000, &[true, false].repeat(400));
        assert!(rate < 0.1, "rate={rate}");
        let pred = p.predict(0x4000, 0);
        assert!(pred.tag.row2 > 0, "provider must be a tagged table");
        p.undo(&pred);
    }

    #[test]
    fn provider_and_altpred_selection() {
        let mut p = Tage::new(TageConfig::tiny());
        // Before any allocation the base provides (row2 == 0).
        let first = p.predict(0x4000, 0);
        assert_eq!(first.tag.row2, 0, "cold predictor: base provides");
        p.undo(&first);
        // After the alternating pattern is learned, a tagged entry
        // provides and the packed flags carry both directions.
        drive(&mut p, 0x4000, &[true, false].repeat(400));
        let pred = p.predict(0x4000, 0);
        assert!(pred.tag.row2 > 0, "tagged provider expected");
        let own = pred.tag.lhr_before & F_OWN_DIR != 0;
        assert_eq!(pred.taken, own, "prediction follows the provider");
        p.undo(&pred);
    }

    #[test]
    fn tag_match_vs_alias() {
        // Two PCs that collide on a table-0 row must be separated by
        // their partial tags: training one never installs a provider
        // entry the other matches.
        let p = Tage::new(TageConfig::tiny());
        let hist = 0u64;
        let a = 0x4000u64;
        let idx_a = p.core.index(0, a, hist);
        let tag_a = p.core.tag_of(0, a, hist);
        let b = (0x4010..0x8000)
            .step_by(16)
            .find(|&b| p.core.index(0, b, hist) == idx_a && p.core.tag_of(0, b, hist) != tag_a)
            .expect("some PC collides on the row with a different tag");
        // Install A's entry directly (allocation path) and verify B
        // misses while A hits.
        let mut p = p;
        p.core.allocate(0, a, hist, true);
        let (prov_a, _) = p.core.lookup(a, hist);
        let (prov_b, _) = p.core.lookup(b, hist);
        assert!(matches!(prov_a, Some(h) if h.table == 0 && h.idx == idx_a));
        assert!(
            prov_b.is_none() || prov_b.unwrap().idx != idx_a || prov_b.unwrap().table != 0,
            "aliasing PC must not tag-match A's entry"
        );
    }

    #[test]
    fn useful_counters_age_by_halving() {
        let mut p = Tage::new(TageConfig::tiny());
        p.core.tabs[0][0].u = 3;
        p.core.tabs[1][1].u = 1;
        p.core.age();
        assert_eq!(p.core.tabs[0][0].u, 1);
        assert_eq!(p.core.tabs[1][1].u, 0);
        // End to end: u_reset_period allocations tick the aging clock.
        p.core.tabs[0][0].u = 3;
        for i in 0..TageConfig::tiny().u_reset_period {
            p.core
                .allocate(1, 0x9000 + u64::from(i) * 16, u64::from(i), i % 2 == 0);
        }
        assert!(p.core.tabs[0][0].u < 3, "periodic aging must have fired");
    }

    #[test]
    fn useful_counter_protects_entries_from_allocation() {
        let mut p = Tage::new(TageConfig::tiny());
        let hist = 0x15u64;
        let pc = 0x4000u64;
        // Fill every candidate slot for (pc, hist) with u > 0.
        for t in 0..p.core.tabs.len() {
            let idx = p.core.index(t, pc, hist);
            p.core.tabs[t][idx] = TaggedEntry {
                tag: 0x7F,
                ctr: 7,
                u: 2,
            };
        }
        p.core.allocate(0, pc, hist, true);
        // No entry stole: all tags unchanged, every u decremented.
        for t in 0..p.core.tabs.len() {
            let idx = p.core.index(t, pc, hist);
            assert_eq!(p.core.tabs[t][idx].tag, 0x7F, "protected entry survives");
            assert_eq!(p.core.tabs[t][idx].u, 1, "useful counters decremented");
        }
        // A second allocation now finds u still > 0 ... and a third
        // succeeds once the counters reach zero.
        p.core.allocate(0, pc, hist, true);
        p.core.allocate(0, pc, hist, true);
        let hit = (0..p.core.tabs.len()).any(|t| {
            let idx = p.core.index(t, pc, hist);
            p.core.tabs[t][idx].tag == p.core.tag_of(t, pc, hist)
        });
        assert!(hit, "allocation lands once protection decays");
    }

    #[test]
    fn undo_and_recover_restore_history_exactly() {
        let mut p = Tage::new(TageConfig::tiny());
        let g0 = p.ghr.value();
        let a = p.predict(0x4000, 0);
        let b = p.predict(0x4010, 0);
        p.undo(&b);
        p.undo(&a);
        assert_eq!(p.ghr.value(), g0);
        let c = p.predict(0x4000, 0);
        p.recover(&c, !c.taken);
        assert_eq!(p.ghr.value(), ((g0 << 1) | u64::from(!c.taken)) & 0xFFFF);
    }

    #[test]
    fn h2p_promotion_is_deterministic_and_gated() {
        let run = || {
            let mut p = Tage::with_h2p(TageConfig::tiny(), TageH2pConfig::tiny());
            let pc = 0x4000u64;
            // A pseudo-random direction stream the tiny TAGE mispredicts
            // often: the site must cross the promotion threshold.
            let mut x = 99u32;
            for _ in 0..200 {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                let o = (x >> 13) & 1 == 1;
                let pred = p.predict(pc, 0);
                if pred.taken != o {
                    p.recover(&pred, o);
                }
                p.train(&pred, o);
            }
            assert!(p.h2p_resident(pc), "H2P site must be promoted");
            p
        };
        let a = run();
        let b = run();
        // Determinism: identical state → identical next predictions.
        let (mut a, mut b) = (a, b);
        for pc in [0x4000u64, 0x4800, 0x5000] {
            let pa = a.predict(pc, 0);
            let pb = b.predict(pc, 0);
            assert_eq!(pa, pb, "replays must agree at {pc:#x}");
        }
    }

    #[test]
    fn h2p_never_promotes_easy_branches() {
        let mut p = Tage::with_h2p(TageConfig::tiny(), TageH2pConfig::tiny());
        let pc = 0x4000u64;
        for _ in 0..300 {
            let pred = p.predict(pc, 0);
            if pred.taken {
                p.train(&pred, true);
            } else {
                p.recover(&pred, true);
                p.train(&pred, true);
            }
        }
        assert!(
            !p.h2p_resident(pc),
            "an always-taken branch stays below the mispredict threshold"
        );
    }

    #[test]
    fn h2p_eviction_prefers_higher_scores() {
        let cfg = TageH2pConfig::tiny();
        let mut h = H2p::new(cfg);
        // Find two PCs sharing a side slot.
        let a = 0x4000u64;
        let slot = h.side_slot(a);
        let b = (0x4010..0x40000)
            .step_by(16)
            .find(|&b| h.side_slot(b) == slot)
            .expect("side slots collide eventually");
        // A becomes resident with a modest score.
        for i in 0..cfg.min_execs {
            h.train(a, i % 2 == 0, i % 2 == 1); // 100% mispredict
        }
        assert!(h.side_resident(a));
        let score_a = h.side[slot].score;
        // B mispredicts more in absolute count → must evict A.
        for i in 0..(cfg.min_execs * 4) {
            h.train(b, i % 2 == 0, i % 2 == 1);
        }
        assert!(h.side_resident(b), "higher-scoring site evicts");
        assert!(h.side[slot].score > score_a);
        // A, returning with a *lower* score than B's ratchet, cannot
        // evict B back (deterministic, no ping-pong).
        h.stats = vec![
            StatEntry {
                tag: 0,
                execs: 0,
                miss: 0
            };
            cfg.stats_entries
        ];
        for i in 0..cfg.min_execs {
            h.train(a, i % 2 == 0, i % 2 == 1);
        }
        assert!(h.side_resident(b), "lower score must not evict");
    }

    #[test]
    fn names_and_sizes_are_pinned() {
        let t = Tage::new(TageConfig::paper_144kb());
        assert_eq!(t.name(), "tage");
        assert_eq!(t.size_bytes(), 147_456, "144 KiB core");
        let h = Tage::with_h2p(TageConfig::paper_144kb(), TageH2pConfig::paper_default());
        assert_eq!(h.name(), "tage-h2p");
        assert_eq!(h.size_bytes(), 155_392, "core + stats + side table");
        let pp = TagePredicatePredictor::new(TagePredicateConfig::paper_144kb());
        assert_eq!(pp.size_bytes(), 144_384, "base + tagged + confidence");
    }

    // --- TAGE-indexed predicate predictor -------------------------------

    fn drive_pvt(p: &mut TagePredicatePredictor, pc: u64, outcomes: &[bool]) -> f64 {
        let mut wrong = 0usize;
        for &o in outcomes {
            let cp = p.predict_compare(pc, true, false);
            let pt = cp.pt.unwrap();
            if pt.value != o {
                wrong += 1;
                p.fix_history_bit(0, o);
            }
            p.train(&pt, o);
        }
        wrong as f64 / outcomes.len() as f64
    }

    #[test]
    fn predicate_variant_learns_biased_and_alternating() {
        let mut p = TagePredicatePredictor::new(TagePredicateConfig::tiny());
        assert!(drive_pvt(&mut p, 0x4000, &[true].repeat(300)) < 0.05);
        let mut p = TagePredicatePredictor::new(TagePredicateConfig::tiny());
        assert!(drive_pvt(&mut p, 0x4000, &[true, false].repeat(400)) < 0.1);
    }

    #[test]
    fn predicate_two_targets_use_f1_and_f2_rows() {
        let mut p = TagePredicatePredictor::new(TagePredicateConfig::tiny());
        let cp = p.predict_compare(0x4000, true, true);
        let (pt, pf) = (cp.pt.unwrap(), cp.pf.unwrap());
        assert_ne!(pt.tag.lhr_idx, pf.tag.lhr_idx, "f1 and f2 base rows differ");
        assert_eq!(pt.tag.lhr_idx as usize, p.row_of(0x4000));
        assert_eq!(pf.tag.lhr_idx as usize, p.row2_of(0x4000));
        assert!(cp.ghr_pushed);
        // Single-target compares use f1.
        let cp = p.predict_compare(0x4000, false, true);
        assert_eq!(cp.pf.unwrap().tag.lhr_idx as usize, p.row_of(0x4000));
        assert!(cp.pt.is_none());
    }

    #[test]
    fn predicate_ghr_shifts_once_per_compare() {
        let mut p = TagePredicatePredictor::new(TagePredicateConfig::tiny());
        let g0 = p.ghr_value();
        let cp = p.predict_compare(0x4000, true, true);
        let expected = ((g0 << 1) | u64::from(cp.pt.unwrap().value)) & 0xFFFF;
        assert_eq!(p.ghr_value(), expected);
        // p0-only compares make no prediction and no shift.
        let g1 = p.ghr_value();
        let cp = p.predict_compare(0x4010, false, false);
        assert!(cp.pt.is_none() && cp.pf.is_none() && !cp.ghr_pushed);
        assert_eq!(p.ghr_value(), g1);
        p.undo_compare(&cp);
        assert_eq!(p.ghr_value(), g1);
    }

    #[test]
    fn predicate_undo_and_repair_restore_history() {
        let mut p = TagePredicatePredictor::new(TagePredicateConfig::tiny());
        let g0 = p.ghr_value();
        let a = p.predict_compare(0x4000, true, false);
        let b = p.predict_compare(0x4010, true, true);
        p.undo_compare(&b);
        p.undo_compare(&a);
        assert_eq!(p.ghr_value(), g0);
        // Repair flips only the aged bit.
        let a = p.predict_compare(0x4000, true, false);
        let _b = p.predict_compare(0x4010, true, false);
        let _c = p.predict_compare(0x4020, true, false);
        let before = p.ghr_value();
        let pt = a.pt.unwrap();
        p.repair_history(&pt, !pt.value, 2);
        assert_eq!(p.ghr_value() ^ before, 0b100, "only the age-2 bit changed");
    }

    #[test]
    fn predicate_confidence_tracks_per_row_accuracy() {
        let mut p = TagePredicatePredictor::new(TagePredicateConfig::tiny());
        let mut last = None;
        for _ in 0..64 {
            let cp = p.predict_compare(0x4000, true, false);
            let pt = cp.pt.unwrap();
            if !pt.value {
                p.fix_history_bit(0, true);
            }
            p.train(&pt, true);
            last = Some(pt);
        }
        let row = last.unwrap().tag.lhr_idx;
        assert!(p.is_confident_row(row), "steady predicate gains confidence");
        let cp = p.predict_compare(0x4000, true, false);
        let pt = cp.pt.unwrap();
        assert!(pt.confident);
        p.train(&pt, !pt.value);
        assert!(!p.is_confident_row(row), "misprediction zeroes confidence");
    }

    #[test]
    fn predicate_override_mapping_carries_geometry() {
        let small = crate::PredicateConfig {
            perceptron: crate::PerceptronConfig {
                rows: 128,
                ..crate::PerceptronConfig::tiny()
            },
            conf_bits: 2,
        };
        let cfg = TagePredicateConfig::from_predicate(small);
        assert_eq!(cfg.base_rows, 128);
        assert_eq!(cfg.conf_bits, 2);
        let p = TagePredicatePredictor::new(cfg);
        assert_eq!(p.base_rows(), 128);
    }
}
