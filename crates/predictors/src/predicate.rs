//! The paper's contribution: a perceptron **predicate** predictor
//! (§3.1/§3.3).
//!
//! Instead of predicting a conditional branch at its own fetch, the scheme
//! predicts the *output of the compare instruction* that produces the
//! branch's guarding predicate:
//!
//! * prediction is initiated at the **compare's** fetch, keyed by the
//!   compare PC — branches take no part in prediction generation,
//! * compares can produce **two** predicates, so a single perceptron vector
//!   table (PVT) is accessed through two hash functions: `f1` indexes the
//!   whole table; `f2` "inverts the most significant bit" of `f1`. When one
//!   of the targets is the read-only `p0`, only one prediction is generated
//!   (through `f1`), reducing aliasing pressure,
//! * the global history shifts **once per fetched compare** — not once per
//!   branch — so if-conversion cannot erase correlation information: the
//!   compares stay in the code even when their branches are removed,
//! * each PVT row carries a resetting saturating **confidence counter**
//!   used by selective predicate prediction (§3.2).
//!
//! The predictions themselves are *stored in the predicate physical
//! register file* and consumed by branches or predicated instructions at
//! rename; that plumbing lives in `ppsim-pipeline`. This module only models
//! the prediction structures.

use crate::confidence::ConfidenceTable;
use crate::history::{GlobalHistory, LocalHistoryTable};
use crate::perceptron::{PerceptronConfig, PerceptronTable};
use crate::Tag;

/// Configuration of the predicate predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredicateConfig {
    /// The underlying perceptron geometry (identical to the conventional
    /// predictor's in the paper: "same size and latency and analogous
    /// configurations").
    pub perceptron: PerceptronConfig,
    /// Width of the per-row confidence counters (bits).
    pub conf_bits: u32,
}

impl PredicateConfig {
    /// The paper's 148 KB configuration plus 3-bit resetting confidence
    /// counters (conservative selective prediction: cancel only guards the
    /// predictor has been right about seven times in a row, keeping
    /// wrong-cancel flushes rare).
    pub fn paper_148kb() -> Self {
        PredicateConfig {
            perceptron: PerceptronConfig::paper_148kb(),
            conf_bits: 3,
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        PredicateConfig {
            perceptron: PerceptronConfig::tiny(),
            conf_bits: 3,
        }
    }
}

/// One predicted predicate value with its confidence and recovery tag.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredicatePrediction {
    /// Predicted predicate value.
    pub value: bool,
    /// Whether the row's confidence counter is saturated.
    pub confident: bool,
    /// Training/recovery snapshot.
    pub tag: Tag,
}

/// The (up to two) predictions generated when a compare is fetched.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CmpPrediction {
    /// Prediction for the first (true) target, if it is a real register.
    pub pt: Option<PredicatePrediction>,
    /// Prediction for the second (false) target, if it is a real register.
    pub pf: Option<PredicatePrediction>,
    /// Whether this compare shifted the global history (true iff at least
    /// one prediction was generated).
    pub ghr_pushed: bool,
}

impl CmpPrediction {
    /// Convenience: the prediction that fed the history, if any.
    pub fn primary(&self) -> Option<&PredicatePrediction> {
        self.pt.as_ref().or(self.pf.as_ref())
    }
}

/// The predicate perceptron predictor (Figure 4 of the paper).
#[derive(Clone, Debug)]
pub struct PredicatePredictor {
    pvt: PerceptronTable,
    confidence: ConfidenceTable,
    ghr: GlobalHistory,
    lht: LocalHistoryTable,
    /// Pushes per local-history entry, for exact repair of the bit a
    /// mispredicted compare inserted (tags record the count at push time
    /// in [`Tag::alt`]).
    lht_counts: Vec<u64>,
}

impl PredicatePredictor {
    /// Builds the predictor from a configuration.
    pub fn new(cfg: PredicateConfig) -> Self {
        let p = cfg.perceptron;
        PredicatePredictor {
            ghr: GlobalHistory::new(p.ghr_bits.max(1)),
            lht: LocalHistoryTable::new(p.lht_entries, p.lhr_bits.max(1)),
            confidence: ConfidenceTable::new(p.rows, cfg.conf_bits),
            lht_counts: vec![0; p.lht_entries.next_power_of_two()],
            pvt: PerceptronTable::new(p),
        }
    }

    /// Current global history value (diagnostics).
    pub fn ghr_value(&self) -> u64 {
        self.ghr.value()
    }

    /// The underlying perceptron table (diagnostics).
    pub fn table(&self) -> &PerceptronTable {
        &self.pvt
    }

    /// Generates predictions for a fetched compare at `pc`.
    ///
    /// `need_pt`/`need_pf` say which targets name real (non-`p0`)
    /// registers. With both set, `pt` uses hash `f1` and `pf` uses `f2`;
    /// with one set, the single prediction uses `f1` (paper §3.3). The
    /// global and local histories shift once, with the primary predicted
    /// bit.
    pub fn predict_compare(&mut self, pc: u64, need_pt: bool, need_pf: bool) -> CmpPrediction {
        let ghr_before = self.ghr.value();
        let lhr_before = self.lht.read(pc);
        let lhr_idx = self.lht.index_of(pc) as u32;

        let mk = |row: usize, this: &Self| -> PredicatePrediction {
            let sum = this.pvt.dot(row, ghr_before, lhr_before);
            PredicatePrediction {
                value: sum >= 0,
                confident: this.confidence.is_confident(row),
                tag: Tag {
                    ghr_before,
                    lhr_before,
                    lhr_idx,
                    row: row as u32,
                    row2: u32::MAX,
                    sum,
                    alt: 0,
                },
            }
        };

        let (pt, pf) = match (need_pt, need_pf) {
            (true, true) => {
                let a = mk(self.pvt.row_of(pc), self);
                let b = mk(self.pvt.row2_of(pc), self);
                (Some(a), Some(b))
            }
            (true, false) => (Some(mk(self.pvt.row_of(pc), self)), None),
            (false, true) => (None, Some(mk(self.pvt.row_of(pc), self))),
            (false, false) => (None, None),
        };

        let mut pt = pt;
        let mut pf = pf;
        let pushed = if let Some(primary) = pt.as_ref().or(pf.as_ref()) {
            self.ghr.push(primary.value);
            self.lht.push(pc, primary.value);
            self.lht_counts[lhr_idx as usize] += 1;
            let count = self.lht_counts[lhr_idx as usize];
            if let Some(p) = pt.as_mut() {
                p.tag.alt = count;
            }
            if let Some(p) = pf.as_mut() {
                p.tag.alt = count;
            }
            true
        } else {
            false
        };

        CmpPrediction {
            pt,
            pf,
            ghr_pushed: pushed,
        }
    }

    /// Trains one prediction with the computed predicate value and updates
    /// its confidence counter. Called when the compare's value commits.
    pub fn train(&mut self, prediction: &PredicatePrediction, actual: bool) {
        let t = &prediction.tag;
        self.pvt
            .train(t.row as usize, t.ghr_before, t.lhr_before, t.sum, actual);
        self.confidence
            .record(t.row as usize, prediction.value == actual);
    }

    /// Reverts the speculative history update of a squashed compare.
    /// Must be applied youngest-first when unwinding several compares.
    pub fn undo_compare(&mut self, prediction: &CmpPrediction) {
        if !prediction.ghr_pushed {
            return;
        }
        if let Some(primary) = prediction.primary() {
            let t = &primary.tag;
            self.ghr.set(t.ghr_before);
            self.lht.restore(t.lhr_idx as usize, t.lhr_before);
        }
    }

    /// Repairs the history bit a mispredicted compare inserted `age` pushes
    /// ago (0 = most recent surviving push).
    ///
    /// This is the §3.3 recovery: the flush point is the *consumer*, so
    /// compares between producer and consumer survive with predictions made
    /// on corrupted history; only the history register itself is corrected.
    ///
    /// Returns `false` when the bit has already been shifted out of the
    /// global history (a corruption window longer than the history width)
    /// — a legitimate no-repair outcome, mirroring
    /// [`GlobalHistory::fix_recent_bit`].
    pub fn fix_history_bit(&mut self, age: u32, actual: bool) -> bool {
        self.ghr.fix_recent_bit(age, actual)
    }

    /// Repairs the *local* history of the producer compare analogously.
    /// Returns `false` when the bit has aged out of the local window.
    pub fn fix_local_history_bit(&mut self, lhr_idx: u32, age: u32, actual: bool) -> bool {
        if age >= self.lht.width() {
            return false;
        }
        let cur = self.lht.read_at(lhr_idx as usize);
        let bit = 1u32 << age;
        let fixed = if actual { cur | bit } else { cur & !bit };
        self.lht.restore(lhr_idx as usize, fixed);
        true
    }

    /// Full §3.3 history repair for a detected compare misprediction:
    /// corrects the global-history bit (`ghr_age` pushes old) and the
    /// producer's local-history bit (located via the push count recorded
    /// in the prediction tag) with the primary target's computed value.
    pub fn repair_history(
        &mut self,
        prediction: &PredicatePrediction,
        primary_actual: bool,
        ghr_age: u32,
    ) {
        let _ = self.fix_history_bit(ghr_age, primary_actual);
        let idx = prediction.tag.lhr_idx;
        if idx != u32::MAX && prediction.tag.alt > 0 {
            let pushes_since = self.lht_counts[idx as usize] - prediction.tag.alt;
            if pushes_since <= u64::from(u32::MAX) {
                let _ = self.fix_local_history_bit(idx, pushes_since as u32, primary_actual);
            }
        }
    }

    /// Whether a row's confidence counter is currently saturated.
    pub fn is_confident_row(&self, row: u32) -> bool {
        self.confidence.is_confident(row as usize)
    }

    /// Hardware budget in bytes (PVT + local histories + confidence).
    pub fn size_bytes(&self) -> usize {
        self.pvt.size_bytes() + self.lht.size_bytes() + self.confidence.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut PredicatePredictor, pc: u64, outcomes: &[bool]) -> f64 {
        let mut wrong = 0usize;
        for &o in outcomes {
            let cp = p.predict_compare(pc, true, false);
            let pt = cp.pt.unwrap();
            if pt.value != o {
                wrong += 1;
                // Correct the history bit this compare pushed (age 0: it is
                // the most recent push).
                p.fix_history_bit(0, o);
                p.fix_local_history_bit(pt.tag.lhr_idx, 0, o);
            }
            p.train(&pt, o);
        }
        wrong as f64 / outcomes.len() as f64
    }

    #[test]
    fn learns_biased_predicate() {
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        let rate = drive(&mut p, 0x4000, &[true].repeat(300));
        assert!(rate < 0.05, "rate={rate}");
    }

    #[test]
    fn learns_alternating_predicate() {
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        let rate = drive(&mut p, 0x4000, &[true, false].repeat(400));
        assert!(rate < 0.1, "rate={rate}");
    }

    #[test]
    fn correlation_across_compares_is_captured() {
        // Compare B's predicate equals compare A's: the single GHR shared
        // by all compares carries the correlation.
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        let mut wrong_b = 0usize;
        let mut total = 0usize;
        let mut x = 12345u32;
        for _ in 0..800 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let v = (x >> 16) & 1 == 1;
            let ca = p.predict_compare(0x4000, true, false);
            let a = ca.pt.unwrap();
            if a.value != v {
                p.fix_history_bit(0, v);
                p.fix_local_history_bit(a.tag.lhr_idx, 0, v);
            }
            p.train(&a, v);
            let cb = p.predict_compare(0x4200, true, false);
            let b = cb.pt.unwrap();
            if b.value != v {
                wrong_b += 1;
                p.fix_history_bit(0, v);
                p.fix_local_history_bit(b.tag.lhr_idx, 0, v);
            }
            p.train(&b, v);
            total += 1;
        }
        let rate = wrong_b as f64 / total as f64;
        assert!(
            rate < 0.15,
            "perfect correlation should be learned, rate={rate}"
        );
    }

    #[test]
    fn two_targets_use_distinct_rows() {
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        let cp = p.predict_compare(0x4000, true, true);
        let (pt, pf) = (cp.pt.unwrap(), cp.pf.unwrap());
        assert_ne!(pt.tag.row, pf.tag.row, "f1 and f2 rows differ");
        assert!(cp.ghr_pushed);
    }

    #[test]
    fn single_target_uses_f1_row() {
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        let f1 = p.table().row_of(0x4000) as u32;
        let cp = p.predict_compare(0x4000, false, true);
        assert_eq!(cp.pf.unwrap().tag.row, f1);
        assert!(cp.pt.is_none());
    }

    #[test]
    fn ghr_shifts_once_per_compare() {
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        let g0 = p.ghr_value();
        let cp = p.predict_compare(0x4000, true, true);
        let expected = ((g0 << 1) | u64::from(cp.pt.unwrap().value)) & 0xff;
        assert_eq!(
            p.ghr_value(),
            expected,
            "one shift even with two predictions"
        );
    }

    #[test]
    fn p0_only_compare_makes_no_prediction() {
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        let g0 = p.ghr_value();
        let cp = p.predict_compare(0x4000, false, false);
        assert!(cp.pt.is_none() && cp.pf.is_none() && !cp.ghr_pushed);
        assert_eq!(p.ghr_value(), g0);
        p.undo_compare(&cp); // must be a no-op
        assert_eq!(p.ghr_value(), g0);
    }

    #[test]
    fn undo_compare_restores_histories() {
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        let g0 = p.ghr_value();
        let a = p.predict_compare(0x4000, true, false);
        let b = p.predict_compare(0x4010, true, true);
        p.undo_compare(&b);
        p.undo_compare(&a);
        assert_eq!(p.ghr_value(), g0);
    }

    #[test]
    fn fix_history_bit_corrects_producer_bit_only() {
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        let a = p.predict_compare(0x4000, true, false); // producer
        let _b = p.predict_compare(0x4010, true, false); // intermediate
        let _c = p.predict_compare(0x4020, true, false); // intermediate
        let before = p.ghr_value();
        let a_val = a.pt.unwrap().value;
        // Producer's bit is now age 2 (two compares fetched after it).
        p.fix_history_bit(2, !a_val);
        let after = p.ghr_value();
        assert_eq!(before ^ after, 0b100, "only the age-2 bit changed");
    }

    #[test]
    fn confidence_tracks_per_row_accuracy() {
        let mut p = PredicatePredictor::new(PredicateConfig::tiny());
        let mut last = None;
        for _ in 0..64 {
            let cp = p.predict_compare(0x4000, true, false);
            let pt = cp.pt.unwrap();
            if !pt.value {
                p.fix_history_bit(0, true);
            }
            p.train(&pt, true);
            last = Some(pt);
        }
        let row = last.unwrap().tag.row;
        assert!(p.is_confident_row(row), "steady predicate gains confidence");
        // One misprediction resets it.
        let cp = p.predict_compare(0x4000, true, false);
        let pt = cp.pt.unwrap();
        assert!(pt.confident);
        p.train(&pt, !pt.value);
        assert!(!p.is_confident_row(row), "misprediction zeroes confidence");
    }

    #[test]
    fn paper_sizing_is_reported() {
        let p = PredicatePredictor::new(PredicateConfig::paper_148kb());
        let kb = p.size_bytes() as f64 / 1024.0;
        assert!(
            (148.0..156.0).contains(&kb),
            "PVT ≈148 KB + LHT + confidence, got {kb} KB"
        );
    }
}

#[cfg(test)]
mod correlation_tests {
    use super::*;

    /// Deterministic coin-flip source (splitmix64; no external crates).
    struct Rng(u64);

    impl Rng {
        fn flag(&mut self) -> bool {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) & 1 == 1
        }
    }

    /// The paper's headline scenario: two hard-to-predict feeder compares
    /// whose (repaired) history bits determine a region compare's outcome.
    #[test]
    fn region_compare_is_learned_from_feeder_history() {
        let mut p = PredicatePredictor::new(PredicateConfig::paper_148kb());
        let mut rng = Rng(3);
        let (pc_f1, pc_f2, pc_r) = (0x4000u64, 0x4040u64, 0x4400u64);
        let mut wrong = 0u32;
        let mut total = 0u32;
        for i in 0..4000u32 {
            let b0 = rng.flag();
            let b1 = rng.flag();
            // Feeder 1 (two targets, like cmp.unc pt,pf).
            let c1 = p.predict_compare(pc_f1, true, true);
            let pt1 = c1.pt.unwrap();
            if pt1.value != b0 {
                // Repaired immediately after the prediction: age 0.
                p.repair_history(&pt1, b0, 0);
            }
            p.train(&pt1, b0);
            p.train(&c1.pf.unwrap(), !b0);
            // Feeder 2.
            let c2 = p.predict_compare(pc_f2, true, true);
            let pt2 = c2.pt.unwrap();
            if pt2.value != b1 {
                p.repair_history(&pt2, b1, 0);
            }
            p.train(&pt2, b1);
            p.train(&c2.pf.unwrap(), !b1);
            // Region: outcome = AND of the feeders.
            let region = b0 && b1;
            let cr = p.predict_compare(pc_r, true, true);
            let ptr = cr.pt.unwrap();
            if i > 1000 {
                total += 1;
                if ptr.value != region {
                    wrong += 1;
                }
            }
            if ptr.value != region {
                p.repair_history(&ptr, region, 0);
            }
            p.train(&ptr, region);
            p.train(&cr.pf.unwrap(), !region);
        }
        let rate = f64::from(wrong) / f64::from(total);
        assert!(
            rate < 0.08,
            "region must be learned from repaired feeder bits, rate={rate}"
        );
    }
}
