//! Scheme specification and predictor factory.
//!
//! [`SchemeSpec`] is the single authority on which prediction organizations
//! exist: their names, their CLI spellings, and — through [`SchemeSpec::build`]
//! — the concrete predictor structures each one instantiates. The pipeline,
//! the figure binaries and the CLI all consume this enum instead of
//! re-spelling the scheme→predictor match arms.

use crate::{
    Gshare, GshareConfig, IdealPerceptron, IdealPredicatePredictor, PepPa, PepPaConfig,
    PerceptronConfig, PerceptronPredictor, PredicateConfig, PredicatePredictor,
};

/// Which branch-prediction organization drives the front end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeSpec {
    /// Two-level: 4 KB gshare at fetch, 148 KB perceptron override at
    /// rename (the paper's conventional baseline).
    Conventional,
    /// 144 KB PEP-PA at fetch (August et al., as modelled in §4.1: the
    /// logical predicate register file is updated at execute time, out of
    /// program order).
    PepPa,
    /// The paper's scheme: 4 KB gshare at fetch, predictions generated per
    /// *compare* and stored in the PPRF, consumed by branches at rename.
    Predicate,
    /// Conventional with unbounded tables and oracle history (the §4.2
    /// idealized study).
    IdealConventional,
    /// Predicate predictor with unbounded tables and oracle history.
    IdealPredicate,
}

/// The predictor structures a [`SchemeSpec`] instantiates.
///
/// This is pure predictor state; timing-model bookkeeping (e.g. PEP-PA's
/// out-of-order predicate-write replay queue) stays in the pipeline.
#[allow(missing_docs)] // variant fields mirror the scheme definitions above
pub enum PredictorSet {
    /// First-level gshare with a perceptron override at rename.
    Conventional { l1: Gshare, l2: PerceptronPredictor },
    /// Single-level PEP-PA at fetch.
    PepPa { p: PepPa },
    /// First-level gshare plus the compare-PC predicate predictor.
    Predicate { l1: Gshare, pp: PredicatePredictor },
    /// Idealized perceptron (no first level; oracle-trained).
    IdealConventional { p: IdealPerceptron },
    /// First-level gshare plus the idealized predicate predictor.
    IdealPredicate {
        l1: Gshare,
        pp: IdealPredicatePredictor,
    },
}

impl SchemeSpec {
    /// Every scheme, in the paper's presentation order.
    pub const ALL: [SchemeSpec; 5] = [
        SchemeSpec::Conventional,
        SchemeSpec::PepPa,
        SchemeSpec::Predicate,
        SchemeSpec::IdealConventional,
        SchemeSpec::IdealPredicate,
    ];

    /// Whether this scheme predicts at compares (predicate-predictor
    /// family).
    pub fn is_predicate(self) -> bool {
        matches!(self, SchemeSpec::Predicate | SchemeSpec::IdealPredicate)
    }

    /// Display name used in reports, job descriptions and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            SchemeSpec::Conventional => "conventional",
            SchemeSpec::PepPa => "pep-pa",
            SchemeSpec::Predicate => "predicate",
            SchemeSpec::IdealConventional => "ideal-conventional",
            SchemeSpec::IdealPredicate => "ideal-predicate",
        }
    }

    /// Parses a scheme name as spelled on the CLI. Accepts the canonical
    /// [`SchemeSpec::name`] plus the historical aliases (`conv`, `peppa`,
    /// `pred`, `ideal-conv`, `ideal-pred`).
    pub fn parse(s: &str) -> Option<SchemeSpec> {
        match s {
            "conventional" | "conv" => Some(SchemeSpec::Conventional),
            "pep-pa" | "peppa" => Some(SchemeSpec::PepPa),
            "predicate" | "pred" => Some(SchemeSpec::Predicate),
            "ideal-conventional" | "ideal-conv" => Some(SchemeSpec::IdealConventional),
            "ideal-predicate" | "ideal-pred" => Some(SchemeSpec::IdealPredicate),
            _ => None,
        }
    }

    /// Instantiates the predictor structures for this scheme at the
    /// paper's Table-1 budgets, with optional geometry overrides for the
    /// sensitivity sweeps.
    ///
    /// `perceptron` only applies to [`SchemeSpec::Conventional`] (its
    /// second level) and `predicate` only to [`SchemeSpec::Predicate`];
    /// callers that pass an inapplicable override should reject it before
    /// building (see `SimOptions` in the pipeline crate).
    pub fn build(
        self,
        perceptron: Option<PerceptronConfig>,
        predicate: Option<PredicateConfig>,
    ) -> PredictorSet {
        match self {
            SchemeSpec::Conventional => PredictorSet::Conventional {
                l1: Gshare::new(GshareConfig::paper_4kb()),
                l2: PerceptronPredictor::new(
                    perceptron.unwrap_or_else(PerceptronConfig::paper_148kb),
                ),
            },
            SchemeSpec::PepPa => PredictorSet::PepPa {
                p: PepPa::new(PepPaConfig::paper_144kb()),
            },
            SchemeSpec::Predicate => PredictorSet::Predicate {
                l1: Gshare::new(GshareConfig::paper_4kb()),
                pp: PredicatePredictor::new(predicate.unwrap_or_else(PredicateConfig::paper_148kb)),
            },
            SchemeSpec::IdealConventional => PredictorSet::IdealConventional {
                p: IdealPerceptron::new(PerceptronConfig::paper_148kb()),
            },
            SchemeSpec::IdealPredicate => PredictorSet::IdealPredicate {
                l1: Gshare::new(GshareConfig::paper_4kb()),
                pp: IdealPredicatePredictor::new(PerceptronConfig::paper_148kb()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_parse_round_trip() {
        for s in SchemeSpec::ALL {
            assert_eq!(SchemeSpec::parse(s.name()), Some(s));
        }
        assert_eq!(SchemeSpec::parse("conv"), Some(SchemeSpec::Conventional));
        assert_eq!(SchemeSpec::parse("peppa"), Some(SchemeSpec::PepPa));
        assert_eq!(SchemeSpec::parse("pred"), Some(SchemeSpec::Predicate));
        assert_eq!(SchemeSpec::parse("bogus"), None);
    }

    #[test]
    fn predicate_family_is_marked() {
        assert!(SchemeSpec::Predicate.is_predicate());
        assert!(SchemeSpec::IdealPredicate.is_predicate());
        assert!(!SchemeSpec::Conventional.is_predicate());
        assert!(!SchemeSpec::PepPa.is_predicate());
    }

    #[test]
    fn factory_builds_the_matching_set() {
        for s in SchemeSpec::ALL {
            let set = s.build(None, None);
            let matches = matches!(
                (s, &set),
                (SchemeSpec::Conventional, PredictorSet::Conventional { .. })
                    | (SchemeSpec::PepPa, PredictorSet::PepPa { .. })
                    | (SchemeSpec::Predicate, PredictorSet::Predicate { .. })
                    | (
                        SchemeSpec::IdealConventional,
                        PredictorSet::IdealConventional { .. }
                    )
                    | (
                        SchemeSpec::IdealPredicate,
                        PredictorSet::IdealPredicate { .. }
                    )
            );
            assert!(matches, "{s:?} built the wrong predictor set");
        }
    }

    #[test]
    fn geometry_overrides_apply() {
        let small = PerceptronConfig {
            rows: 64,
            ..PerceptronConfig::paper_148kb()
        };
        let set = SchemeSpec::Conventional.build(Some(small), None);
        let PredictorSet::Conventional { l2, .. } = set else {
            panic!("wrong set");
        };
        use crate::BranchPredictor;
        assert!(
            l2.size_bytes()
                < PerceptronPredictor::new(PerceptronConfig::paper_148kb()).size_bytes()
        );
    }
}
