//! Scheme specification and predictor factory.
//!
//! [`SchemeSpec`] is the single authority on which prediction organizations
//! exist: their names, their CLI spellings, and — through [`SchemeSpec::build`]
//! — the concrete predictor structures each one instantiates. The pipeline,
//! the figure binaries and the CLI all consume this enum instead of
//! re-spelling the scheme→predictor match arms.

use crate::tage::{Tage, TageConfig, TageH2pConfig, TagePredicateConfig, TagePredicatePredictor};
use crate::{
    Gshare, GshareConfig, IdealPerceptron, IdealPredicatePredictor, PepPa, PepPaConfig,
    PerceptronConfig, PerceptronPredictor, PredicateConfig, PredicatePredictor,
};

/// Which branch-prediction organization drives the front end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeSpec {
    /// Two-level: 4 KB gshare at fetch, 148 KB perceptron override at
    /// rename (the paper's conventional baseline).
    Conventional,
    /// 144 KB PEP-PA at fetch (August et al., as modelled in §4.1: the
    /// logical predicate register file is updated at execute time, out of
    /// program order).
    PepPa,
    /// The paper's scheme: 4 KB gshare at fetch, predictions generated per
    /// *compare* and stored in the PPRF, consumed by branches at rename.
    Predicate,
    /// Conventional with unbounded tables and oracle history (the §4.2
    /// idealized study).
    IdealConventional,
    /// Predicate predictor with unbounded tables and oracle history.
    IdealPredicate,
    /// Single-level 144 KiB TAGE at fetch: the stronger conventional
    /// baseline of ROADMAP item 4 (geometric tagged histories, no
    /// perceptron override stage).
    Tage,
    /// TAGE plus a Bullseye-style H2P side table: per-static-branch
    /// exec/mispredict tracking promotes hard-to-predict sites into a
    /// dedicated per-site pattern predictor.
    TageH2p,
    /// The hybrid: 4 KB gshare at fetch plus the TAGE-indexed predicate
    /// value table (compare-PC keyed, f1/f2 split, §3.3 repair) instead
    /// of the paper's perceptron PVT.
    TagePredicate,
}

/// The predictor structures a [`SchemeSpec`] instantiates.
///
/// This is pure predictor state; timing-model bookkeeping (e.g. PEP-PA's
/// out-of-order predicate-write replay queue) stays in the pipeline.
#[allow(missing_docs)] // variant fields mirror the scheme definitions above
pub enum PredictorSet {
    /// First-level gshare with a perceptron override at rename.
    Conventional { l1: Gshare, l2: PerceptronPredictor },
    /// Single-level PEP-PA at fetch.
    PepPa { p: PepPa },
    /// First-level gshare plus the compare-PC predicate predictor.
    Predicate { l1: Gshare, pp: PredicatePredictor },
    /// Idealized perceptron (no first level; oracle-trained).
    IdealConventional { p: IdealPerceptron },
    /// First-level gshare plus the idealized predicate predictor.
    IdealPredicate {
        l1: Gshare,
        pp: IdealPredicatePredictor,
    },
    /// Single-level TAGE at fetch (plain for [`SchemeSpec::Tage`], H2P
    /// side table enabled for [`SchemeSpec::TageH2p`]).
    Tage { t: Tage },
    /// First-level gshare plus the TAGE-indexed predicate predictor.
    TagePredicate {
        l1: Gshare,
        pp: TagePredicatePredictor,
    },
}

impl SchemeSpec {
    /// Every scheme, in the paper's presentation order (paper schemes
    /// first, the TAGE frontier appended).
    pub const ALL: [SchemeSpec; 8] = [
        SchemeSpec::Conventional,
        SchemeSpec::PepPa,
        SchemeSpec::Predicate,
        SchemeSpec::IdealConventional,
        SchemeSpec::IdealPredicate,
        SchemeSpec::Tage,
        SchemeSpec::TageH2p,
        SchemeSpec::TagePredicate,
    ];

    /// Whether this scheme predicts at compares (predicate-predictor
    /// family).
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            SchemeSpec::Predicate | SchemeSpec::IdealPredicate | SchemeSpec::TagePredicate
        )
    }

    /// Whether this scheme builds a second-level perceptron from a
    /// [`PerceptronConfig`], i.e. accepts the perceptron geometry
    /// override. Capability predicate — `SimOptions::validate` keys off
    /// this instead of enumerating schemes by equality.
    pub fn has_override_perceptron(self) -> bool {
        matches!(self, SchemeSpec::Conventional)
    }

    /// Whether this scheme builds a realistic predicate predictor from a
    /// [`PredicateConfig`], i.e. accepts the predicate geometry override.
    /// (The idealized predicate scheme has a predicate predictor too, but
    /// an unbounded one that takes no geometry.)
    pub fn has_predicate_predictor(self) -> bool {
        matches!(self, SchemeSpec::Predicate | SchemeSpec::TagePredicate)
    }

    /// Whether this scheme supports oracle-exact final prediction
    /// (`--oracle-final`).
    pub fn supports_oracle_final(self) -> bool {
        matches!(self, SchemeSpec::IdealConventional)
    }

    /// Display name used in reports, job descriptions and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            SchemeSpec::Conventional => "conventional",
            SchemeSpec::PepPa => "pep-pa",
            SchemeSpec::Predicate => "predicate",
            SchemeSpec::IdealConventional => "ideal-conventional",
            SchemeSpec::IdealPredicate => "ideal-predicate",
            SchemeSpec::Tage => "tage",
            SchemeSpec::TageH2p => "tage-h2p",
            SchemeSpec::TagePredicate => "tage-predicate",
        }
    }

    /// Parses a scheme name as spelled on the CLI. Accepts the canonical
    /// [`SchemeSpec::name`] plus the historical aliases (`conv`, `peppa`,
    /// `pred`, `ideal-conv`, `ideal-pred`, `tageh2p`, `tage-pred`).
    pub fn parse(s: &str) -> Option<SchemeSpec> {
        match s {
            "conventional" | "conv" => Some(SchemeSpec::Conventional),
            "pep-pa" | "peppa" => Some(SchemeSpec::PepPa),
            "predicate" | "pred" => Some(SchemeSpec::Predicate),
            "ideal-conventional" | "ideal-conv" => Some(SchemeSpec::IdealConventional),
            "ideal-predicate" | "ideal-pred" => Some(SchemeSpec::IdealPredicate),
            "tage" => Some(SchemeSpec::Tage),
            "tage-h2p" | "tageh2p" => Some(SchemeSpec::TageH2p),
            "tage-predicate" | "tage-pred" => Some(SchemeSpec::TagePredicate),
            _ => None,
        }
    }

    /// Instantiates the predictor structures for this scheme at the
    /// paper's Table-1 budgets, with optional geometry overrides for the
    /// sensitivity sweeps.
    ///
    /// `perceptron` applies to schemes with
    /// [`SchemeSpec::has_override_perceptron`] and `predicate` to schemes
    /// with [`SchemeSpec::has_predicate_predictor`] (the TAGE-indexed
    /// variant maps the perceptron geometry onto its base table via
    /// [`TagePredicateConfig::from_predicate`]); callers that pass an
    /// inapplicable override should reject it before building (see
    /// `SimOptions` in the pipeline crate).
    pub fn build(
        self,
        perceptron: Option<PerceptronConfig>,
        predicate: Option<PredicateConfig>,
    ) -> PredictorSet {
        match self {
            SchemeSpec::Conventional => PredictorSet::Conventional {
                l1: Gshare::new(GshareConfig::paper_4kb()),
                l2: PerceptronPredictor::new(
                    perceptron.unwrap_or_else(PerceptronConfig::paper_148kb),
                ),
            },
            SchemeSpec::PepPa => PredictorSet::PepPa {
                p: PepPa::new(PepPaConfig::paper_144kb()),
            },
            SchemeSpec::Predicate => PredictorSet::Predicate {
                l1: Gshare::new(GshareConfig::paper_4kb()),
                pp: PredicatePredictor::new(predicate.unwrap_or_else(PredicateConfig::paper_148kb)),
            },
            SchemeSpec::IdealConventional => PredictorSet::IdealConventional {
                p: IdealPerceptron::new(PerceptronConfig::paper_148kb()),
            },
            SchemeSpec::IdealPredicate => PredictorSet::IdealPredicate {
                l1: Gshare::new(GshareConfig::paper_4kb()),
                pp: IdealPredicatePredictor::new(PerceptronConfig::paper_148kb()),
            },
            SchemeSpec::Tage => PredictorSet::Tage {
                t: Tage::new(TageConfig::paper_144kb()),
            },
            SchemeSpec::TageH2p => PredictorSet::Tage {
                t: Tage::with_h2p(TageConfig::paper_144kb(), TageH2pConfig::paper_default()),
            },
            SchemeSpec::TagePredicate => PredictorSet::TagePredicate {
                l1: Gshare::new(GshareConfig::paper_4kb()),
                pp: TagePredicatePredictor::new(predicate.map_or_else(
                    TagePredicateConfig::paper_144kb,
                    TagePredicateConfig::from_predicate,
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchPredictor;

    #[test]
    fn names_and_parse_round_trip() {
        for s in SchemeSpec::ALL {
            assert_eq!(SchemeSpec::parse(s.name()), Some(s));
        }
        assert_eq!(SchemeSpec::parse("conv"), Some(SchemeSpec::Conventional));
        assert_eq!(SchemeSpec::parse("peppa"), Some(SchemeSpec::PepPa));
        assert_eq!(SchemeSpec::parse("pred"), Some(SchemeSpec::Predicate));
        assert_eq!(SchemeSpec::parse("tageh2p"), Some(SchemeSpec::TageH2p));
        assert_eq!(
            SchemeSpec::parse("tage-pred"),
            Some(SchemeSpec::TagePredicate)
        );
        assert_eq!(SchemeSpec::parse("bogus"), None);
    }

    #[test]
    fn predicate_family_is_marked() {
        assert!(SchemeSpec::Predicate.is_predicate());
        assert!(SchemeSpec::IdealPredicate.is_predicate());
        assert!(SchemeSpec::TagePredicate.is_predicate());
        assert!(!SchemeSpec::Conventional.is_predicate());
        assert!(!SchemeSpec::PepPa.is_predicate());
        assert!(!SchemeSpec::Tage.is_predicate());
        assert!(!SchemeSpec::TageH2p.is_predicate());
    }

    #[test]
    fn capability_predicates_partition_the_schemes() {
        for s in SchemeSpec::ALL {
            assert_eq!(
                s.has_override_perceptron(),
                s == SchemeSpec::Conventional,
                "{s:?}"
            );
            assert_eq!(
                s.has_predicate_predictor(),
                matches!(s, SchemeSpec::Predicate | SchemeSpec::TagePredicate),
                "{s:?}"
            );
            assert_eq!(
                s.supports_oracle_final(),
                s == SchemeSpec::IdealConventional,
                "{s:?}"
            );
        }
    }

    #[test]
    fn factory_builds_the_matching_set() {
        for s in SchemeSpec::ALL {
            let set = s.build(None, None);
            let matches = matches!(
                (s, &set),
                (SchemeSpec::Conventional, PredictorSet::Conventional { .. })
                    | (SchemeSpec::PepPa, PredictorSet::PepPa { .. })
                    | (SchemeSpec::Predicate, PredictorSet::Predicate { .. })
                    | (
                        SchemeSpec::IdealConventional,
                        PredictorSet::IdealConventional { .. }
                    )
                    | (
                        SchemeSpec::IdealPredicate,
                        PredictorSet::IdealPredicate { .. }
                    )
                    | (SchemeSpec::Tage, PredictorSet::Tage { .. })
                    | (SchemeSpec::TageH2p, PredictorSet::Tage { .. })
                    | (
                        SchemeSpec::TagePredicate,
                        PredictorSet::TagePredicate { .. }
                    )
            );
            assert!(matches, "{s:?} built the wrong predictor set");
        }
        // The two TAGE branch schemes share a set variant but differ in
        // the H2P extension.
        let PredictorSet::Tage { t } = SchemeSpec::Tage.build(None, None) else {
            panic!("wrong set");
        };
        assert!(!t.has_h2p());
        let PredictorSet::Tage { t } = SchemeSpec::TageH2p.build(None, None) else {
            panic!("wrong set");
        };
        assert!(t.has_h2p());
    }

    #[test]
    fn geometry_overrides_apply() {
        // The override must actually reach the built predictor — row
        // count verified structurally, not just via a shrinking byte
        // budget (a factory that ignored the override but built any
        // smaller table would pass a size-only check).
        let small = PerceptronConfig {
            rows: 64,
            ..PerceptronConfig::paper_148kb()
        };
        let set = SchemeSpec::Conventional.build(Some(small), None);
        let PredictorSet::Conventional { l2, .. } = set else {
            panic!("wrong set");
        };
        assert_eq!(l2.table().rows(), 64, "configured rows reach the table");
        assert!(
            l2.size_bytes()
                < PerceptronPredictor::new(PerceptronConfig::paper_148kb()).size_bytes()
        );
    }

    #[test]
    fn predicate_overrides_reach_both_predicate_schemes() {
        let small = PredicateConfig {
            perceptron: PerceptronConfig {
                rows: 128,
                ..PerceptronConfig::paper_148kb()
            },
            conf_bits: 2,
        };
        let set = SchemeSpec::Predicate.build(None, Some(small));
        let PredictorSet::Predicate { pp, .. } = set else {
            panic!("wrong set");
        };
        assert_eq!(pp.table().rows(), 128);
        let set = SchemeSpec::TagePredicate.build(None, Some(small));
        let PredictorSet::TagePredicate { pp, .. } = set else {
            panic!("wrong set");
        };
        assert_eq!(
            pp.base_rows(),
            128,
            "perceptron rows map onto the TAGE base PVT"
        );
        assert!(
            pp.size_bytes()
                < TagePredicatePredictor::new(TagePredicateConfig::paper_144kb()).size_bytes()
        );
    }
}
