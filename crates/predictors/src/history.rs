//! Global and local history registers with speculative-update repair.

/// A shift-register of recent outcomes, newest in the least-significant bit.
///
/// Supports the three recovery primitives the pipeline needs:
///
/// * [`GlobalHistory::push`] — speculative update at prediction time,
/// * [`GlobalHistory::set`] — wholesale restore from a [`crate::Tag`]
///   snapshot (squash recovery),
/// * [`GlobalHistory::fix_recent_bit`] — in-place correction of the bit a
///   mispredicted *compare* inserted, without disturbing the (possibly
///   corrupted) bits of younger compares that are not squashed — the §3.3
///   recovery semantics of the predicate predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalHistory {
    bits: u64,
    width: u32,
}

impl GlobalHistory {
    /// Creates an all-zero history of `width` bits (1..=64).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn new(width: u32) -> Self {
        assert!(
            (1..=64).contains(&width),
            "history width {width} out of range"
        );
        GlobalHistory { bits: 0, width }
    }

    /// The configured width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Current value (only the low `width` bits are meaningful).
    pub fn value(&self) -> u64 {
        self.bits
    }

    /// Restores a snapshot taken with [`GlobalHistory::value`].
    pub fn set(&mut self, value: u64) {
        self.bits = value & self.mask();
    }

    /// Shifts in a new outcome (speculative or architectural).
    pub fn push(&mut self, outcome: bool) {
        self.bits = ((self.bits << 1) | u64::from(outcome)) & self.mask();
    }

    /// Corrects the outcome recorded `age` pushes ago (0 = most recent).
    ///
    /// Used when a predicate misprediction is detected by its consumer:
    /// compares fetched in between already consumed the wrong bit and keep
    /// their predictions, but the history itself is repaired so later
    /// predictions see the truth.
    ///
    /// Returns `true` if the bit was corrected, `false` if it had already
    /// been shifted out of the window. Out-of-window ages are *legitimate*:
    /// the pipeline computes `age = pushes_now − pushes_at_prediction`, and
    /// a §3.3 corruption window longer than the history width means the
    /// wrong bit is simply gone — callers must treat `false` as "nothing
    /// left to repair", never as an error.
    #[must_use = "false means the bit aged out and no repair happened"]
    pub fn fix_recent_bit(&mut self, age: u32, value: bool) -> bool {
        if age >= self.width {
            return false; // the bit has already been shifted out
        }
        let bit = 1u64 << age;
        if value {
            self.bits |= bit;
        } else {
            self.bits &= !bit;
        }
        true
    }

    /// The bit recorded `age` pushes ago (0 = most recent), or `None` once
    /// it has been shifted out of the window — mirroring
    /// [`GlobalHistory::fix_recent_bit`], so a caller cannot mistake an
    /// aged-out bit for a recorded `false`.
    pub fn recent_bit(&self, age: u32) -> Option<bool> {
        if age >= self.width {
            None
        } else {
            Some((self.bits >> age) & 1 == 1)
        }
    }

    #[inline]
    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

/// A table of per-PC local history registers.
///
/// Indexed by a hash of the instruction address; each entry is a
/// `width`-bit shift register. Entries are snapshotted into prediction tags
/// and restored on squash.
#[derive(Clone, Debug)]
pub struct LocalHistoryTable {
    entries: Vec<u32>,
    width: u32,
    index_mask: usize,
}

impl LocalHistoryTable {
    /// Creates a table of `entries` (rounded up to a power of two) local
    /// histories of `width` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `width` is zero or greater than 32.
    pub fn new(entries: usize, width: u32) -> Self {
        assert!(entries > 0, "local history table must have entries");
        assert!(
            (1..=32).contains(&width),
            "local history width {width} out of range"
        );
        let n = entries.next_power_of_two();
        LocalHistoryTable {
            entries: vec![0; n],
            width,
            index_mask: n - 1,
        }
    }

    /// Number of entries (a power of two).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// History width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Table index for an instruction address.
    ///
    /// Drops the low 4 bits before masking: instruction slots are exactly
    /// 16 bytes apart (`Program::pc_of(i) = CODE_BASE + 16·i` in
    /// `ppsim-isa`), so `pc >> 4` yields *consecutive* indices for
    /// consecutive slots — compares in adjacent slots can never alias to
    /// one local-history entry. Shifting by more would fold neighbouring
    /// slots together; shifting by less would leave index bits constant
    /// and waste half the table. Pinned by
    /// `adjacent_slots_never_alias` below and by the cross-crate
    /// regression in the workspace `checks` test suite.
    pub fn index_of(&self, pc: u64) -> usize {
        ((pc >> 4) as usize) & self.index_mask
    }

    /// Reads the local history for `pc`.
    pub fn read(&self, pc: u64) -> u32 {
        self.entries[self.index_of(pc)]
    }

    /// Shifts an outcome into the entry for `pc`; returns `(index,
    /// previous_value)` for the prediction tag.
    pub fn push(&mut self, pc: u64, outcome: bool) -> (usize, u32) {
        let idx = self.index_of(pc);
        let prev = self.entries[idx];
        let mask = if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        };
        self.entries[idx] = ((prev << 1) | u32::from(outcome)) & mask;
        (idx, prev)
    }

    /// Restores an entry from a tag snapshot.
    pub fn restore(&mut self, index: usize, value: u32) {
        self.entries[index] = value;
    }

    /// Shifts an outcome into a known entry index (recovery path).
    pub fn push_at(&mut self, index: usize, outcome: bool) {
        let mask = if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        };
        let prev = self.entries[index];
        self.entries[index] = ((prev << 1) | u32::from(outcome)) & mask;
    }

    /// Reads a known entry index.
    pub fn read_at(&self, index: usize) -> u32 {
        self.entries[index]
    }

    /// Storage cost in bytes (width bits per entry, bit-packed).
    pub fn size_bytes(&self) -> usize {
        (self.entries.len() * self.width as usize).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_mask() {
        let mut h = GlobalHistory::new(4);
        for _ in 0..3 {
            h.push(true);
        }
        assert_eq!(h.value(), 0b111);
        h.push(false);
        h.push(true);
        assert_eq!(h.value(), 0b1101, "oldest bit fell off a 4-bit history");
    }

    #[test]
    fn set_restores_snapshots() {
        let mut h = GlobalHistory::new(8);
        h.push(true);
        let snap = h.value();
        h.push(false);
        h.push(true);
        h.set(snap);
        assert_eq!(h.value(), snap);
    }

    #[test]
    fn fix_recent_bit_targets_the_right_age() {
        let mut h = GlobalHistory::new(8);
        h.push(true); // age 2 after two more pushes
        h.push(false); // age 1
        h.push(false); // age 0
        assert_eq!(h.value(), 0b100);
        assert!(h.fix_recent_bit(2, false));
        assert_eq!(h.value(), 0b000);
        assert!(h.fix_recent_bit(0, true));
        assert_eq!(h.value(), 0b001);
        assert_eq!(h.recent_bit(0), Some(true));
        assert_eq!(h.recent_bit(1), Some(false));
    }

    #[test]
    fn fix_recent_bit_out_of_window_reports_aged_out() {
        // The pipeline's age (global pushes since prediction) legitimately
        // exceeds the window when a §3.3 corruption window outlives the
        // history; the repair must report it did nothing rather than
        // silently "succeed".
        let mut h = GlobalHistory::new(4);
        h.push(true);
        let before = h.value();
        assert!(!h.fix_recent_bit(9, false), "age 9 ≥ width 4 has aged out");
        assert_eq!(h.value(), before);
        assert_eq!(h.recent_bit(9), None);
        assert!(!h.fix_recent_bit(4, false), "age == width is the boundary");
        assert!(h.fix_recent_bit(3, true), "age == width−1 is still inside");
    }

    #[test]
    fn width_64_does_not_overflow() {
        let mut h = GlobalHistory::new(64);
        for _ in 0..100 {
            h.push(true);
        }
        assert_eq!(h.value(), u64::MAX);
    }

    #[test]
    fn width_64_window_boundary() {
        // The widest legal history: bit 63 is the oldest in-window age;
        // 64 is the first aged-out one. Exercises the `1 << 63` edge and
        // the `age >= width` comparison at the u64 limit.
        let mut h = GlobalHistory::new(64);
        h.push(true); // will sit at age 63 after 63 more pushes
        for _ in 0..63 {
            h.push(false);
        }
        assert_eq!(h.recent_bit(63), Some(true));
        assert_eq!(h.recent_bit(64), None);
        assert!(h.fix_recent_bit(63, false));
        assert_eq!(h.value(), 0, "top bit cleared in place");
        assert!(h.fix_recent_bit(63, true));
        assert_eq!(h.value(), 1u64 << 63);
        assert!(!h.fix_recent_bit(64, false), "one past the window");
        assert_eq!(h.value(), 1u64 << 63);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_history_panics() {
        let _ = GlobalHistory::new(0);
    }

    #[test]
    fn local_table_round_trip_and_isolation() {
        let mut t = LocalHistoryTable::new(1024, 10);
        let pc_a = 0x4000_0000u64;
        let pc_b = 0x4000_0010u64; // adjacent slot → different entry
        let (ia, prev_a) = t.push(pc_a, true);
        assert_eq!(prev_a, 0);
        t.push(pc_b, true);
        t.push(pc_a, false);
        assert_eq!(t.read(pc_a), 0b10);
        assert_eq!(t.read(pc_b), 0b1);
        t.restore(ia, prev_a);
        // Only the first push to A was undone conceptually; restore is raw.
        assert_eq!(t.read(pc_a), 0);
        assert_ne!(t.index_of(pc_a), t.index_of(pc_b));
    }

    #[test]
    fn adjacent_slots_never_alias() {
        // `pc_of(i) = CODE_BASE + 16·i` (ppsim-isa, mirrored here to keep
        // this crate dependency-free): `index_of` must map adjacent slots
        // to distinct entries for every table size, including the
        // smallest, so back-to-back compares keep separate local
        // histories.
        const CODE_BASE: u64 = 0x4000_0000;
        const SLOT_BYTES: u64 = 16;
        let pc_of = |slot: u64| CODE_BASE + slot * SLOT_BYTES;
        for entries in [2usize, 16, 256, 4096] {
            let t = LocalHistoryTable::new(entries, 8);
            for i in 0..512u64 {
                assert_ne!(
                    t.index_of(pc_of(i)),
                    t.index_of(pc_of(i + 1)),
                    "slots {i}/{} alias in a {entries}-entry table",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn local_table_rounds_to_power_of_two() {
        let t = LocalHistoryTable::new(1000, 10);
        assert_eq!(t.len(), 1024);
        assert_eq!(t.size_bytes(), 1024 * 10 / 8);
    }

    #[test]
    fn local_width_masks() {
        let mut t = LocalHistoryTable::new(4, 3);
        let pc = 0x40u64;
        for _ in 0..5 {
            t.push(pc, true);
        }
        assert_eq!(t.read(pc), 0b111);
    }
}
