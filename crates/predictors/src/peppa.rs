//! PEP-PA: the Predicate Enhanced Prediction local-history baseline
//! (August, Connors, Gyllenhaal & Hwu, HPCA 1997; configuration per Wang et
//! al., HPCA 2001, as modelled by the paper: 144 KB, 14-bit local history).
//!
//! The scheme improves a PAs (per-address local history) predictor by
//! correlating with the *previous definition* of the branch's guarding
//! predicate register: the last architecturally computed value of that
//! logical predicate register selects one of **two** local histories, both
//! for making and for updating the prediction.
//!
//! The paper's §4.3 observation — PEP-PA performing *worse* than a
//! conventional predictor on an out-of-order machine — stems from the
//! out-of-order writing of predicate registers: the value observed at fetch
//! may be a younger definition than the one program order would provide.
//! This model reproduces that: [`BranchPredictor::note_predicate_write`] is
//! called by the pipeline at *execute* time (out of program order), and the
//! selector reads whatever value happens to be there at prediction time.

use crate::history::GlobalHistory;
use crate::{BranchPredictor, Prediction, Tag};

const NUM_PREDICATE_REGS: usize = 64;

/// PEP-PA configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PepPaConfig {
    /// Entries in the branch history table (each holding two local
    /// histories), rounded up to a power of two.
    pub bht_entries: usize,
    /// Local history bits.
    pub lh_bits: u32,
    /// log2 of the pattern history table entries (2-bit counters).
    pub pht_bits: u32,
}

impl PepPaConfig {
    /// The paper's 144 KB configuration: 32 Ki BHT entries × 2 × 14-bit
    /// local histories (112 KB) + 2^17 2-bit counters (32 KB) = 144 KB.
    pub fn paper_144kb() -> Self {
        PepPaConfig {
            bht_entries: 32 * 1024,
            lh_bits: 14,
            pht_bits: 17,
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        PepPaConfig {
            bht_entries: 64,
            lh_bits: 6,
            pht_bits: 10,
        }
    }

    /// Dual local-history table budget in bytes: two `lh_bits`-bit
    /// histories per (power-of-two-rounded) entry, bit-packed, with a
    /// partial trailing byte rounding up.
    pub fn bht_bytes(&self) -> usize {
        (self.bht_entries.next_power_of_two() * 2 * self.lh_bits as usize).div_ceil(8)
    }

    /// Pattern-history-table budget in bytes (2-bit counters, bit-packed,
    /// rounded up to whole bytes).
    pub fn pht_bytes(&self) -> usize {
        ((1usize << self.pht_bits) * 2).div_ceil(8)
    }

    /// Hardware budget in bytes. Summed per *component* — each table
    /// rounds to whole bytes on its own, exactly as
    /// `sizing::peppa_budget` itemizes them — rather than pooling bits
    /// across tables and flooring once, which under-counted odd
    /// geometries by up to a byte per table.
    pub fn table_bytes(&self) -> usize {
        self.bht_bytes() + self.pht_bytes()
    }
}

/// The PEP-PA predictor.
#[derive(Clone, Debug)]
pub struct PepPa {
    /// Two local histories per entry, selected by the guard's last value.
    bht: Vec<[u32; 2]>,
    /// 2-bit saturating counters.
    pht: Vec<u8>,
    /// Last *computed* value of each logical predicate register, updated by
    /// the pipeline at execute time — out of program order on an
    /// out-of-order machine, which is exactly the hazard the paper
    /// describes.
    pred_regs: [bool; NUM_PREDICATE_REGS],
    /// 14-bit speculative path history mixed into the PHT index to reduce
    /// aliasing between the two histories of hot branches.
    ghr: GlobalHistory,
    bht_mask: usize,
    pht_mask: usize,
    cfg: PepPaConfig,
}

impl PepPa {
    /// Builds the predictor; counters initialize to weakly-not-taken.
    pub fn new(cfg: PepPaConfig) -> Self {
        let bht_n = cfg.bht_entries.next_power_of_two();
        let pht_n = 1usize << cfg.pht_bits;
        PepPa {
            bht: vec![[0, 0]; bht_n],
            pht: vec![1; pht_n],
            pred_regs: [false; NUM_PREDICATE_REGS],
            ghr: GlobalHistory::new(cfg.lh_bits),
            bht_mask: bht_n - 1,
            pht_mask: pht_n - 1,
            cfg,
        }
    }

    /// The last observed computed value of a predicate register
    /// (diagnostics).
    pub fn predicate_reg(&self, preg: u8) -> bool {
        self.pred_regs[preg as usize & (NUM_PREDICATE_REGS - 1)]
    }

    fn bht_index(&self, pc: u64) -> usize {
        ((pc >> 4) as usize) & self.bht_mask
    }

    fn pht_index(&self, pc: u64, lh: u32) -> usize {
        ((lh as usize) ^ ((pc >> 4) as usize).wrapping_mul(0x9E37)) & self.pht_mask
    }
}

impl BranchPredictor for PepPa {
    fn predict(&mut self, pc: u64, guard: u8) -> Prediction {
        let sel = usize::from(self.predicate_reg(guard));
        let bi = self.bht_index(pc);
        let lh = self.bht[bi][sel];
        let pi = self.pht_index(pc, lh);
        let counter = self.pht[pi];
        let taken = counter >= 2;
        // Speculative local-history update of the *selected* history.
        self.bht[bi][sel] = ((lh << 1) | u32::from(taken)) & ((1u32 << self.cfg.lh_bits) - 1);
        let ghr_before = self.ghr.value();
        self.ghr.push(taken);
        Prediction {
            taken,
            tag: Tag {
                ghr_before,
                lhr_before: lh,
                lhr_idx: bi as u32,
                row: pi as u32,
                row2: u32::MAX,
                sum: i32::from(counter),
                alt: sel as u64,
            },
        }
    }

    fn train(&mut self, prediction: &Prediction, taken: bool) {
        let c = &mut self.pht[prediction.tag.row as usize];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn undo(&mut self, prediction: &Prediction) {
        let t = &prediction.tag;
        self.bht[t.lhr_idx as usize][t.alt as usize] = t.lhr_before;
        self.ghr.set(t.ghr_before);
    }

    fn recover(&mut self, prediction: &Prediction, taken: bool) {
        let t = &prediction.tag;
        let lh_mask = (1u32 << self.cfg.lh_bits) - 1;
        self.bht[t.lhr_idx as usize][t.alt as usize] =
            ((t.lhr_before << 1) | u32::from(taken)) & lh_mask;
        self.ghr.set(t.ghr_before);
        self.ghr.push(taken);
    }

    fn note_predicate_write(&mut self, preg: u8, value: bool) {
        self.pred_regs[preg as usize & (NUM_PREDICATE_REGS - 1)] = value;
    }

    fn name(&self) -> &'static str {
        "pep-pa"
    }

    fn size_bytes(&self) -> usize {
        self.cfg.table_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_144kb() {
        assert_eq!(PepPaConfig::paper_144kb().table_bytes(), 144 * 1024);
    }

    #[test]
    fn selector_splits_histories() {
        let mut p = PepPa::new(PepPaConfig::tiny());
        let pc = 0x4000u64;
        // With guard value 0, train taken; with guard value 1, train
        // not-taken. After warm-up the two contexts predict differently.
        for _ in 0..64 {
            p.note_predicate_write(3, false);
            let pr = p.predict(pc, 3);
            if !pr.taken {
                p.recover(&pr, true);
            }
            p.train(&pr, true);
            p.note_predicate_write(3, true);
            let pr = p.predict(pc, 3);
            if pr.taken {
                p.recover(&pr, false);
            }
            p.train(&pr, false);
        }
        p.note_predicate_write(3, false);
        let a = p.predict(pc, 3);
        p.undo(&a);
        p.note_predicate_write(3, true);
        let b = p.predict(pc, 3);
        p.undo(&b);
        assert!(a.taken, "guard=0 context learned taken");
        assert!(!b.taken, "guard=1 context learned not-taken");
    }

    #[test]
    fn stale_predicate_value_misleads_selection() {
        // The out-of-order hazard: if the selector register is NOT updated
        // (stale), the wrong local history is chosen and the prediction
        // follows the wrong context.
        let mut p = PepPa::new(PepPaConfig::tiny());
        let pc = 0x4000u64;
        for _ in 0..64 {
            p.note_predicate_write(3, false);
            let pr = p.predict(pc, 3);
            p.recover(&pr, true);
            p.train(&pr, true);
            p.note_predicate_write(3, true);
            let pr = p.predict(pc, 3);
            p.recover(&pr, false);
            p.train(&pr, false);
        }
        // True context is guard=1 (expect not-taken), but a stale write
        // left guard=0 visible.
        p.note_predicate_write(3, false);
        let stale = p.predict(pc, 3);
        assert!(
            stale.taken,
            "stale selector picks the taken-context history"
        );
    }

    #[test]
    fn undo_restores_selected_history() {
        let mut p = PepPa::new(PepPaConfig::tiny());
        p.note_predicate_write(7, true);
        let before = p.bht[p.bht_index(0x4000)][1];
        let pr = p.predict(0x4000, 7);
        assert_ne!(
            p.bht[p.bht_index(0x4000)][1],
            before | 0xdead_0000,
            "sanity: speculative update happened"
        );
        p.undo(&pr);
        assert_eq!(p.bht[p.bht_index(0x4000)][1], before);
    }

    #[test]
    fn saturated_counters_follow_computed_predicate() {
        // Paper §2: "For branches whose predicate is available, the PHT
        // counters quickly saturate, and then prediction becomes equal to
        // the computed predicate."
        let mut p = PepPa::new(PepPaConfig::tiny());
        let pc = 0x4800u64;
        for v in [true, false, true, true, false, true, false, false].repeat(32) {
            p.note_predicate_write(5, v);
            let pr = p.predict(pc, 5);
            if pr.taken != v {
                p.recover(&pr, v);
            } else {
                // keep speculative state
            }
            p.train(&pr, v);
        }
        // After training, prediction tracks the guard value.
        p.note_predicate_write(5, true);
        let a = p.predict(pc, 5);
        p.undo(&a);
        p.note_predicate_write(5, false);
        let b = p.predict(pc, 5);
        p.undo(&b);
        assert!(
            a.taken && !b.taken,
            "prediction equals the computed predicate"
        );
    }
}
