//! Confidence estimation for selective predicate prediction (paper §3.2).
//!
//! "Each predicate predictor entry is extended with a saturated counter,
//! that is incremented with every correct prediction and zeroed if a
//! misprediction occurs. The prediction is considered confident if its
//! associated counter is saturated."

/// A table of resetting saturating confidence counters, one per predictor
/// row.
#[derive(Clone, Debug)]
pub struct ConfidenceTable {
    counters: Vec<u8>,
    max: u8,
}

impl ConfidenceTable {
    /// Creates a table of `entries` counters saturating at `2^bits - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 8, or `entries` is zero.
    pub fn new(entries: usize, bits: u32) -> Self {
        assert!(
            (1..=8).contains(&bits),
            "confidence counter width {bits} out of range"
        );
        assert!(entries > 0, "confidence table must have entries");
        ConfidenceTable {
            counters: vec![0; entries],
            max: ((1u16 << bits) - 1) as u8,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table has no counters (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Whether the counter for `row` is saturated.
    pub fn is_confident(&self, row: usize) -> bool {
        self.counters[row] == self.max
    }

    /// Records a prediction outcome: increment (saturating) when correct,
    /// reset to zero when wrong.
    pub fn record(&mut self, row: usize, correct: bool) {
        let c = &mut self.counters[row];
        *c = if correct { (*c + 1).min(self.max) } else { 0 };
    }

    /// Storage budget in bytes, assuming bit-packed counters.
    pub fn size_bytes(&self) -> usize {
        let bits = 8 - self.max.leading_zeros() as usize;
        (self.counters.len() * bits).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_then_confident() {
        let mut t = ConfidenceTable::new(4, 3);
        assert!(!t.is_confident(0));
        for _ in 0..7 {
            t.record(0, true);
        }
        assert!(t.is_confident(0));
        t.record(0, true);
        assert!(t.is_confident(0), "stays saturated");
    }

    #[test]
    fn misprediction_zeroes() {
        let mut t = ConfidenceTable::new(4, 3);
        for _ in 0..7 {
            t.record(1, true);
        }
        t.record(1, false);
        assert!(!t.is_confident(1));
        // Needs a full re-run of correct predictions to regain confidence.
        for i in 0..7 {
            assert!(!t.is_confident(1), "not confident after {i} corrects");
            t.record(1, true);
        }
        assert!(t.is_confident(1));
    }

    #[test]
    fn rows_are_independent() {
        let mut t = ConfidenceTable::new(2, 2);
        for _ in 0..3 {
            t.record(0, true);
        }
        assert!(t.is_confident(0));
        assert!(!t.is_confident(1));
    }

    #[test]
    fn size_accounting() {
        let t = ConfidenceTable::new(3696, 3);
        assert_eq!(t.size_bytes(), (3696usize * 3).div_ceil(8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_bits_panics() {
        let _ = ConfidenceTable::new(4, 0);
    }
}
