//! Content hashing for job identities.
//!
//! FNV-1a (64-bit) over the job's canonical text encoding. The hash keys
//! the on-disk result cache, so it must be stable across runs, platforms
//! and compiler versions — which a hand-rolled FNV is (unlike
//! `DefaultHasher`, whose algorithm is explicitly unspecified).

/// 64-bit FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte string with 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Formats a hash the way cache file names and reports spell it.
pub fn hex64(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a64(b"bench=gzip"), fnv1a64(b"bench=gcc"));
        assert_ne!(fnv1a64(b"commits=1"), fnv1a64(b"commits=10"));
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex64(0xab).len(), 16);
        assert_eq!(hex64(0xab), "00000000000000ab");
    }
}
